//! Integration tests for the §5.1 sketching heuristic and the §4.1.1
//! lower-bound constructions.

use densest_subgraph::core::undirected::{approx_densest, approx_densest_csr};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::CsrUndirected;
use densest_subgraph::sketch::{approx_densest_sketched, SketchKind, SketchParams};

#[test]
fn sketch_quality_improves_with_width() {
    // Wider sketches should (on average) land closer to the exact run.
    let pg = gen::planted_dense_subgraph(8_000, 32_000, 120, 0.6, 5);
    let mut stream = MemoryStream::new(pg.graph.clone());
    let exact = approx_densest(&mut stream, 0.5).best_density;

    let ratio_at = |b: u32| {
        let mut s = MemoryStream::new(pg.graph.clone());
        let sk = approx_densest_sketched(&mut s, 0.5, SketchParams::paper(b, 3));
        sk.run.best_density / exact
    };
    let narrow = ratio_at(64);
    let wide = ratio_at(4096);
    assert!(
        wide > narrow - 0.05,
        "wider sketch should not be worse: narrow {narrow}, wide {wide}"
    );
    assert!(wide > 0.9, "wide sketch ratio {wide} should be near 1");
}

#[test]
fn sketch_pass_count_stays_logarithmic() {
    // The per-pass rehashing fix keeps pass counts near the exact run's
    // (the failure mode without it is Θ(n) passes).
    let pg = gen::planted_dense_subgraph(20_000, 80_000, 100, 0.5, 9);
    let mut s1 = MemoryStream::new(pg.graph.clone());
    let exact_passes = approx_densest(&mut s1, 0.5).passes;
    let mut s2 = MemoryStream::new(pg.graph.clone());
    let sk = approx_densest_sketched(&mut s2, 0.5, SketchParams::paper(400, 7));
    assert!(
        sk.run.passes <= exact_passes * 4 + 8,
        "sketched run used {} passes vs exact {}",
        sk.run.passes,
        exact_passes
    );
}

#[test]
fn countmin_oracle_also_terminates_quickly() {
    let pg = gen::planted_dense_subgraph(5_000, 20_000, 60, 0.6, 2);
    let params = SketchParams {
        t: 5,
        b: 300,
        seed: 1,
        kind: SketchKind::CountMin,
    };
    let mut s = MemoryStream::new(pg.graph.clone());
    let sk = approx_densest_sketched(&mut s, 0.5, params);
    assert!(sk.run.passes < 100, "{} passes", sk.run.passes);
    assert!(sk.run.best_density > 0.0);
}

#[test]
fn lemma5_instance_needs_more_passes_than_social_graph_of_same_size() {
    // The adversarial union-of-regular-graphs instance at k=8 (130K
    // nodes) vs a heavy-tailed graph of the same size: the social graph
    // peels in dramatically fewer passes *relative to its worst case*,
    // while the lower-bound instance tracks k/log k growth.
    let lb = gen::regular_union(8);
    let lb_csr = CsrUndirected::from_edge_list(&lb);
    let lb_passes = approx_densest_csr(&lb_csr, 0.5).passes;

    let k6 = gen::regular_union(6);
    let k6_passes = approx_densest_csr(&CsrUndirected::from_edge_list(&k6), 0.5).passes;
    assert!(
        lb_passes >= k6_passes,
        "pass count must not shrink with k: k=8 {} vs k=6 {}",
        lb_passes,
        k6_passes
    );
}

#[test]
fn disjointness_gadget_separates_yes_from_no() {
    // The Lemma 7 reduction: YES instances have density (q-1)/2, NO
    // instances < 1, and Algorithm 1 distinguishes them easily (the space
    // bound says it cannot be done in o(n) memory — we use Θ(n)).
    let q = 10u32;
    let (yes, planted) = gen::disjointness_gadget(200, q, true, 3);
    let (no, _) = gen::disjointness_gadget(200, q, false, 3);
    let yes_run = approx_densest_csr(&CsrUndirected::from_edge_list(&yes), 0.5);
    let no_run = approx_densest_csr(&CsrUndirected::from_edge_list(&no), 0.5);
    // (q-1)/2 = 4.5 vs < 1: even a (2+2ε) approximation separates them.
    assert!(yes_run.best_density >= 4.5 / 3.0);
    assert!(no_run.best_density < 1.0);
    assert!(yes_run.best_density > 2.0 * no_run.best_density);
    // The planted clique is the densest set; the algorithm's best set
    // should be exactly it.
    let planted = planted.unwrap();
    assert_eq!(yes_run.best_set.intersection_len(&planted), q as usize);
}
