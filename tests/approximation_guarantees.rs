//! Cross-crate integration tests: the paper's approximation guarantees,
//! checked against the exact flow-based optimum across generator
//! families.

use densest_subgraph::core::charikar::charikar_peel;
use densest_subgraph::core::large::approx_densest_at_least_k;
use densest_subgraph::core::undirected::{approx_densest, approx_densest_csr};
use densest_subgraph::flow::{brute_force_densest, exact_densest, exact_densest_with, FlowBackend};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::{CsrUndirected, EdgeList};

fn families(seed: u64) -> Vec<(&'static str, EdgeList)> {
    vec![
        ("gnp_sparse", gen::gnp(300, 0.02, seed)),
        ("gnp_dense", gen::gnp(120, 0.2, seed)),
        (
            "planted_clique",
            gen::planted_clique(400, 900, 18, seed).graph,
        ),
        (
            "planted_community",
            gen::planted_dense_subgraph(500, 1500, 30, 0.5, seed).graph,
        ),
        (
            "powerlaw",
            gen::chung_lu_powerlaw(600, 2.3, 8.0, 120.0, seed),
        ),
        (
            "pref_attachment",
            gen::preferential_attachment(500, 3, seed),
        ),
        (
            "rmat",
            gen::rmat(
                9,
                4000,
                gen::RmatParams::graph500(),
                densest_subgraph::graph::GraphKind::Undirected,
                seed,
            ),
        ),
        ("regular_union", gen::regular_union(4)),
        ("clique", gen::clique(40)),
        ("star", gen::star(100)),
        ("bipartite", gen::complete_bipartite(20, 30)),
    ]
}

#[test]
fn algorithm1_honors_2_plus_2eps_everywhere() {
    for seed in [1u64, 2] {
        for (name, list) in families(seed) {
            let csr = CsrUndirected::from_edge_list(&list);
            let opt = exact_densest(&csr).density;
            for eps in [0.0, 0.5, 1.0, 2.0] {
                let run = approx_densest_csr(&csr, eps);
                let bound = opt / (2.0 + 2.0 * eps);
                assert!(
                    run.best_density + 1e-9 >= bound,
                    "{name} seed {seed} ε={eps}: {} < {bound} (opt {opt})",
                    run.best_density
                );
                assert!(
                    run.best_density <= opt + 1e-9,
                    "{name}: approximation can never beat the optimum"
                );
                // The reported density must match the reported set.
                let recomputed = csr.density_of(&run.best_set);
                assert!(
                    (recomputed - run.best_density).abs() < 1e-9,
                    "{name}: reported density {} but set has {recomputed}",
                    run.best_density
                );
            }
        }
    }
}

#[test]
fn charikar_2_approx_and_algorithm1_eps0_match_quality() {
    for seed in [3u64, 4] {
        for (name, list) in families(seed) {
            let csr = CsrUndirected::from_edge_list(&list);
            if csr.num_edges() == 0 {
                continue;
            }
            let opt = exact_densest(&csr).density;
            let peel = charikar_peel(&csr);
            assert!(
                peel.best_density * 2.0 + 1e-9 >= opt,
                "{name}: Charikar violated its 2-approximation"
            );
            // Algorithm 1 at ε = 0 is a batched Charikar: same worst-case
            // factor in practice (both ≥ opt/2 here).
            let alg1 = approx_densest_csr(&csr, 0.0);
            assert!(
                alg1.best_density * 2.0 + 1e-9 >= opt,
                "{name}: Algorithm 1 at ε=0 below half the optimum"
            );
        }
    }
}

/// Small instances from every family, sized for exhaustive search.
fn small_families() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("gnp", gen::gnp(13, 0.3, 5)),
        ("clique+tail", {
            let mut g = gen::clique(6);
            g.disjoint_union(&gen::path(6));
            g
        }),
        ("bipartite", gen::complete_bipartite(5, 7)),
        ("star", gen::star(12)),
        ("two_cliques", {
            let mut g = gen::clique(5);
            g.disjoint_union(&gen::clique(7));
            g
        }),
    ]
}

#[test]
fn flow_exact_matches_brute_force_across_families() {
    for (name, list) in small_families() {
        let csr = CsrUndirected::from_edge_list(&list);
        let (_, brute) = brute_force_densest(&csr);
        let flow = exact_densest(&csr);
        assert!(
            (flow.density - brute).abs() < 1e-9,
            "{name}: flow {} vs brute {brute}",
            flow.density
        );
    }
}

#[test]
fn push_relabel_matches_brute_force_across_families() {
    // Same exhaustive baseline as the Dinic default above, through the
    // push–relabel max-flow backend.
    for (name, list) in small_families() {
        let csr = CsrUndirected::from_edge_list(&list);
        let (_, brute) = brute_force_densest(&csr);
        let flow = exact_densest_with(&csr, FlowBackend::PushRelabel);
        assert!(
            (flow.density - brute).abs() < 1e-9,
            "{name}: push-relabel {} vs brute {brute}",
            flow.density
        );
        // The returned set is a genuine certificate of that density.
        assert!(
            (csr.density_of(&flow.set) - flow.density).abs() < 1e-9,
            "{name}: reported density is not the set's density"
        );
    }
}

#[test]
fn push_relabel_matches_dinic_across_generator_families() {
    // The full generator families of this suite (hundreds of nodes):
    // both max-flow backends drive Goldberg's binary search to the same
    // optimum, and each returns a set certifying its reported density.
    for (name, list) in families(7) {
        let csr = CsrUndirected::from_edge_list(&list);
        let dinic = exact_densest_with(&csr, FlowBackend::Dinic);
        let pr = exact_densest_with(&csr, FlowBackend::PushRelabel);
        assert!(
            (dinic.density - pr.density).abs() < 1e-9,
            "{name}: dinic {} vs push-relabel {}",
            dinic.density,
            pr.density
        );
        for (backend, r) in [("dinic", &dinic), ("push-relabel", &pr)] {
            assert!(
                (csr.density_of(&r.set) - r.density).abs() < 1e-9,
                "{name}/{backend}: reported density is not the set's density"
            );
        }
    }
}

#[test]
fn algorithm2_respects_floor_and_factor_three() {
    let pg = gen::planted_dense_subgraph(300, 900, 25, 0.7, 11);
    let csr = CsrUndirected::from_edge_list(&pg.graph);
    let opt = exact_densest(&csr).density;
    for k in [1usize, 10, 50, 150] {
        for eps in [0.3, 1.0] {
            let mut stream = MemoryStream::new(pg.graph.clone());
            let run = approx_densest_at_least_k(&mut stream, k, eps);
            assert!(run.best_set.len() >= k);
            // ρ*_{≥k} ≤ ρ*, so the (3+3ε) guarantee against ρ*_{≥k} is
            // implied by beating ρ*/(3+3ε) whenever the optimum is big —
            // and when |S*| ≥ k, Lemma 10 gives (2+2ε) against ρ*.
            if k <= 26 {
                assert!(
                    run.best_density + 1e-9 >= opt / (3.0 + 3.0 * eps),
                    "k={k} ε={eps}: {} vs opt {opt}",
                    run.best_density
                );
            }
        }
    }
}

#[test]
fn stream_csr_and_weighted_paths_consistent() {
    // Weighted graphs: stream vs CSR agree, and the guarantee holds vs
    // the weighted exact optimum.
    let list = gen::weighted_powerlaw(80, 0.6, 2000.0);
    let csr = CsrUndirected::from_edge_list(&list);
    let opt = exact_densest(&csr).density;
    for eps in [0.2, 1.0] {
        let mut stream = MemoryStream::new(list.clone());
        let a = approx_densest(&mut stream, eps);
        let b = approx_densest_csr(&csr, eps);
        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-6);
        assert!(a.best_density + 1e-6 >= opt / (2.0 + 2.0 * eps));
    }
}
