//! End-to-end tests of the `densest` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn densest_bin() -> &'static str {
    env!("CARGO_BIN_EXE_densest")
}

fn write_fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// A K5 (density 2.0) with a pendant path.
fn clique_fixture() -> PathBuf {
    let mut s = String::from("# K5 plus path\n");
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            s.push_str(&format!("{u} {v}\n"));
        }
    }
    s.push_str("4 5\n5 6\n6 7\n");
    write_fixture("clique.txt", &s)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(densest_bin())
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn approx_finds_the_clique() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["approx", path.to_str().unwrap(), "--epsilon", "0.1"]);
    assert!(ok);
    assert!(stdout.contains("density 2.000000 on 5 nodes"), "{stdout}");
    assert!(stdout.contains("nodes: [0, 1, 2, 3, 4]"), "{stdout}");
}

#[test]
fn exact_matches_approx_here() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["exact", path.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(
        stdout.contains("optimum density 2.000000 on 5 nodes"),
        "{stdout}"
    );
}

#[test]
fn charikar_and_atleast_k() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["charikar", path.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("density 2.000000"), "{stdout}");

    let (stdout, _, ok) = run(&["atleast-k", path.to_str().unwrap(), "--k", "7", "--quiet"]);
    assert!(ok, "{stdout}");
    // A floor of 7 forces a larger, sparser set.
    assert!(stdout.contains("(k = 7"), "{stdout}");
}

#[test]
fn directed_mode() {
    // All arcs from {0,1,2} to {3}: optimum ρ = 3/sqrt(3) ≈ 1.73; the
    // sweep guarantees a δ(2+2ε) factor, and here it lands on the pair
    // S = V (the idle node 3 costs a sqrt factor), T = {3} with ρ = 1.5.
    let path = write_fixture("directed.txt", "0 3\n1 3\n2 3\n");
    let (stdout, _, ok) = run(&["directed", path.to_str().unwrap(), "--quiet"]);
    assert!(ok, "{stdout}");
    let density: f64 = stdout
        .split("density ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("density in output");
    assert!(density >= 1.732 / (2.0 * 3.0), "{stdout}");
    assert!(density <= 1.7321, "{stdout}");
    assert!(stdout.contains("|T| = 1"), "{stdout}");
}

#[test]
fn enumerate_mode() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&[
        "enumerate",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--quiet",
    ]);
    assert!(ok);
    assert!(stdout.contains("dense communities"), "{stdout}");
    assert!(stdout.contains("density 2.0000 on 5 nodes"), "{stdout}");
}

#[test]
fn rejects_bad_usage() {
    let (_, stderr, ok) = run(&["bogus-algorithm", "/nonexistent"]);
    assert!(!ok);
    assert!(
        stderr.contains("usage") || stderr.contains("cannot read"),
        "{stderr}"
    );

    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, stderr, ok) = run(&["approx", "/definitely/not/here.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn unknown_flag_is_named_in_the_error() {
    let path = clique_fixture();
    let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag '--frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn threads_flag_matches_serial_output() {
    let path = clique_fixture();
    let (serial, _, ok1) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--quiet",
    ]);
    let (par, _, ok2) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--threads",
        "4",
        "--quiet",
    ]);
    assert!(ok1 && ok2);
    assert_eq!(serial, par, "parallel backend must match serial output");
    assert!(serial.contains("density 2.000000 on 5 nodes"), "{serial}");
}

#[test]
fn zero_threads_rejected() {
    let path = clique_fixture();
    let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--threads", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
}

#[test]
fn json_summary_is_one_parseable_line() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim().lines().count(), 1, "{stdout}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"algorithm\":\"approx\""), "{line}");
    assert!(line.contains("\"density\":2"), "{line}");
    assert!(line.contains("\"nodes\":5"), "{line}");
    assert!(line.contains("\"threads\":2"), "{line}");
    assert!(line.contains("\"elapsed_ms\":"), "{line}");
}

#[test]
fn json_summary_for_directed() {
    let path = write_fixture("directed_json.txt", "0 3\n1 3\n2 3\n");
    let (stdout, _, ok) = run(&["directed", path.to_str().unwrap(), "--json"]);
    assert!(ok, "{stdout}");
    let line = stdout.trim();
    assert_eq!(line.lines().count(), 1, "{line}");
    assert!(line.contains("\"algorithm\":\"directed\""), "{line}");
    assert!(line.contains("\"t_nodes\":1"), "{line}");
    assert!(line.contains("\"best_c\":"), "{line}");
}
