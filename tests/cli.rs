//! End-to-end tests of the `densest` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn densest_bin() -> &'static str {
    env!("CARGO_BIN_EXE_densest")
}

fn write_fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// A K5 (density 2.0) with a pendant path.
fn clique_fixture() -> PathBuf {
    let mut s = String::from("# K5 plus path\n");
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            s.push_str(&format!("{u} {v}\n"));
        }
    }
    s.push_str("4 5\n5 6\n6 7\n");
    write_fixture("clique.txt", &s)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(densest_bin())
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn approx_finds_the_clique() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["approx", path.to_str().unwrap(), "--epsilon", "0.1"]);
    assert!(ok);
    assert!(stdout.contains("density 2.000000 on 5 nodes"), "{stdout}");
    assert!(stdout.contains("nodes: [0, 1, 2, 3, 4]"), "{stdout}");
}

#[test]
fn exact_matches_approx_here() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["exact", path.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(
        stdout.contains("optimum density 2.000000 on 5 nodes"),
        "{stdout}"
    );
}

#[test]
fn charikar_and_atleast_k() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&["charikar", path.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("density 2.000000"), "{stdout}");

    let (stdout, _, ok) = run(&["atleast-k", path.to_str().unwrap(), "--k", "7", "--quiet"]);
    assert!(ok, "{stdout}");
    // A floor of 7 forces a larger, sparser set.
    assert!(stdout.contains("(k = 7"), "{stdout}");
}

#[test]
fn directed_mode() {
    // All arcs from {0,1,2} to {3}: optimum ρ = 3/sqrt(3) ≈ 1.73; the
    // sweep guarantees a δ(2+2ε) factor, and here it lands on the pair
    // S = V (the idle node 3 costs a sqrt factor), T = {3} with ρ = 1.5.
    let path = write_fixture("directed.txt", "0 3\n1 3\n2 3\n");
    let (stdout, _, ok) = run(&["directed", path.to_str().unwrap(), "--quiet"]);
    assert!(ok, "{stdout}");
    let density: f64 = stdout
        .split("density ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("density in output");
    assert!(density >= 1.732 / (2.0 * 3.0), "{stdout}");
    assert!(density <= 1.7321, "{stdout}");
    assert!(stdout.contains("|T| = 1"), "{stdout}");
}

#[test]
fn enumerate_mode() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&[
        "enumerate",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--quiet",
    ]);
    assert!(ok);
    assert!(stdout.contains("dense communities"), "{stdout}");
    assert!(stdout.contains("density 2.0000 on 5 nodes"), "{stdout}");
}

#[test]
fn rejects_bad_usage() {
    let (_, stderr, ok) = run(&["bogus-algorithm", "/nonexistent"]);
    assert!(!ok);
    assert!(
        stderr.contains("usage") || stderr.contains("cannot read"),
        "{stderr}"
    );

    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, stderr, ok) = run(&["approx", "/definitely/not/here.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn unknown_flag_is_named_in_the_error() {
    let path = clique_fixture();
    let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag '--frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn threads_flag_matches_serial_output() {
    let path = clique_fixture();
    let (serial, _, ok1) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--quiet",
    ]);
    let (par, _, ok2) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--threads",
        "4",
        "--quiet",
    ]);
    assert!(ok1 && ok2);
    assert_eq!(serial, par, "parallel backend must match serial output");
    assert!(serial.contains("density 2.000000 on 5 nodes"), "{serial}");
}

#[test]
fn zero_threads_rejected() {
    let path = clique_fixture();
    let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--threads", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
}

#[test]
fn non_finite_epsilon_rejected_by_name() {
    let path = clique_fixture();
    for bad in ["nan", "NaN", "inf", "-inf", "-0.5"] {
        let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--epsilon", bad]);
        assert!(!ok, "--epsilon {bad} must be rejected");
        assert!(
            stderr.contains("--epsilon must be a finite number >= 0"),
            "--epsilon {bad}: {stderr}"
        );
    }
    // Unparseable values name the flag too (no panic backtrace).
    let (_, stderr, ok) = run(&["approx", path.to_str().unwrap(), "--epsilon", "zero"]);
    assert!(!ok);
    assert!(
        stderr.contains("invalid value 'zero' for --epsilon"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn zero_k_and_bad_delta_rejected_by_name() {
    let path = clique_fixture();
    let (_, stderr, ok) = run(&["atleast-k", path.to_str().unwrap(), "--k", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--k must be at least 1"), "{stderr}");

    // Oversized k: clean named error in both modes, never a kernel panic.
    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec!["atleast-k", path.to_str().unwrap(), "--k", "1000"];
        args.extend_from_slice(extra);
        let (_, stderr, ok) = run(&args);
        assert!(!ok, "oversized --k must be rejected ({extra:?})");
        assert!(stderr.contains("--k 1000 exceeds"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }

    let (_, stderr, ok) = run(&["directed", path.to_str().unwrap(), "--delta", "inf"]);
    assert!(!ok);
    assert!(
        stderr.contains("--delta must be a finite number > 0"),
        "{stderr}"
    );
}

/// Extracts the value of a `"key":value` field from a one-line JSON
/// summary, as raw text (so comparisons are byte-exact).
fn json_field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap();
    &rest[..end]
}

#[test]
fn stream_mode_matches_in_memory_byte_for_byte() {
    let path = clique_fixture();
    let p = path.to_str().unwrap();
    let (mem, _, ok1) = run(&["approx", p, "--epsilon", "0.1", "--json"]);
    let (streamed, _, ok2) = run(&["approx", p, "--epsilon", "0.1", "--stream", "--json"]);
    assert!(ok1 && ok2, "{mem}{streamed}");
    for key in ["graph_nodes", "graph_edges", "density", "nodes", "passes"] {
        assert_eq!(
            json_field(mem.trim(), key),
            json_field(streamed.trim(), key),
            "field {key}: {mem} vs {streamed}"
        );
    }
    assert_eq!(json_field(streamed.trim(), "stream"), "1");
    assert!(streamed.contains("\"state_bytes\":"), "{streamed}");

    // The printed node set (non-JSON output) is identical as well.
    let (mem_set, _, _) = run(&["approx", p, "--epsilon", "0.1"]);
    let (stream_set, _, _) = run(&["approx", p, "--epsilon", "0.1", "--stream"]);
    let nodes_line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("nodes:"))
            .map(String::from)
            .unwrap_or_else(|| panic!("no nodes line in {s}"))
    };
    assert_eq!(nodes_line(&mem_set), nodes_line(&stream_set));
    assert!(
        mem_set.lines().next() == stream_set.lines().next(),
        "{mem_set} vs {stream_set}"
    );
}

#[test]
fn stream_mode_atleast_k_binary_matches_in_memory() {
    // Build a binary fixture with the CLI-independent writer.
    let text = clique_fixture();
    let list = densest_subgraph::graph::io::read_text(
        &text,
        densest_subgraph::graph::GraphKind::Undirected,
    )
    .unwrap();
    let bin = text.with_extension("bin");
    densest_subgraph::graph::io::write_binary(&bin, &list).unwrap();
    let b = bin.to_str().unwrap();

    let (mem, _, ok1) = run(&["atleast-k", b, "--binary", "--k", "6", "--json"]);
    let (streamed, _, ok2) = run(&["atleast-k", b, "--binary", "--k", "6", "--stream", "--json"]);
    assert!(ok1 && ok2, "{mem}{streamed}");
    for key in ["density", "nodes", "passes", "k"] {
        assert_eq!(
            json_field(mem.trim(), key),
            json_field(streamed.trim(), key),
            "field {key}: {mem} vs {streamed}"
        );
    }
}

#[test]
fn stream_mode_rejected_for_in_memory_algorithms() {
    let path = clique_fixture();
    for alg in ["charikar", "exact", "enumerate", "directed"] {
        let (_, stderr, ok) = run(&[alg, path.to_str().unwrap(), "--stream"]);
        assert!(!ok, "{alg} --stream must be rejected");
        assert!(stderr.contains("--stream supports only"), "{alg}: {stderr}");
    }
}

#[test]
fn stream_mode_missing_file_is_a_clean_error() {
    let (_, stderr, ok) = run(&["approx", "/definitely/not/here.txt", "--stream"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn json_summary_is_one_parseable_line() {
    let path = clique_fixture();
    let (stdout, _, ok) = run(&[
        "approx",
        path.to_str().unwrap(),
        "--epsilon",
        "0.1",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim().lines().count(), 1, "{stdout}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"algorithm\":\"approx\""), "{line}");
    assert!(line.contains("\"density\":2"), "{line}");
    assert!(line.contains("\"nodes\":5"), "{line}");
    assert!(line.contains("\"threads\":2"), "{line}");
    assert!(line.contains("\"elapsed_ms\":"), "{line}");
}

#[test]
fn json_summary_for_directed() {
    let path = write_fixture("directed_json.txt", "0 3\n1 3\n2 3\n");
    let (stdout, _, ok) = run(&["directed", path.to_str().unwrap(), "--json"]);
    assert!(ok, "{stdout}");
    let line = stdout.trim();
    assert_eq!(line.lines().count(), 1, "{line}");
    assert!(line.contains("\"algorithm\":\"directed\""), "{line}");
    assert!(line.contains("\"t_nodes\":1"), "{line}");
    assert!(line.contains("\"best_c\":"), "{line}");
}

// ---- engine-era CLI surface: help, flow backends, planner, serve ----

#[test]
fn help_prints_full_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = Command::new(densest_bin())
            .arg(flag)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        for needle in [
            "usage:",
            "serve",
            "client",
            "--flow-backend",
            "--memory-budget",
            "--backend",
            "shutdown",
        ] {
            assert!(
                stdout.contains(needle),
                "{flag}: missing '{needle}' in help"
            );
        }
    }
}

#[test]
fn flow_backend_flag_selects_solver_and_rejects_bad_values() {
    let path = clique_fixture();
    let p = path.to_str().unwrap();
    let (dinic, _, ok1) = run(&["exact", p, "--flow-backend", "dinic", "--json"]);
    let (pr, _, ok2) = run(&["exact", p, "--flow-backend", "push-relabel", "--json"]);
    assert!(ok1 && ok2, "{dinic}{pr}");
    assert_eq!(
        json_field(dinic.trim(), "density"),
        json_field(pr.trim(), "density")
    );
    assert_eq!(
        json_field(dinic.trim(), "nodes"),
        json_field(pr.trim(), "nodes")
    );
    assert_eq!(json_field(pr.trim(), "flow_backend"), "\"push-relabel\"");
    assert_eq!(json_field(dinic.trim(), "flow_backend"), "\"dinic\"");

    let (_, stderr, ok) = run(&["exact", p, "--flow-backend", "simplex"]);
    assert!(!ok);
    assert!(
        stderr.contains("invalid value 'simplex' for --flow-backend"),
        "{stderr}"
    );

    let (_, stderr, ok) = run(&["approx", p, "--flow-backend", "dinic"]);
    assert!(!ok);
    assert!(
        stderr.contains("--flow-backend applies only to 'exact'"),
        "{stderr}"
    );
}

#[test]
fn planner_flags_choose_backends_and_are_reported() {
    let path = clique_fixture();
    let p = path.to_str().unwrap();
    // Unbounded: in-memory. Tiny budget: the planner streams instead.
    let (mem, _, ok1) = run(&["approx", p, "--epsilon", "0.1", "--json"]);
    let (streamed, _, ok2) = run(&[
        "approx",
        p,
        "--epsilon",
        "0.1",
        "--memory-budget",
        "64",
        "--json",
    ]);
    assert!(ok1 && ok2, "{mem}{streamed}");
    assert_eq!(json_field(mem.trim(), "backend"), "\"memory\"");
    assert_eq!(json_field(streamed.trim(), "backend"), "\"stream\"");
    assert!(streamed.contains("\"plan\":\""), "{streamed}");
    for key in ["density", "nodes", "passes"] {
        assert_eq!(
            json_field(mem.trim(), key),
            json_field(streamed.trim(), key),
            "field {key}: {mem} vs {streamed}"
        );
    }
    // --backend forces; bad values are named.
    let (forced, _, ok) = run(&["approx", p, "--backend", "stream", "--json"]);
    assert!(ok);
    assert_eq!(json_field(forced.trim(), "backend"), "\"stream\"");
    let (_, stderr, ok) = run(&["approx", p, "--backend", "gpu"]);
    assert!(!ok);
    assert!(
        stderr.contains("invalid value 'gpu' for --backend"),
        "{stderr}"
    );
    // k/m/g suffixes parse.
    let (out, _, ok) = run(&["approx", p, "--memory-budget", "1g", "--json"]);
    assert!(ok, "{out}");
    assert_eq!(json_field(out.trim(), "backend"), "\"memory\"");
}

#[test]
fn serve_stdin_answers_queries_once_loaded_and_exits_on_eof() {
    use std::io::Write;
    use std::process::Stdio;

    let path = clique_fixture();
    let p = path.to_str().unwrap();
    let mut child = Command::new(densest_bin())
        .args(["serve", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(
            stdin,
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}"
        )
        .unwrap();
        writeln!(
            stdin,
            "{{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}"
        )
        .unwrap();
        writeln!(
            stdin,
            "{{\"id\":3,\"algorithm\":\"exact\",\"file\":\"{p}\"}}"
        )
        .unwrap();
    }
    drop(child.stdin.take()); // EOF = SIGTERM-equivalent close
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "EOF must be a clean shutdown");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    for l in &lines {
        assert_eq!(json_field(l, "ok"), "true", "{l}");
        assert_eq!(json_field(l, "loads"), "1", "one load serves all: {l}");
    }
    assert_eq!(json_field(lines[0], "cache_hit"), "0");
    assert_eq!(json_field(lines[1], "cache_hit"), "1");
    assert_eq!(json_field(lines[2], "cache_hit"), "1");
}

/// Serve-mode results must be byte-identical to one-shot CLI runs: the
/// nested `result` object equals the one-shot `--json` line minus its
/// `elapsed_ms` field.
#[test]
fn serve_socket_results_are_byte_identical_to_one_shot_runs() {
    use std::io::Write;
    use std::process::Stdio;

    let path = clique_fixture();
    let p = path.to_str().unwrap();
    let sock = std::env::temp_dir().join(format!("dsg_cli_serve_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut server = Command::new(densest_bin())
        .args(["serve", "--quiet", "--socket", sock.to_str().unwrap()])
        .spawn()
        .expect("serve starts");
    for _ in 0..300 {
        if sock.exists() {
            break;
        }
        // Test-only: wait for the spawned server process to bind.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "server socket never appeared");

    let queries: Vec<(String, Vec<&str>)> = vec![
        (
            format!("{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}"),
            vec!["approx", p, "--epsilon", "0.1", "--json"],
        ),
        (
            format!("{{\"id\":2,\"algorithm\":\"atleast-k\",\"file\":\"{p}\",\"k\":7}}"),
            vec!["atleast-k", p, "--k", "7", "--json"],
        ),
        (
            format!("{{\"id\":3,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}"),
            vec!["charikar", p, "--json"],
        ),
        (
            format!("{{\"id\":4,\"algorithm\":\"exact\",\"file\":\"{p}\"}}"),
            vec!["exact", p, "--json"],
        ),
    ];
    let mut client = Command::new(densest_bin())
        .args(["client", "--socket", sock.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("client starts");
    {
        let stdin = client.stdin.as_mut().unwrap();
        for (req, _) in &queries {
            writeln!(stdin, "{req}").unwrap();
        }
        writeln!(stdin, "{{\"op\":\"shutdown\"}}").unwrap();
    }
    drop(client.stdin.take());
    let client_out = client.wait_with_output().expect("client exits");
    assert!(client_out.status.success());
    let responses = String::from_utf8_lossy(&client_out.stdout);
    let lines: Vec<&str> = responses.lines().collect();
    assert_eq!(lines.len(), queries.len() + 1, "{responses}");

    let strip_elapsed = |s: &str| {
        let start = s
            .find(",\"elapsed_ms\":")
            .unwrap_or_else(|| panic!("elapsed in {s}"));
        let rest = &s[start + 1..];
        let end = rest.find([',', '}']).unwrap();
        format!("{}{}", &s[..start], &rest[end..])
    };
    for ((_, oneshot_args), response) in queries.iter().zip(&lines) {
        assert_eq!(json_field(response, "ok"), "true", "{response}");
        assert_eq!(json_field(response, "loads"), "1", "{response}");
        let nested = response
            .split("\"result\":")
            .nth(1)
            .and_then(|r| r.split(",\"cache_hit\"").next())
            .unwrap_or_else(|| panic!("no result in {response}"));
        let (oneshot, _, ok) = run(oneshot_args);
        assert!(ok, "{oneshot}");
        let expected = strip_elapsed(oneshot.trim());
        assert_eq!(nested, expected, "serve vs one-shot mismatch");
    }
    assert!(lines.last().unwrap().contains("\"bye\":true"));
    let status = server.wait().expect("server exits after shutdown");
    assert!(status.success());
    assert!(!sock.exists(), "socket removed on clean shutdown");
}

#[test]
fn client_repeat_and_parallel_spread_responses() {
    use std::io::Write;
    use std::process::Stdio;

    let path = clique_fixture();
    let p = path.to_str().unwrap();
    let sock = std::env::temp_dir().join(format!("dsg_cli_par_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut server = Command::new(densest_bin())
        .args([
            "serve",
            "--quiet",
            "--workers",
            "2",
            "--socket",
            sock.to_str().unwrap(),
        ])
        .spawn()
        .expect("serve starts");
    for _ in 0..300 {
        if sock.exists() {
            break;
        }
        // Test-only: wait for the spawned server process to bind.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "server socket never appeared");

    let mut client = Command::new(densest_bin())
        .args([
            "client",
            "--socket",
            sock.to_str().unwrap(),
            "--repeat",
            "3",
            "--parallel",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client starts");
    {
        let stdin = client.stdin.as_mut().unwrap();
        writeln!(
            stdin,
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}"
        )
        .unwrap();
        writeln!(
            stdin,
            "{{\"id\":2,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}"
        )
        .unwrap();
    }
    drop(client.stdin.take());
    let out = client.wait_with_output().expect("client exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    // 2 requests x 3 repeated rounds, spread round-robin over the 2
    // connections (conn 0 carries rounds 0 and 2, conn 1 carries
    // round 1) — total work never multiplies with the connection count.
    assert_eq!(lines.len(), 6, "{stdout}");
    for l in &lines {
        assert_eq!(json_field(l, "ok"), "true", "{l}");
        assert_eq!(json_field(l, "loads"), "1", "single-flight load: {l}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("6 exchanges over 2 connection(s) x 3 repeat(s)"),
        "{stderr}"
    );

    // Each connection's repeats after its first are guaranteed replays.
    let mut stats = Command::new(densest_bin())
        .args(["client", "--socket", sock.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("stats client starts");
    {
        let stdin = stats.stdin.as_mut().unwrap();
        writeln!(stdin, "{{\"op\":\"stats\",\"id\":\"s\"}}").unwrap();
        writeln!(stdin, "{{\"op\":\"shutdown\"}}").unwrap();
    }
    drop(stats.stdin.take());
    let stats_out = stats.wait_with_output().expect("stats client exits");
    let stats_stdout = String::from_utf8_lossy(&stats_out.stdout);
    let stats_line = stats_stdout.lines().next().unwrap();
    assert_eq!(json_field(stats_line, "loads"), "1", "{stats_line}");
    let result_hits: u64 = json_field(stats_line, "result_hits").parse().unwrap();
    // Conn 0's second round replays both cached results; the first
    // round on each connection may race the other into the cache.
    assert!(result_hits >= 2, "{stats_line}");
    let status = server.wait().expect("server exits after shutdown");
    assert!(status.success());
    assert!(!sock.exists(), "socket removed on clean shutdown");
}

#[test]
fn serve_and_client_flags_are_validated_by_name() {
    for (args, needle) in [
        (vec!["serve", "--workers", "0"], "--workers"),
        (vec!["serve", "--workers", "abc"], "--workers"),
        (vec!["serve", "--max-connections", "0"], "--max-connections"),
        (vec!["serve", "--result-cache", "xyz"], "--result-cache"),
        (
            vec!["client", "--socket", "/tmp/x.sock", "--repeat", "0"],
            "--repeat",
        ),
        (
            vec!["client", "--socket", "/tmp/x.sock", "--parallel", "0"],
            "--parallel",
        ),
    ] {
        let (_, stderr, ok) = run(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn help_documents_the_concurrency_flags() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    for flag in [
        "--workers",
        "--max-connections",
        "--result-cache",
        "--repeat",
        "--parallel",
    ] {
        assert!(stdout.contains(flag), "help must mention {flag}");
    }
}

#[test]
fn client_parallel_propagates_connection_failures() {
    // No server is listening: every parallel connection fails. The
    // client must exit non-zero and name each failed connection with
    // its exchange progress, not just print an aggregate summary.
    let sock = std::env::temp_dir().join("dsg_cli_tests/definitely-absent.sock");
    let _ = std::fs::remove_file(&sock);
    let mut child = Command::new(densest_bin())
        .args([
            "client",
            "--socket",
            sock.to_str().unwrap(),
            "--parallel",
            "3",
            "--repeat",
            "2",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write;
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"{\"op\":\"stats\"}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "failed connections => non-zero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The 2 repeated rounds spread round-robin: connections 0 and 1
    // each owe one exchange, connection 2 none — but all three still
    // dial the socket and must report their own failure.
    for (conn, expected) in [(0, 1), (1, 1), (2, 0)] {
        assert!(
            stderr.contains(&format!(
                "client connection {conn} failed after 0/{expected}"
            )),
            "per-connection error summary missing for {conn}: {stderr}"
        );
    }
    assert!(stderr.contains("3 connection(s) FAILED"), "{stderr}");
}

#[cfg(unix)]
#[test]
fn serve_socket_mutable_session_end_to_end() {
    // Mutable sessions over a real socket: create, query, mutate, query
    // again (version bump, fresh result), stats with per-graph fields.
    let sock = std::env::temp_dir().join("dsg_cli_tests/session.sock");
    let _ = std::fs::remove_file(&sock);
    let mut server = Command::new(densest_bin())
        .args(["serve", "--quiet", "--socket", sock.to_str().unwrap()])
        .spawn()
        .unwrap();
    for _ in 0..300 {
        if sock.exists() {
            break;
        }
        // Test-only: wait for the spawned server process to bind.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "server socket never appeared");

    let mut client = Command::new(densest_bin())
        .args(["client", "--socket", sock.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write;
    client
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"{\"id\":1,\"op\":\"create_graph\",\"graph\":\"s\",\"edges\":\"0 1, 0 2, 1 2\"}\n\
              {\"id\":2,\"algorithm\":\"approx\",\"graph\":\"s\"}\n\
              {\"id\":3,\"op\":\"add_edges\",\"graph\":\"s\",\"edges\":\"0 3, 1 3, 2 3\"}\n\
              {\"id\":4,\"algorithm\":\"approx\",\"graph\":\"s\"}\n\
              {\"id\":5,\"op\":\"stats\"}\n\
              {\"op\":\"shutdown\"}\n",
        )
        .unwrap();
    let out = client.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "{stdout}");
    assert!(lines[0].contains("\"version\":1"), "{}", lines[0]);
    assert!(lines[1].contains("\"density\":1,"), "{}", lines[1]);
    assert!(lines[2].contains("\"version\":2"), "{}", lines[2]);
    assert!(lines[3].contains("\"density\":1.5"), "{}", lines[3]);
    assert!(
        lines[3].contains("\"result_cache_hit\":0"),
        "a mutation must invalidate: {}",
        lines[3]
    );
    assert!(lines[4].contains("\"graphs_named\":1"), "{}", lines[4]);
    assert!(
        lines[4].contains("\"named\":[{\"name\":\"s\""),
        "{}",
        lines[4]
    );
    assert!(server.wait().unwrap().success());
    assert!(!sock.exists());
}
