//! Property-based tests (proptest) on the core invariants, across
//! randomly generated graphs and parameters.

use proptest::prelude::*;

use densest_subgraph::core::charikar::charikar_peel;
use densest_subgraph::core::cores::CoreDecomposition;
use densest_subgraph::core::directed::approx_densest_directed;
use densest_subgraph::core::undirected::{approx_densest, approx_densest_csr};
use densest_subgraph::flow::{brute_force_densest, exact_densest};
use densest_subgraph::graph::stream::{EdgeStream, MemoryStream};
use densest_subgraph::graph::{CsrDirected, CsrUndirected, EdgeList, NodeSet};

/// Strategy: a random simple undirected graph with up to `max_n` nodes.
fn arb_graph(max_n: u32) -> impl Strategy<Value = EdgeList> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = (n * (n - 1) / 2) as usize;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(120)).prop_map(move |pairs| {
            let mut g = EdgeList::new_undirected(n);
            for (u, v) in pairs {
                if u != v {
                    g.push(u, v);
                }
            }
            g.canonicalize();
            g
        })
    })
}

/// Strategy: a random simple directed graph.
fn arb_digraph(max_n: u32) -> impl Strategy<Value = EdgeList> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..=100).prop_map(move |pairs| {
            let mut g = EdgeList::new_directed(n);
            for (u, v) in pairs {
                if u != v {
                    g.push(u, v);
                }
            }
            g.canonicalize();
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3: Algorithm 1 is a (2+2ε)-approximation, verified against
    /// exhaustive search on small random graphs.
    #[test]
    fn algorithm1_guarantee(list in arb_graph(12), eps in 0.0f64..2.5) {
        let csr = CsrUndirected::from_edge_list(&list);
        let (_, opt) = brute_force_densest(&csr);
        let run = approx_densest_csr(&csr, eps);
        prop_assert!(run.best_density + 1e-9 >= opt / (2.0 + 2.0 * eps));
        prop_assert!(run.best_density <= opt + 1e-9);
        // The returned set's density matches the reported value.
        let recomputed = csr.density_of(&run.best_set);
        prop_assert!((recomputed - run.best_density).abs() < 1e-9);
    }

    /// Lemma 4: pass count is at most log_{1+ε} n plus slack.
    #[test]
    fn algorithm1_pass_bound(list in arb_graph(40), eps in 0.1f64..2.5) {
        let n = list.num_nodes as f64;
        let csr = CsrUndirected::from_edge_list(&list);
        let run = approx_densest_csr(&csr, eps);
        let bound = (n.ln() / (1.0 + eps).ln()).ceil() as u32 + 2;
        prop_assert!(run.passes <= bound, "{} passes > {}", run.passes, bound);
    }

    /// Streaming and CSR paths produce identical runs.
    #[test]
    fn stream_equals_csr(list in arb_graph(30), eps in 0.0f64..2.0) {
        let csr = CsrUndirected::from_edge_list(&list);
        let a = approx_densest_csr(&csr, eps);
        let mut stream = MemoryStream::new(list);
        let b = approx_densest(&mut stream, eps);
        prop_assert_eq!(a.passes, b.passes);
        prop_assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
        prop_assert!((a.best_density - b.best_density).abs() < 1e-9);
        prop_assert_eq!(stream.passes(), b.passes as u64);
    }

    /// Goldberg's flow solver equals exhaustive search.
    #[test]
    fn flow_exact_equals_brute(list in arb_graph(11)) {
        let csr = CsrUndirected::from_edge_list(&list);
        let (_, brute) = brute_force_densest(&csr);
        let flow = exact_densest(&csr);
        prop_assert!((flow.density - brute).abs() < 1e-9,
            "flow {} vs brute {}", flow.density, brute);
        // The returned certificate really has that density.
        if !flow.set.is_empty() {
            prop_assert!((csr.density_of(&flow.set) - flow.density).abs() < 1e-9);
        }
    }

    /// Charikar's peeling is a 2-approximation and peels a permutation.
    #[test]
    fn charikar_invariants(list in arb_graph(12)) {
        let csr = CsrUndirected::from_edge_list(&list);
        let (_, opt) = brute_force_densest(&csr);
        let r = charikar_peel(&csr);
        prop_assert!(r.best_density * 2.0 + 1e-9 >= opt);
        let mut order = r.peel_order.clone();
        order.sort_unstable();
        prop_assert_eq!(order, (0..list.num_nodes).collect::<Vec<_>>());
    }

    /// Core decomposition: cores nest, and every node of the d-core has
    /// induced degree ≥ d.
    #[test]
    fn core_decomposition_invariants(list in arb_graph(25)) {
        let csr = CsrUndirected::from_edge_list(&list);
        let d = CoreDecomposition::compute(&csr);
        for k in 1..=d.degeneracy {
            let upper = d.core_set(k);
            let lower = d.core_set(k - 1);
            prop_assert!(upper.is_subset_of(&lower));
        }
        let top = d.core_set(d.degeneracy);
        for u in top.iter() {
            let induced = csr.neighbors(u).iter().filter(|&&v| v != u && top.contains(v)).count();
            prop_assert!(induced >= d.degeneracy as usize);
        }
        // Degeneracy/2 lower-bounds the maximum density.
        if csr.num_edges() > 0 && csr.num_nodes() <= 12 {
            let (_, opt) = brute_force_densest(&csr);
            prop_assert!(d.density_lower_bound() <= opt + 1e-9);
        }
    }

    /// Directed runs: the reported density matches the reported pair, and
    /// the pass bound holds.
    #[test]
    fn directed_invariants(list in arb_digraph(15), c in 0.1f64..10.0, eps in 0.0f64..2.0) {
        let csr = CsrDirected::from_edge_list(&list);
        let mut stream = MemoryStream::new(list.clone());
        let run = approx_densest_directed(&mut stream, c, eps);
        let recomputed = csr.density_of(&run.best_s, &run.best_t);
        prop_assert!((recomputed - run.best_density).abs() < 1e-9);
        // Passes ≤ both sides shrinking one at a time.
        prop_assert!(run.passes <= 2 * list.num_nodes + 2);
    }

    /// NodeSet algebra is consistent with a reference BTreeSet model.
    #[test]
    fn nodeset_model(ops in proptest::collection::vec((0u32..64, any::<bool>()), 0..200)) {
        let mut set = NodeSet::empty(64);
        let mut model = std::collections::BTreeSet::new();
        for (x, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(set.remove(x), model.remove(&x));
            }
            prop_assert_eq!(set.len(), model.len());
        }
        prop_assert_eq!(set.to_vec(), model.into_iter().collect::<Vec<_>>());
    }
}
