//! End-to-end tests of the out-of-core path: algorithms running
//! directly over on-disk edge files must reproduce the in-memory runs
//! exactly, for both file formats, and file trouble must surface as
//! typed errors instead of panics.

use std::path::PathBuf;

use densest_subgraph::core::large::{approx_densest_at_least_k_csr, try_approx_densest_at_least_k};
use densest_subgraph::core::result::UndirectedRun;
use densest_subgraph::core::undirected::{approx_densest_csr, try_approx_densest};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::io::{write_binary, write_text};
use densest_subgraph::graph::stream::{BinaryFileStream, EdgeStream, TextFileStream};
use densest_subgraph::graph::{CsrUndirected, EdgeList};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_outofcore_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn on_disk(list: &EdgeList, tag: &str) -> (PathBuf, PathBuf) {
    let text = tmp(&format!("{tag}.txt"));
    let bin = tmp(&format!("{tag}.bin"));
    write_text(&text, list).unwrap();
    write_binary(&bin, list).unwrap();
    (text, bin)
}

fn assert_same_run(a: &UndirectedRun, b: &UndirectedRun, what: &str) {
    assert_eq!(a.passes, b.passes, "{what}: passes");
    assert_eq!(a.best_pass, b.best_pass, "{what}: best pass");
    assert_eq!(
        a.best_density.to_bits(),
        b.best_density.to_bits(),
        "{what}: density ({} vs {})",
        a.best_density,
        b.best_density
    );
    assert_eq!(a.best_set.to_vec(), b.best_set.to_vec(), "{what}: set");
}

#[test]
fn streamed_approx_matches_in_memory_both_formats() {
    for seed in 0..3 {
        let list = gen::planted_dense_subgraph(400, 1600, 25, 0.6, seed);
        let (text, bin) = on_disk(&list.graph, &format!("approx_{seed}"));
        let csr = CsrUndirected::from_edge_list(&list.graph);
        for eps in [0.0, 0.5, 1.5] {
            let reference = approx_densest_csr(&csr, eps);

            let mut ts = TextFileStream::open_auto(&text).unwrap();
            let from_text = try_approx_densest(&mut ts, eps).unwrap();
            assert_same_run(
                &from_text,
                &reference,
                &format!("text seed {seed} eps {eps}"),
            );
            assert_eq!(ts.passes(), from_text.passes as u64);

            let mut bs = BinaryFileStream::open(&bin).unwrap();
            let from_bin = try_approx_densest(&mut bs, eps).unwrap();
            assert_same_run(&from_bin, &reference, &format!("bin seed {seed} eps {eps}"));
            assert_eq!(bs.passes(), from_bin.passes as u64);
        }
    }
}

#[test]
fn streamed_atleast_k_matches_in_memory_both_formats() {
    let list = gen::planted_clique(300, 900, 15, 7);
    let (text, bin) = on_disk(&list.graph, "atleastk");
    let csr = CsrUndirected::from_edge_list(&list.graph);
    for (k, eps) in [(1usize, 0.5), (30, 0.3), (150, 1.0)] {
        let reference = approx_densest_at_least_k_csr(&csr, k, eps);

        let mut ts = TextFileStream::open_auto(&text).unwrap();
        let from_text = try_approx_densest_at_least_k(&mut ts, k, eps).unwrap();
        assert_same_run(&from_text, &reference, &format!("text k {k} eps {eps}"));

        let mut bs = BinaryFileStream::open(&bin).unwrap();
        let from_bin = try_approx_densest_at_least_k(&mut bs, k, eps).unwrap();
        assert_same_run(&from_bin, &reference, &format!("bin k {k} eps {eps}"));
    }
}

#[test]
fn streamed_weighted_graph_matches_in_memory() {
    let list = gen::weighted_powerlaw(80, 0.5, 500.0);
    let (text, bin) = on_disk(&list, "weighted");
    let csr = CsrUndirected::from_edge_list(&list);
    let reference = approx_densest_csr(&csr, 0.8);

    let mut ts = TextFileStream::open_auto(&text).unwrap();
    let from_text = try_approx_densest(&mut ts, 0.8).unwrap();
    assert_eq!(from_text.passes, reference.passes);
    assert_eq!(from_text.best_set.to_vec(), reference.best_set.to_vec());
    assert!((from_text.best_density - reference.best_density).abs() < 1e-9);

    let mut bs = BinaryFileStream::open(&bin).unwrap();
    let from_bin = try_approx_densest(&mut bs, 0.8).unwrap();
    assert_eq!(from_bin.passes, reference.passes);
    assert_eq!(from_bin.best_set.to_vec(), reference.best_set.to_vec());
    assert!((from_bin.best_density - reference.best_density).abs() < 1e-9);
}

#[test]
fn file_modified_mid_run_surfaces_an_error_not_a_panic() {
    // A stream whose file is swapped after the first pass: the run must
    // come back as Err (and must not panic), because the passes after
    // the swap saw different data.
    struct SwappingStream {
        inner: TextFileStream,
        path: PathBuf,
        swapped: bool,
    }
    impl EdgeStream for SwappingStream {
        fn num_nodes(&self) -> u32 {
            self.inner.num_nodes()
        }
        fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
            self.inner.for_each_edge(f);
            if !self.swapped {
                self.swapped = true;
                std::fs::write(&self.path, "0 2\n1 2\n2 3\n").unwrap();
            }
        }
        fn passes(&self) -> u64 {
            self.inner.passes()
        }
        fn take_error(&mut self) -> Option<densest_subgraph::graph::GraphError> {
            self.inner.take_error()
        }
    }

    let path = tmp("swapped.txt");
    // A path graph peels over several passes, so the swap lands mid-run.
    let mut g = EdgeList::new_undirected(6);
    for u in 0..5u32 {
        g.push(u, u + 1);
    }
    g.push(0, 2);
    write_text(&path, &g).unwrap();
    let inner = TextFileStream::open_auto(&path).unwrap();
    let mut stream = SwappingStream {
        inner,
        path: path.clone(),
        swapped: false,
    };
    let result = try_approx_densest(&mut stream, 0.1);
    let err = result.expect_err("modified file must fail the run");
    assert!(err.to_string().contains("changed while streaming"), "{err}");
}

#[test]
fn deleted_file_surfaces_an_error_not_a_panic() {
    let path = tmp("deleted.txt");
    std::fs::write(&path, "0 1\n1 2\n2 0\n0 3\n").unwrap();
    let mut s = TextFileStream::open_auto(&path).unwrap();
    // First pass succeeds; then the file disappears.
    s.for_each_edge(&mut |_, _, _| {});
    assert_eq!(s.passes(), 1);
    std::fs::remove_file(&path).unwrap();
    s.for_each_edge(&mut |_, _, _| {});
    assert_eq!(s.passes(), 1, "failed pass must not be counted");
    let err = s.take_error().expect("deletion must surface");
    assert!(err.to_string().contains("cannot reopen"), "{err}");
}
