//! Incremental-maintenance property suite: for random mutation
//! sequences over named session graphs, a warm engine (verified replay →
//! incremental re-peel → warm re-peel → cold) must answer **byte-
//! identically** to a control engine that recomputes cold on the same
//! snapshot at every step. The incremental tier re-scores its candidate
//! against the published snapshot before answering, so this holds even
//! when the trace simulation itself would go wrong — but the suite also
//! asserts the tier actually *fires* on small deltas, so the fast path
//! is exercised rather than silently falling back.

use std::collections::BTreeSet;

use densest_subgraph::engine::{Algorithm, Engine, Query, ResourcePolicy, Source};
use densest_subgraph::graph::delta::DeltaGraph;
use densest_subgraph::graph::rng::SplitMix64;
use densest_subgraph::graph::{EdgeList, GraphKind};

const EPS: f64 = 0.5;

/// Canonical form of an edge for the mirror set.
fn canon(kind: GraphKind, u: u32, v: u32) -> (u32, u32) {
    match kind {
        GraphKind::Undirected => (u.min(v), u.max(v)),
        GraphKind::Directed => (u, v),
    }
}

/// A random batch of distinct candidate edges over `[0, n)`, self-loops
/// excluded (the engine drops them anyway).
fn random_batch(rng: &mut SplitMix64, n: u32, size: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        let u = rng.range_u32(n);
        let v = rng.range_u32(n);
        if u != v {
            out.push((u, v));
        }
    }
    out
}

/// A batch of edges currently present, for removal.
fn removal_batch(
    rng: &mut SplitMix64,
    present: &BTreeSet<(u32, u32)>,
    size: usize,
) -> Vec<(u32, u32)> {
    let pool: Vec<(u32, u32)> = present.iter().copied().collect();
    let mut out = Vec::new();
    for _ in 0..size.min(pool.len()) {
        out.push(*rng.choose(&pool));
    }
    out
}

/// How each round of the sequence mutates the graph.
#[derive(Clone, Copy)]
enum Mode {
    AddOnly,
    RemoveHeavy,
    Mixed,
}

/// Drives `rounds` mutation rounds of `mode` against a warm engine and a
/// cold control engine, asserting byte-identical reports at every step.
/// Returns the warm engine for counter assertions.
fn run_sequence(
    kind: GraphKind,
    query: Query,
    mode: Mode,
    seed: u64,
    rounds: usize,
    batch: usize,
) -> Engine {
    let n: u32 = 120;
    let mut rng = SplitMix64::new(seed);
    let mut init = random_batch(&mut rng, n, 420);
    // Pin the node count: the directed sweep grid depends on it, and a
    // fixed universe keeps cold re-creation from renumbering.
    init.push((0, n - 1));

    let warm = Engine::new();
    let cold = Engine::new();
    // The control answers every query from scratch on the same snapshot.
    cold.set_warm_threshold(0.0);
    cold.set_incremental_threshold(0.0);

    warm.create_graph("g", kind, &init).unwrap();
    cold.create_graph("g", kind, &init).unwrap();
    let mut present: BTreeSet<(u32, u32)> = init
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| canon(kind, u, v))
        .collect();

    let source = Source::Named { name: "g".into() };
    let policy = ResourcePolicy::default();
    let check = |label: String| {
        let a = warm.execute(&source, &query, &policy).unwrap();
        let b = cold.execute(&source, &query, &policy).unwrap();
        assert_eq!(
            a.json_object(false),
            b.json_object(false),
            "warm/cold divergence at {label}"
        );
    };

    check("initial".into());
    for round in 0..rounds {
        let remove = match mode {
            Mode::AddOnly => false,
            Mode::RemoveHeavy => rng.bernoulli(0.7),
            Mode::Mixed => rng.bernoulli(0.4),
        };
        let edges = if remove && !present.is_empty() {
            let batch = removal_batch(&mut rng, &present, batch);
            for &(u, v) in &batch {
                present.remove(&canon(kind, u, v));
            }
            warm.remove_edges("g", &batch).unwrap();
            cold.remove_edges("g", &batch).unwrap();
            batch
        } else {
            let batch = random_batch(&mut rng, n, batch);
            for &(u, v) in &batch {
                present.insert(canon(kind, u, v));
            }
            warm.add_edges("g", &batch).unwrap();
            cold.add_edges("g", &batch).unwrap();
            batch
        };
        check(format!("round {round} ({} edges)", edges.len()));
    }
    warm
}

fn approx() -> Query {
    Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    })
}

fn at_least_k() -> Query {
    Query::new(Algorithm::AtLeastK { k: 8, epsilon: EPS })
}

fn directed() -> Query {
    Query::new(Algorithm::Directed {
        delta: 2.0,
        epsilon: EPS,
    })
}

#[test]
fn approx_add_only_matches_cold_and_hits() {
    let warm = run_sequence(GraphKind::Undirected, approx(), Mode::AddOnly, 11, 12, 4);
    let stats = warm.incremental_stats();
    assert!(stats.hits >= 1, "no incremental hits: {stats:?}");
}

#[test]
fn approx_mixed_matches_cold_and_hits() {
    let warm = run_sequence(GraphKind::Undirected, approx(), Mode::Mixed, 12, 12, 4);
    let stats = warm.incremental_stats();
    assert!(stats.hits >= 1, "no incremental hits: {stats:?}");
}

#[test]
fn at_least_k_remove_heavy_matches_cold() {
    let warm = run_sequence(
        GraphKind::Undirected,
        at_least_k(),
        Mode::RemoveHeavy,
        13,
        12,
        4,
    );
    // Remove-heavy k-floor sequences may legitimately fall back often;
    // parity is the hard contract, hits are asserted on the mixed run.
    let stats = warm.incremental_stats();
    assert!(
        stats.hits + stats.fallbacks >= 1,
        "tier never attempted: {stats:?}"
    );
}

#[test]
fn at_least_k_mixed_matches_cold_and_hits() {
    let warm = run_sequence(GraphKind::Undirected, at_least_k(), Mode::Mixed, 14, 12, 3);
    let stats = warm.incremental_stats();
    assert!(stats.hits >= 1, "no incremental hits: {stats:?}");
}

#[test]
fn directed_mixed_matches_cold_and_hits() {
    let warm = run_sequence(GraphKind::Directed, directed(), Mode::Mixed, 15, 10, 3);
    let stats = warm.incremental_stats();
    assert!(stats.hits >= 1, "no incremental hits: {stats:?}");
}

#[test]
fn directed_add_only_matches_cold() {
    let warm = run_sequence(GraphKind::Directed, directed(), Mode::AddOnly, 16, 10, 3);
    let stats = warm.incremental_stats();
    assert!(
        stats.hits + stats.fallbacks >= 1,
        "tier never attempted: {stats:?}"
    );
}

/// Disabling the tier (`threshold = 0`) must not change any answer, and
/// must record zero attempts.
#[test]
fn disabled_tier_stays_correct_and_silent() {
    let n: u32 = 100;
    let mut rng = SplitMix64::new(21);
    let init = random_batch(&mut rng, n, 300);
    let warm = Engine::new();
    warm.set_incremental_threshold(0.0);
    let cold = Engine::new();
    cold.set_warm_threshold(0.0);
    cold.set_incremental_threshold(0.0);
    warm.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    cold.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    let source = Source::Named { name: "g".into() };
    let policy = ResourcePolicy::default();
    for _ in 0..6 {
        let batch = random_batch(&mut rng, n, 4);
        warm.add_edges("g", &batch).unwrap();
        cold.add_edges("g", &batch).unwrap();
        let a = warm.execute(&source, &approx(), &policy).unwrap();
        let b = cold.execute(&source, &approx(), &policy).unwrap();
        assert_eq!(a.json_object(false), b.json_object(false));
    }
    let stats = warm.incremental_stats();
    assert_eq!((stats.hits, stats.fallbacks), (0, 0), "{stats:?}");
    assert_eq!(warm.last_incremental(), None);
}

/// A tiny threshold caps the affected set at the floor of 8 nodes;
/// deltas that reach further must fall back — and still answer
/// byte-identically through the warm/cold paths.
#[test]
fn tiny_threshold_forces_fallback_but_stays_correct() {
    let n: u32 = 100;
    let mut rng = SplitMix64::new(22);
    let init = random_batch(&mut rng, n, 600);
    let warm = Engine::new();
    warm.set_incremental_threshold(1e-12);
    let cold = Engine::new();
    cold.set_warm_threshold(0.0);
    cold.set_incremental_threshold(0.0);
    warm.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    cold.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    let source = Source::Named { name: "g".into() };
    let policy = ResourcePolicy::default();
    for _ in 0..5 {
        // Batches touching ~30 distinct nodes blow the 8-node cap.
        let batch = random_batch(&mut rng, n, 15);
        warm.add_edges("g", &batch).unwrap();
        cold.add_edges("g", &batch).unwrap();
        let a = warm.execute(&source, &approx(), &policy).unwrap();
        let b = cold.execute(&source, &approx(), &policy).unwrap();
        assert_eq!(a.json_object(false), b.json_object(false));
    }
    let stats = warm.incremental_stats();
    assert!(stats.fallbacks >= 1, "cap never tripped: {stats:?}");
    let debug = warm.last_incremental().expect("attempts were made");
    assert!(debug.reason.is_some(), "last attempt should be a fallback");
}

/// A delta worth more than half the graph trips the staleness bound
/// (the base snapshot is no longer a sensible stitch target).
#[test]
fn oversized_delta_trips_staleness_bound() {
    let n: u32 = 80;
    let mut rng = SplitMix64::new(23);
    let init = random_batch(&mut rng, n, 200);
    let warm = Engine::new();
    let cold = Engine::new();
    cold.set_warm_threshold(0.0);
    cold.set_incremental_threshold(0.0);
    warm.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    cold.create_graph("g", GraphKind::Undirected, &init)
        .unwrap();
    let source = Source::Named { name: "g".into() };
    let policy = ResourcePolicy::default();
    // Seed the warm tier, then mutate far past the journal window bound.
    warm.execute(&source, &approx(), &policy).unwrap();
    cold.execute(&source, &approx(), &policy).unwrap();
    let batch = random_batch(&mut rng, n, 400);
    warm.add_edges("g", &batch).unwrap();
    cold.add_edges("g", &batch).unwrap();
    let a = warm.execute(&source, &approx(), &policy).unwrap();
    let b = cold.execute(&source, &approx(), &policy).unwrap();
    assert_eq!(a.json_object(false), b.json_object(false));
    let debug = warm.last_incremental().expect("an attempt was recorded");
    assert_eq!(debug.reason, Some("base snapshot too stale"));
}

/// Weighted mutation sequences at the delta-overlay level: after any
/// random interleaving of weighted adds and removes, `materialize()`
/// must be byte-identical to canonicalizing the surviving weighted
/// edges from scratch. (Named session graphs stay unweighted at the
/// engine surface; this pins the overlay arithmetic they build on.)
#[test]
fn weighted_delta_sequences_materialize_canonically() {
    for seed in 31..35u64 {
        let mut rng = SplitMix64::new(seed);
        let n: u32 = 60;
        let mut delta = DeltaGraph::new_empty_weighted();
        let mut mirror: std::collections::BTreeMap<(u32, u32), f64> = Default::default();
        for _ in 0..200 {
            let u = rng.range_u32(n);
            let v = rng.range_u32(n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if rng.bernoulli(0.3) && mirror.contains_key(&key) {
                delta.remove_edges(&[(u, v)]);
                mirror.remove(&key);
            } else {
                let w = (rng.range_u64(8) + 1) as f64 * 0.5;
                delta.add_weighted_edges(&[(u, v, w)]).unwrap();
                // Duplicate weighted edges sum — mirror the running total
                // in the same op order so the bits match.
                *mirror.entry(key).or_insert(0.0) += w;
            }
        }
        let got = delta.materialize();
        let mut scratch = EdgeList::new_undirected(delta.num_nodes());
        for (&(u, v), &w) in &mirror {
            scratch.push_weighted(u, v, w);
        }
        scratch.canonicalize();
        assert_eq!(got.num_nodes, scratch.num_nodes, "seed {seed}");
        assert_eq!(got.edges, scratch.edges, "seed {seed}");
        assert_eq!(
            got.weights
                .map(|w| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            scratch
                .weights
                .map(|w| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            "seed {seed}"
        );
    }
}
