//! The four execution substrates — in-memory CSR, streaming (memory,
//! text file, binary file), and MapReduce — must produce *identical*
//! results on the same graph: same best set, same density, same number
//! of passes.

use densest_subgraph::core::directed::approx_densest_directed;
use densest_subgraph::core::undirected::{approx_densest, approx_densest_csr};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::io::{write_binary, write_text};
use densest_subgraph::graph::stream::{BinaryFileStream, MemoryStream, TextFileStream};
use densest_subgraph::graph::CsrUndirected;
use densest_subgraph::mapreduce::{
    mr_densest_directed, mr_densest_undirected, MapReduceConfig, ShuffleBackend,
};

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dsg_integration_agree");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn all_undirected_substrates_agree() {
    let pg = gen::planted_dense_subgraph(250, 800, 20, 0.7, 21);
    let list = pg.graph;
    let eps = 0.5;

    // 1. In-memory CSR (decremental peeling).
    let csr = CsrUndirected::from_edge_list(&list);
    let a = approx_densest_csr(&csr, eps);

    // 2. Memory stream (pass-per-iteration recomputation).
    let mut ms = MemoryStream::new(list.clone());
    let b = approx_densest(&mut ms, eps);

    // 3. Text file stream.
    let text = tmp_dir().join("agree.txt");
    write_text(&text, &list).unwrap();
    let mut ts = TextFileStream::open(&text, list.num_nodes).unwrap();
    let c = approx_densest(&mut ts, eps);

    // 4. Binary file stream.
    let bin = tmp_dir().join("agree.bin");
    write_binary(&bin, &list).unwrap();
    let mut bs = BinaryFileStream::open(&bin).unwrap();
    let d = approx_densest(&mut bs, eps);

    // 5. MapReduce.
    let splits: Vec<Vec<(u32, u32)>> = list.edges.chunks(97).map(|ch| ch.to_vec()).collect();
    let config = MapReduceConfig {
        num_workers: 3,
        num_reducers: 5,
        combine: true,
        shuffle: ShuffleBackend::InMemory,
    };
    let e = mr_densest_undirected(&config, list.num_nodes, splits, eps);

    let reference = a.best_set.to_vec();
    for (name, set, density, passes) in [
        (
            "memory-stream",
            b.best_set.to_vec(),
            b.best_density,
            b.passes,
        ),
        ("text-stream", c.best_set.to_vec(), c.best_density, c.passes),
        (
            "binary-stream",
            d.best_set.to_vec(),
            d.best_density,
            d.passes,
        ),
        ("mapreduce", e.best_set.to_vec(), e.best_density, e.passes),
    ] {
        assert_eq!(set, reference, "{name} found a different set");
        assert!(
            (density - a.best_density).abs() < 1e-9,
            "{name} density mismatch"
        );
        assert_eq!(passes, a.passes, "{name} pass count mismatch");
    }
}

#[test]
fn directed_substrates_agree() {
    let g = gen::skewed_celebrity(200, 4, 0.6, 400, 17);
    for (c_ratio, eps) in [(1.0, 0.5), (8.0, 1.0)] {
        let mut ms = MemoryStream::new(g.clone());
        let a = approx_densest_directed(&mut ms, c_ratio, eps);

        let splits: Vec<Vec<(u32, u32)>> = g.edges.chunks(53).map(|ch| ch.to_vec()).collect();
        let config = MapReduceConfig {
            num_workers: 2,
            num_reducers: 7,
            combine: true,
            shuffle: ShuffleBackend::InMemory,
        };
        let b = mr_densest_directed(&config, g.num_nodes, splits, c_ratio, eps);

        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-9);
        assert_eq!(a.best_s.to_vec(), b.best_s.to_vec());
        assert_eq!(a.best_t.to_vec(), b.best_t.to_vec());
    }
}

#[test]
fn trace_matches_across_substrates() {
    let pg = gen::planted_clique(150, 400, 10, 9);
    let list = pg.graph;
    let csr = CsrUndirected::from_edge_list(&list);
    let a = approx_densest_csr(&csr, 1.0);
    let splits: Vec<Vec<(u32, u32)>> = list.edges.chunks(31).map(|ch| ch.to_vec()).collect();
    let config = MapReduceConfig {
        num_workers: 4,
        num_reducers: 4,
        combine: true,
        shuffle: ShuffleBackend::InMemory,
    };
    let mr = mr_densest_undirected(&config, list.num_nodes, splits, 1.0);
    assert_eq!(a.trace.len(), mr.reports.len());
    for (t, r) in a.trace.iter().zip(&mr.reports) {
        assert_eq!(t.nodes, r.nodes as usize);
        assert!((t.edge_weight - r.edges as f64).abs() < 1e-9);
        assert!((t.density - r.density).abs() < 1e-12);
    }
}
