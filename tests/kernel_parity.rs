//! Determinism-parity tests for the unified peeling kernel: the parallel
//! CSR backend must produce traces identical to the serial backends —
//! bit-identical on unweighted graphs (including the paper's Lemma 5–7
//! worst-case instances), and identical up to floating-point rounding on
//! weighted ones — for several ε values and thread counts.

use densest_subgraph::core::directed::{
    approx_densest_directed_csr, approx_densest_directed_csr_parallel,
};
use densest_subgraph::core::large::{
    approx_densest_at_least_k_csr, approx_densest_at_least_k_csr_parallel,
};
use densest_subgraph::core::undirected::{
    approx_densest, approx_densest_csr, approx_densest_csr_parallel,
};
use densest_subgraph::core::UndirectedRun;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::{CsrDirected, CsrUndirected, EdgeList};

const EPSILONS: [f64; 4] = [0.0, 0.3, 0.5, 1.5];
const THREADS: [usize; 4] = [1, 2, 4, 6];

fn assert_bit_identical(serial: &UndirectedRun, par: &UndirectedRun, what: &str) {
    assert_eq!(serial.passes, par.passes, "{what}: pass count");
    assert_eq!(serial.best_pass, par.best_pass, "{what}: best pass");
    assert_eq!(
        serial.best_density.to_bits(),
        par.best_density.to_bits(),
        "{what}: best density ({} vs {})",
        serial.best_density,
        par.best_density
    );
    assert_eq!(
        serial.best_set.to_vec(),
        par.best_set.to_vec(),
        "{what}: best set"
    );
    assert_eq!(serial.trace.len(), par.trace.len(), "{what}: trace length");
    for (a, b) in serial.trace.iter().zip(&par.trace) {
        assert_eq!(a, b, "{what}: trace record {}", a.pass);
    }
}

fn check_undirected_all_backends(list: &EdgeList, what: &str) {
    let csr = CsrUndirected::from_edge_list(list);
    for eps in EPSILONS {
        let serial = approx_densest_csr(&csr, eps);
        // The streaming backend agrees with the decremental one.
        let mut stream = MemoryStream::new(list.clone());
        let streamed = approx_densest(&mut stream, eps);
        assert_bit_identical(&serial, &streamed, &format!("{what} ε={eps} stream"));
        for threads in THREADS {
            let par = approx_densest_csr_parallel(&csr, eps, threads);
            assert_bit_identical(&serial, &par, &format!("{what} ε={eps} t={threads}"));
        }
    }
}

#[test]
fn unweighted_random_graphs_bit_identical() {
    for seed in 0..3 {
        let list = gen::gnp(200, 0.05, seed);
        check_undirected_all_backends(&list, &format!("gnp seed {seed}"));
    }
}

#[test]
fn planted_and_powerlaw_graphs_bit_identical() {
    let pg = gen::planted_dense_subgraph(500, 2500, 30, 0.7, 11);
    check_undirected_all_backends(&pg.graph, "planted");
    let pa = gen::preferential_attachment(400, 3, 5);
    check_undirected_all_backends(&pa, "preferential attachment");
}

#[test]
fn lemma5_regular_union_bit_identical() {
    // The Lemma 5 pass-count worst case: a union of regular layers that
    // forces Ω(log n / log log n) passes — many passes, many frontiers.
    let list = gen::regular_union(4);
    check_undirected_all_backends(&list, "lemma5 regular union");
}

#[test]
fn lemma7_disjointness_gadgets_bit_identical() {
    // The Lemma 7 communication-bound gadgets, YES and NO instances.
    for yes in [false, true] {
        let (list, _) = gen::disjointness_gadget(40, 6, yes, 9);
        check_undirected_all_backends(&list, &format!("lemma7 yes={yes}"));
    }
}

#[test]
fn lemma6_weighted_powerlaw_matches_within_rounding() {
    // Lemma 6's instance is weighted: the parallel backend recomputes
    // degrees per pass instead of maintaining them decrementally, so the
    // serial comparison is up-to-rounding — but thread counts must not
    // change the result at all.
    let list = gen::weighted_powerlaw(120, 0.5, 3000.0);
    let csr = CsrUndirected::from_edge_list(&list);
    for eps in [0.3, 0.5, 1.0] {
        let serial = approx_densest_csr(&csr, eps);
        let reference = approx_densest_csr_parallel(&csr, eps, 1);
        assert_eq!(serial.passes, reference.passes, "ε={eps}");
        assert_eq!(serial.best_set.to_vec(), reference.best_set.to_vec());
        assert!((serial.best_density - reference.best_density).abs() < 1e-9);
        for threads in [2, 3, 5, 8] {
            let par = approx_densest_csr_parallel(&csr, eps, threads);
            assert_bit_identical(&reference, &par, &format!("weighted ε={eps} t={threads}"));
        }
    }
}

#[test]
fn algorithm2_k_floor_bit_identical() {
    let pg = gen::planted_clique(300, 900, 18, 7);
    let csr = CsrUndirected::from_edge_list(&pg.graph);
    for (k, eps) in [(1usize, 0.4), (30, 0.4), (150, 1.0)] {
        let serial = approx_densest_at_least_k_csr(&csr, k, eps);
        for threads in THREADS {
            let par = approx_densest_at_least_k_csr_parallel(&csr, k, eps, threads);
            assert_bit_identical(&serial, &par, &format!("alg2 k={k} t={threads}"));
        }
    }
}

#[test]
fn directed_runs_bit_identical() {
    for seed in 0..2 {
        let list = gen::directed_gnp(250, 0.02, seed);
        let csr = CsrDirected::from_edge_list(&list);
        for (c, eps) in [(0.5, 0.0), (1.0, 0.5), (4.0, 1.5)] {
            let serial = approx_densest_directed_csr(&csr, c, eps);
            for threads in THREADS {
                let par = approx_densest_directed_csr_parallel(&csr, c, eps, threads);
                let what = format!("directed seed={seed} c={c} t={threads}");
                assert_eq!(serial.passes, par.passes, "{what}: passes");
                assert_eq!(
                    serial.best_density.to_bits(),
                    par.best_density.to_bits(),
                    "{what}: density"
                );
                assert_eq!(serial.best_s.to_vec(), par.best_s.to_vec(), "{what}: S");
                assert_eq!(serial.best_t.to_vec(), par.best_t.to_vec(), "{what}: T");
                assert_eq!(serial.trace.len(), par.trace.len(), "{what}: trace");
                for (a, b) in serial.trace.iter().zip(&par.trace) {
                    assert_eq!(a, b, "{what}: trace record {}", a.pass);
                }
            }
        }
    }
}

#[test]
fn skewed_celebrity_directed_bit_identical() {
    let list = gen::skewed_celebrity(500, 5, 0.7, 300, 2);
    let csr = CsrDirected::from_edge_list(&list);
    let serial = approx_densest_directed_csr(&csr, 8.0, 0.5);
    for threads in THREADS {
        let par = approx_densest_directed_csr_parallel(&csr, 8.0, 0.5, threads);
        assert_eq!(serial.passes, par.passes);
        assert_eq!(serial.best_density.to_bits(), par.best_density.to_bits());
        assert_eq!(serial.best_s.to_vec(), par.best_s.to_vec());
        assert_eq!(serial.best_t.to_vec(), par.best_t.to_vec());
    }
}
