//! Engine parity suite: for every algorithm × backend combination,
//! `Engine::execute` must return output (density, node set, passes)
//! **byte-identical** to the corresponding direct API call — the engine
//! is a router, never a reimplementation. Also covers the planner's
//! determinism/reporting contract and the catalog's load-once behavior
//! through the engine.

use std::path::PathBuf;

use densest_subgraph::core as dsg_core;
use densest_subgraph::engine::{
    mr_edge_splits, Algorithm, BackendRequest, Engine, Outcome, Query, Report, ResourcePolicy,
    Source,
};
use densest_subgraph::flow::{exact_densest_with, FlowBackend};
use densest_subgraph::graph::io::{read_text, write_text};
use densest_subgraph::graph::stream::{MemoryStream, TextFileStream};
use densest_subgraph::graph::{gen, CsrDirected, CsrUndirected, EdgeList, GraphKind};
use densest_subgraph::mapreduce::{mr_densest_undirected, MapReduceConfig, ShuffleBackend};
use densest_subgraph::sketch::{approx_densest_sketched, SketchParams};

const EPS: f64 = 0.5;

fn write_fixture(name: &str, list: &EdgeList) -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_engine_parity_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_text(&path, list).unwrap();
    path
}

/// The exact load sequence the engine's catalog performs for a text
/// file, reproduced directly so the reference runs see the same graph.
fn load_canonical(path: &std::path::Path, kind: GraphKind) -> EdgeList {
    let mut list = read_text(path, kind).unwrap();
    list.kind = kind;
    list.canonicalize();
    list
}

fn test_graph() -> EdgeList {
    gen::planted_dense_subgraph(300, 900, 25, 0.5, 42).graph
}

fn file_source(path: &std::path::Path) -> Source {
    Source::File {
        path: path.to_path_buf(),
        binary: false,
        directed_input: false,
    }
}

fn run_engine(
    engine: &Engine,
    source: &Source,
    query: Query,
    policy: ResourcePolicy,
    expect_backend: &str,
) -> Report {
    let report = engine.execute(source, &query, &policy).unwrap();
    assert_eq!(
        report.plan.backend.name(),
        expect_backend,
        "plan: {}",
        report.plan.explain()
    );
    report
}

/// Byte-level equality of an engine run against a direct
/// `UndirectedRun`: density bits, set, pass count, best pass.
fn assert_run_parity(report: &Report, direct: &dsg_core::result::UndirectedRun, label: &str) {
    assert_eq!(
        report.density().to_bits(),
        direct.best_density.to_bits(),
        "{label}: density"
    );
    assert_eq!(
        report.best_set().expect("set"),
        &direct.best_set,
        "{label}: node set"
    );
    assert_eq!(report.passes(), Some(direct.passes), "{label}: passes");
}

#[test]
fn approx_parity_across_every_backend() {
    let list = test_graph();
    let path = write_fixture("approx.txt", &list);
    let canonical = load_canonical(&path, GraphKind::Undirected);
    let csr = CsrUndirected::from_edge_list(&canonical);
    let source = file_source(&path);
    let engine = Engine::new();
    let approx = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    });

    // In-memory serial.
    let direct = dsg_core::undirected::approx_densest_csr(&csr, EPS);
    let report = run_engine(
        &engine,
        &source,
        approx,
        ResourcePolicy::default(),
        "memory",
    );
    assert_run_parity(&report, &direct, "serial");

    // Parallel CSR.
    let direct_par = dsg_core::undirected::approx_densest_csr_parallel(&csr, EPS, 3);
    let report = run_engine(
        &engine,
        &source,
        approx,
        ResourcePolicy {
            memory_budget_bytes: None,
            threads: 3,
        },
        "parallel",
    );
    assert_run_parity(&report, &direct_par, "parallel");

    // File-streamed (forced, and again via a tight budget).
    let mut stream = TextFileStream::open_auto(&path).unwrap();
    let direct_stream = dsg_core::undirected::try_approx_densest(&mut stream, EPS).unwrap();
    for (label, query, policy) in [
        (
            "forced stream",
            Query {
                backend: Some(BackendRequest::Streamed),
                ..approx
            },
            ResourcePolicy::default(),
        ),
        (
            "budget stream",
            approx,
            ResourcePolicy {
                memory_budget_bytes: Some(1_000),
                threads: 1,
            },
        ),
    ] {
        let report = run_engine(&engine, &source, query, policy, "stream");
        assert_run_parity(&report, &direct_stream, label);
        assert!(report.state_bytes.is_some(), "{label}: state accounting");
    }

    // Sketched over the in-memory list.
    let sketched = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: Some(64),
    });
    let mut mem = MemoryStream::new(canonical.clone());
    let direct_sk = approx_densest_sketched(&mut mem, EPS, SketchParams::paper(64, 0));
    let report = run_engine(
        &engine,
        &source,
        sketched,
        ResourcePolicy::default(),
        "sketch",
    );
    assert_run_parity(&report, &direct_sk.run, "sketch");
    assert_eq!(
        report.sketch_words,
        Some((direct_sk.sketch_words as u64, direct_sk.exact_words as u64))
    );

    // MapReduce (in-RAM shuffle), 2 workers.
    let config = MapReduceConfig {
        num_workers: 2,
        num_reducers: 8,
        combine: true,
        shuffle: ShuffleBackend::InMemory,
    };
    let direct_mr = mr_densest_undirected(
        &config,
        canonical.num_nodes,
        mr_edge_splits(&canonical, 2),
        EPS,
    );
    let report = run_engine(
        &engine,
        &source,
        Query {
            backend: Some(BackendRequest::MapReduce),
            ..approx
        },
        ResourcePolicy {
            memory_budget_bytes: None,
            threads: 2,
        },
        "mapreduce",
    );
    assert_eq!(
        report.density().to_bits(),
        direct_mr.best_density.to_bits(),
        "mapreduce: density"
    );
    assert_eq!(
        report.best_set().unwrap(),
        &direct_mr.best_set,
        "mapreduce: node set"
    );
    assert_eq!(report.passes(), Some(direct_mr.passes), "mapreduce: passes");
    assert!(report.shuffle.is_some(), "mapreduce: shuffle accounting");
}

#[test]
fn atleast_k_parity_across_backends() {
    let list = test_graph();
    let path = write_fixture("atleastk.txt", &list);
    let canonical = load_canonical(&path, GraphKind::Undirected);
    let csr = CsrUndirected::from_edge_list(&canonical);
    let source = file_source(&path);
    let engine = Engine::new();
    let k = 40;
    let query = Query::new(Algorithm::AtLeastK { k, epsilon: EPS });
    let eps_used = EPS.max(1e-6);

    // Serial goes through MemoryStream, exactly like the direct call.
    let mut mem = MemoryStream::new(canonical.clone());
    let direct = dsg_core::large::approx_densest_at_least_k(&mut mem, k, eps_used);
    let report = run_engine(&engine, &source, query, ResourcePolicy::default(), "memory");
    assert_run_parity(&report, &direct, "serial");

    let direct_par = dsg_core::large::approx_densest_at_least_k_csr_parallel(&csr, k, eps_used, 4);
    let report = run_engine(
        &engine,
        &source,
        query,
        ResourcePolicy {
            memory_budget_bytes: None,
            threads: 4,
        },
        "parallel",
    );
    assert_run_parity(&report, &direct_par, "parallel");

    let mut stream = TextFileStream::open_auto(&path).unwrap();
    let direct_stream =
        dsg_core::large::try_approx_densest_at_least_k(&mut stream, k, eps_used).unwrap();
    let report = run_engine(
        &engine,
        &source,
        Query {
            backend: Some(BackendRequest::Streamed),
            ..query
        },
        ResourcePolicy::default(),
        "stream",
    );
    assert_run_parity(&report, &direct_stream, "stream");
}

#[test]
fn directed_parity_serial_and_parallel() {
    let list = gen::directed_gnp(150, 0.05, 9);
    let path = write_fixture("directed.txt", &list);
    let canonical = load_canonical(&path, GraphKind::Directed);
    let csr = CsrDirected::from_edge_list(&canonical);
    let source = file_source(&path);
    let engine = Engine::new();
    let (delta, eps) = (2.0, 0.5);
    let query = Query::new(Algorithm::Directed {
        delta,
        epsilon: eps,
    });

    let direct = dsg_core::directed::sweep_c_csr(&csr, delta, eps);
    let report = run_engine(&engine, &source, query, ResourcePolicy::default(), "memory");
    let Outcome::Sweep(sweep) = &report.outcome else {
        panic!("directed query must yield a sweep");
    };
    assert_eq!(
        sweep.best.best_density.to_bits(),
        direct.best.best_density.to_bits()
    );
    assert_eq!(sweep.best.best_s, direct.best.best_s);
    assert_eq!(sweep.best.best_t, direct.best.best_t);
    assert_eq!(sweep.best.c.to_bits(), direct.best.c.to_bits());
    assert_eq!(sweep.best.passes, direct.best.passes);
    assert_eq!(sweep.per_c, direct.per_c);

    let direct_par = dsg_core::directed::sweep_c_csr_parallel(&csr, delta, eps, 3);
    let report = run_engine(
        &engine,
        &source,
        query,
        ResourcePolicy {
            memory_budget_bytes: None,
            threads: 3,
        },
        "parallel",
    );
    let Outcome::Sweep(sweep) = &report.outcome else {
        panic!("directed query must yield a sweep");
    };
    assert_eq!(
        sweep.best.best_density.to_bits(),
        direct_par.best.best_density.to_bits()
    );
    assert_eq!(sweep.best.best_s, direct_par.best.best_s);
    assert_eq!(sweep.best.best_t, direct_par.best.best_t);
    assert_eq!(sweep.best.passes, direct_par.best.passes);
}

#[test]
fn charikar_exact_enumerate_parity() {
    let list = test_graph();
    let path = write_fixture("inmem.txt", &list);
    let canonical = load_canonical(&path, GraphKind::Undirected);
    let csr = CsrUndirected::from_edge_list(&canonical);
    let source = file_source(&path);
    let engine = Engine::new();

    let direct = dsg_core::charikar::charikar_peel(&csr);
    let report = run_engine(
        &engine,
        &source,
        Query::new(Algorithm::Charikar),
        ResourcePolicy::default(),
        "memory",
    );
    assert_eq!(report.density().to_bits(), direct.best_density.to_bits());
    assert_eq!(report.best_set().unwrap(), &direct.best_set);

    for flow in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
        let direct = exact_densest_with(&csr, flow);
        let report = run_engine(
            &engine,
            &source,
            Query::new(Algorithm::Exact { flow }),
            ResourcePolicy::default(),
            "memory",
        );
        let Outcome::Exact(r) = &report.outcome else {
            panic!("exact query must yield an exact outcome");
        };
        assert_eq!(r.density.to_bits(), direct.density.to_bits(), "{flow:?}");
        assert_eq!(r.set, direct.set, "{flow:?}");
        assert_eq!(r.flow_calls, direct.flow_calls, "{flow:?}");
    }

    let opts = dsg_core::enumerate::EnumerateOptions {
        epsilon: 0.1,
        min_density: 1.0,
        max_communities: 32,
    };
    let direct = dsg_core::enumerate::enumerate_dense_subgraphs(&csr, opts);
    let report = run_engine(
        &engine,
        &source,
        Query::new(Algorithm::Enumerate {
            epsilon: 0.1,
            min_density: 1.0,
            max_communities: 32,
        }),
        ResourcePolicy::default(),
        "memory",
    );
    let Outcome::Communities(comms) = &report.outcome else {
        panic!("enumerate query must yield communities");
    };
    assert_eq!(comms.len(), direct.len());
    for (a, b) in comms.iter().zip(&direct) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.density.to_bits(), b.density.to_bits());
        assert_eq!(a.round, b.round);
    }
}

#[test]
fn memory_source_matches_file_source() {
    let list = test_graph();
    let path = write_fixture("memsource.txt", &list);
    let engine = Engine::new();
    let query = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    });
    let from_file = engine
        .execute(&file_source(&path), &query, &ResourcePolicy::default())
        .unwrap();
    let from_memory = engine
        .execute(
            &Source::Memory {
                list,
                label: "in-memory".into(),
            },
            &query,
            &ResourcePolicy::default(),
        )
        .unwrap();
    assert_eq!(
        from_file.density().to_bits(),
        from_memory.density().to_bits()
    );
    assert_eq!(from_file.best_set(), from_memory.best_set());
    assert_eq!(from_file.passes(), from_memory.passes());
    assert_eq!(
        from_memory.cache_hit, None,
        "memory sources bypass the catalog"
    );
}

#[test]
fn catalog_loads_once_across_queries_and_algorithms() {
    let list = test_graph();
    let path = write_fixture("catalog.txt", &list);
    let source = file_source(&path);
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    engine
        .execute(
            &source,
            &Query::new(Algorithm::Approx {
                epsilon: EPS,
                sketch: None,
            }),
            &policy,
        )
        .unwrap();
    engine
        .execute(
            &source,
            &Query::new(Algorithm::AtLeastK {
                k: 10,
                epsilon: EPS,
            }),
            &policy,
        )
        .unwrap();
    engine
        .execute(&source, &Query::new(Algorithm::Charikar), &policy)
        .unwrap();
    let stats = engine.catalog().stats();
    assert_eq!(stats.loads, 1, "one load serves every undirected query");
    assert_eq!(stats.hits, 2);
    assert_eq!(engine.catalog().len(), 1);

    // A streamed query re-reads the file by design and never loads.
    engine
        .execute(
            &source,
            &Query {
                algorithm: Algorithm::Approx {
                    epsilon: EPS,
                    sketch: None,
                },
                backend: Some(BackendRequest::Streamed),
            },
            &policy,
        )
        .unwrap();
    assert_eq!(engine.catalog().stats().loads, 1);
}

#[test]
fn plans_are_deterministic_and_reported() {
    let list = test_graph();
    let path = write_fixture("plans.txt", &list);
    let source = file_source(&path);
    let engine = Engine::new();
    let query = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    });
    let tight = ResourcePolicy {
        memory_budget_bytes: Some(2_000),
        threads: 1,
    };
    let a = engine.plan(&source, &query, &tight).unwrap();
    let b = engine.plan(&source, &query, &tight).unwrap();
    assert_eq!(a, b, "same inputs must yield the same plan");
    assert_eq!(a.backend.name(), "stream");
    assert!(!a.reasons.is_empty());

    // The executed plan is carried in the report and the JSON summary.
    let report = engine.execute(&source, &query, &tight).unwrap();
    assert_eq!(report.plan, a);
    let json = report.json_object(true);
    assert!(json.contains("\"backend\":\"stream\""), "{json}");
    assert!(json.contains("\"plan\":\""), "{json}");
    assert!(json.contains("\"elapsed_ms\":"), "{json}");
    // Without elapsed time the summary is fully deterministic.
    let again = engine.execute(&source, &query, &tight).unwrap();
    assert_eq!(report.json_object(false), again.json_object(false));
}

#[test]
fn result_cache_replays_byte_identically_and_invalidates_on_edit() {
    let list = test_graph();
    let path = write_fixture("resultcache.txt", &list);
    let source = file_source(&path);
    let engine = Engine::new();
    let query = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    });
    let policy = ResourcePolicy::default();

    let cold = engine.execute(&source, &query, &policy).unwrap();
    assert_eq!(cold.result_cache_hit, Some(false), "first run computes");
    let replay = engine.execute(&source, &query, &policy).unwrap();
    assert_eq!(replay.result_cache_hit, Some(true), "second run replays");
    // Byte-identical minus elapsed_ms — the whole point of the cache.
    assert_eq!(cold.json_object(false), replay.json_object(false));
    assert_eq!(cold.density().to_bits(), replay.density().to_bits());
    assert_eq!(cold.best_set(), replay.best_set());
    let stats = engine.results().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // A different parameter is a different canonical query.
    let other = Query::new(Algorithm::Approx {
        epsilon: 0.25,
        sketch: None,
    });
    let miss = engine.execute(&source, &other, &policy).unwrap();
    assert_eq!(miss.result_cache_hit, Some(false));

    // Editing the file changes the fingerprint, so the stale result is
    // structurally unreachable: the same query recomputes.
    let edited = gen::planted_dense_subgraph(300, 900, 25, 0.5, 43).graph;
    write_text(&path, &edited).unwrap();
    let recomputed = engine.execute(&source, &query, &policy).unwrap();
    assert_eq!(
        recomputed.result_cache_hit,
        Some(false),
        "file edits invalidate via the fingerprint key"
    );
    assert_eq!(engine.catalog().stats().loads, 2, "reload after edit");
}

#[test]
fn streamed_runs_and_memory_sources_bypass_the_result_cache() {
    let list = test_graph();
    let path = write_fixture("rc_bypass.txt", &list);
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let streamed = Query {
        algorithm: Algorithm::Approx {
            epsilon: EPS,
            sketch: None,
        },
        backend: Some(BackendRequest::Streamed),
    };
    let a = engine
        .execute(&file_source(&path), &streamed, &policy)
        .unwrap();
    let b = engine
        .execute(&file_source(&path), &streamed, &policy)
        .unwrap();
    assert_eq!(a.result_cache_hit, None);
    assert_eq!(b.result_cache_hit, None);
    let from_memory = engine
        .execute(
            &Source::Memory {
                list,
                label: "mem".into(),
            },
            &Query::new(Algorithm::Charikar),
            &policy,
        )
        .unwrap();
    assert_eq!(from_memory.result_cache_hit, None);
    let stats = engine.results().stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.insertions),
        (0, 0, 0),
        "bypassed runs never touch the cache"
    );
}

#[test]
fn shared_engine_serves_concurrent_cold_queries_with_one_load() {
    let list = test_graph();
    let path = write_fixture("shared.txt", &list);
    let engine = Engine::new();
    let query = Query::new(Algorithm::Approx {
        epsilon: EPS,
        sketch: None,
    });
    let policy = ResourcePolicy::default();
    let threads = 6;
    let barrier = std::sync::Barrier::new(threads);
    let jsons: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (engine, path, query, policy) = (&engine, &path, &query, &policy);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    engine
                        .execute(&file_source(path), query, policy)
                        .unwrap()
                        .json_object(false)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        engine.catalog().stats().loads,
        1,
        "single-flight: concurrent cold queries trigger exactly one load"
    );
    for j in &jsons[1..] {
        assert_eq!(&jsons[0], j, "every thread sees the identical summary");
    }
    // At least the stragglers replay from the result cache; the racers
    // that missed simultaneously each computed (and the last insert
    // simply overwrote with an identical report).
    let stats = engine.results().stats();
    assert_eq!(stats.hits + stats.misses, threads as u64);
}

// ----- mutable sessions & warm restarts (PR 5) ----------------------

/// The cold reference for a session query: a fresh engine computing the
/// same algorithm over the session's materialized edge list under the
/// same label, so the whole JSON summary is byte-comparable.
fn cold_reference(list: &EdgeList, label: &str, query: &Query, policy: &ResourcePolicy) -> Report {
    Engine::new()
        .execute(
            &Source::Memory {
                list: list.clone(),
                label: label.to_string(),
            },
            query,
            policy,
        )
        .unwrap()
}

/// Pull the session's current materialized graph out of the catalog.
fn materialized(engine: &Engine, name: &str) -> EdgeList {
    let (_, entry) = engine.catalog().get_named(name).unwrap();
    entry.list.clone()
}

#[test]
fn warm_restart_is_byte_identical_to_cold_recompute() {
    // The acceptance criterion of the mutable-session PR: across
    // add-only, remove-heavy, and mixed deltas, every approx /
    // atleast-k / directed query on the mutated session graph must be
    // byte-identical (minus elapsed_ms) to a cold recompute over the
    // materialized graph.
    let base = gen::gnp(120, 0.08, 11);
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    engine
        .create_graph("und", GraphKind::Undirected, &base.edges)
        .unwrap();
    let dir_base = gen::gnp(80, 0.06, 5);
    engine
        .create_graph("dir", GraphKind::Directed, &dir_base.edges)
        .unwrap();

    let und_queries = [
        Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        }),
        Query::new(Algorithm::AtLeastK { k: 8, epsilon: 0.5 }),
    ];
    let dir_query = Query::new(Algorithm::Directed {
        delta: 2.0,
        epsilon: 0.5,
    });

    // Three delta shapes: add-only, remove-heavy, mixed.
    type Batch = [(u32, u32)];
    let rounds: [(&Batch, &Batch); 3] = [
        (&[(0, 5), (1, 6), (2, 7), (3, 8)], &[]),
        (&[], &[(0, 5), (1, 6), (2, 7), (0, 1), (0, 2), (1, 2)]),
        (&[(10, 90), (11, 91), (0, 1)], &[(3, 8), (10, 11)]),
    ];
    for (round, (adds, removes)) in rounds.iter().enumerate() {
        for name in ["und", "dir"] {
            if !adds.is_empty() {
                engine.add_edges(name, adds).unwrap();
            }
            if !removes.is_empty() {
                engine.remove_edges(name, removes).unwrap();
            }
        }
        for query in &und_queries {
            let warm = engine
                .execute(&Source::named("und"), query, &policy)
                .unwrap();
            let cold = cold_reference(&materialized(&engine, "und"), "und", query, &policy);
            assert_eq!(
                warm.json_object(false),
                cold.json_object(false),
                "round {round}, query {:?}",
                query.algorithm
            );
        }
        let warm = engine
            .execute(&Source::named("dir"), &dir_query, &policy)
            .unwrap();
        let cold = cold_reference(&materialized(&engine, "dir"), "dir", &dir_query, &policy);
        assert_eq!(
            warm.json_object(false),
            cold.json_object(false),
            "round {round}, directed"
        );
    }
    // Every round after the first had a seed with a small delta: a
    // maintenance tier (incremental re-peel, else warm re-peel) must
    // actually have been taken rather than recomputing cold.
    let warm = engine.warm_stats();
    let inc = engine.incremental_stats();
    assert!(
        warm.hits + inc.hits >= 6,
        "expected maintained re-peels, got warm {warm:?} + incremental {inc:?}"
    );
    assert!(inc.hits >= 1, "incremental tier never fired: {inc:?}");

    // Parallel backend parity on the session graph too.
    let par_policy = ResourcePolicy {
        memory_budget_bytes: None,
        threads: 3,
    };
    let warm = engine
        .execute(&Source::named("und"), &und_queries[0], &par_policy)
        .unwrap();
    let cold = cold_reference(
        &materialized(&engine, "und"),
        "und",
        &und_queries[0],
        &par_policy,
    );
    assert_eq!(warm.json_object(false), cold.json_object(false));
}

#[test]
fn mutation_bumps_version_and_evicts_stale_results_eagerly() {
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let query = Query::new(Algorithm::Approx {
        epsilon: 0.5,
        sketch: None,
    });
    engine
        .create_graph("g", GraphKind::Undirected, &[(0, 1), (0, 2), (1, 2)])
        .unwrap();
    let first = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    assert_eq!(first.result_cache_hit, Some(false));
    let replay = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    assert_eq!(replay.result_cache_hit, Some(true), "same version replays");
    assert_eq!(engine.results().stats().entries, 1);

    // The mutation bumps the version and eagerly drops the old entry.
    let out = engine.add_edges("g", &[(0, 3), (1, 3), (2, 3)]).unwrap();
    assert!(out.changed);
    assert_eq!(
        engine.results().stats().entries,
        0,
        "stale-version entries are evicted eagerly, not lazily"
    );
    let after = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    assert_eq!(
        after.result_cache_hit,
        Some(false),
        "a stale replay across versions is structurally impossible"
    );
    assert!((after.density() - 1.5).abs() < 1e-12, "K4");
}

#[test]
fn content_roundtrip_replays_via_verified_warm_seed() {
    // add + remove that cancel out: the version advances twice but the
    // content hash returns to the seed's, so the warm path replays the
    // verified seed without recomputing — and a compact (version bump,
    // same content) does the same.
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let query = Query::new(Algorithm::Approx {
        epsilon: 0.5,
        sketch: None,
    });
    let base = gen::gnp(60, 0.1, 3);
    engine
        .create_graph("g", GraphKind::Undirected, &base.edges)
        .unwrap();
    let first = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    engine.add_edges("g", &[(0, 59)]).unwrap();
    engine.remove_edges("g", &[(0, 59)]).unwrap();
    let hits_before = engine.warm_stats().hits;
    let replayed = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    assert_eq!(engine.warm_stats().hits, hits_before + 1);
    assert_eq!(first.json_object(false), replayed.json_object(false));
    assert_eq!(replayed.result_cache_hit, Some(false));

    // And the replay primed the result cache for the new version.
    let cached = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    assert_eq!(cached.result_cache_hit, Some(true));
}

#[test]
fn warm_fallback_when_delta_ratio_is_too_high() {
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let query = Query::new(Algorithm::Approx {
        epsilon: 0.5,
        sketch: None,
    });
    let base = gen::gnp(100, 0.08, 9);
    engine
        .create_graph("g", GraphKind::Undirected, &base.edges)
        .unwrap();
    engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    // A delta much larger than the default 0.25 x edges threshold
    // (gnp(100, 0.08) has ~400 edges; these 200 are all new).
    let adds: Vec<(u32, u32)> = (0..200).map(|i| (i, i + 101)).collect();
    engine.add_edges("g", &adds).unwrap();
    let warm_before = engine.warm_stats();
    let report = engine
        .execute(&Source::named("g"), &query, &policy)
        .unwrap();
    let warm_after = engine.warm_stats();
    assert_eq!(warm_after.fallbacks, warm_before.fallbacks + 1);
    assert_eq!(warm_after.hits, warm_before.hits);
    // The fallback still computes the correct cold answer.
    let cold = cold_reference(&materialized(&engine, "g"), "g", &query, &policy);
    assert_eq!(report.json_object(false), cold.json_object(false));
}

#[test]
fn named_source_errors_are_typed() {
    use densest_subgraph::engine::EngineError;
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let query = Query::new(Algorithm::Approx {
        epsilon: 0.5,
        sketch: None,
    });
    assert!(matches!(
        engine.execute(&Source::named("nope"), &query, &policy),
        Err(EngineError::UnknownGraph { .. })
    ));
    engine
        .create_graph("und", GraphKind::Undirected, &[(0, 1)])
        .unwrap();
    let directed = Query::new(Algorithm::Directed {
        delta: 2.0,
        epsilon: 0.5,
    });
    assert!(matches!(
        engine.execute(&Source::named("und"), &directed, &policy),
        Err(EngineError::Unsupported(_))
    ));
    assert!(matches!(
        engine.create_graph("und", GraphKind::Undirected, &[]),
        Err(EngineError::GraphExists { .. })
    ));
}

#[test]
fn named_graphs_support_the_forced_stream_backend() {
    // A forced out-of-core run on a session graph streams the snapshot
    // `execute` resolved up front (never a re-fetched one) and matches
    // the in-memory result on the same canonical graph.
    let engine = Engine::new();
    let policy = ResourcePolicy::default();
    let base = gen::gnp(80, 0.1, 21);
    engine
        .create_graph("s", GraphKind::Undirected, &base.edges)
        .unwrap();
    let forced = Query {
        algorithm: Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        },
        backend: Some(BackendRequest::Streamed),
    };
    let streamed = engine
        .execute(&Source::named("s"), &forced, &policy)
        .unwrap();
    assert_eq!(streamed.plan.backend.name(), "stream");
    assert_eq!(
        streamed.result_cache_hit, None,
        "streamed runs bypass the result cache"
    );
    let in_memory = engine
        .execute(&Source::named("s"), &Query::new(forced.algorithm), &policy)
        .unwrap();
    assert_eq!(streamed.density().to_bits(), in_memory.density().to_bits());
    assert_eq!(
        streamed.best_set().unwrap().to_vec(),
        in_memory.best_set().unwrap().to_vec()
    );
    assert_eq!(streamed.passes(), in_memory.passes());
}
