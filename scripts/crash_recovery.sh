#!/usr/bin/env bash
# Crash-recovery lane for durable sessions (serve --data-dir).
#
# Runs ROUNDS rounds of: serve durably, drive a scripted session of
# create/add/remove/compact ops through the client, kill -9 the server
# at a randomized op index (on even rounds the server instead aborts
# itself mid-append via the DSG_CRASH_AFTER_BYTES hook, tearing a WAL
# record on disk at a random byte), restart on the same data dir,
# re-drive every op the client never got an ack for, kill -9 once more
# at the end, restart, and assert:
#
#   * the final query responses are byte-identical to an uninterrupted
#     in-memory reference server (minus elapsed_ms and cache counters),
#   * every named graph recovers to the exact version the reference
#     reached — versions never regress or fork across restarts,
#   * the stats op carries the structured recovery counters.
#
# Re-driving unacked ops is the client's side of the recovery contract:
# an op whose record survived the crash (the kill landed between append
# and publish) re-applies as a content no-op without a version bump, an
# op whose record was torn re-applies for real — both converge to the
# reference, which is exactly the "pre-op or post-op, never a hybrid"
# guarantee under test.
#
# Env knobs: BIN (densest binary), WORK (scratch dir, uploaded on CI
# failure), ROUNDS, SEED (printed; re-run with the same value to
# reproduce a failure).
set -euo pipefail
trap 'echo "::error::crash_recovery.sh: unexpected exit at line $LINENO (seed=${SEED:-?})" >&2' ERR

BIN=${BIN:-target/release/densest}
WORK=${WORK:-/tmp/dsg-crash-recovery}
ROUNDS=${ROUNDS:-6}
SEED=${SEED:-$RANDOM}
RANDOM=$SEED
echo "crash-recovery: seed=$SEED rounds=$ROUNDS bin=$BIN work=$WORK"

rm -rf "$WORK"
mkdir -p "$WORK"

# ---------------------------------------------------------------------
# The scripted session: two graphs, 30 randomized mutations.
# ---------------------------------------------------------------------
OPS="$WORK/ops.jsonl"
{
  echo '{"id":1,"op":"create_graph","graph":"g1","edges":"0 1, 1 2, 2 0"}'
  echo '{"id":2,"op":"create_graph","graph":"g2","edges":"0 1, 0 2, 0 3"}'
  i=3
  while [ "$i" -le 30 ]; do
    g="g$(((RANDOM % 2) + 1))"
    a=$((RANDOM % 20)) b=$((RANDOM % 20)) c=$((RANDOM % 20)) d=$((RANDOM % 20))
    case $((RANDOM % 10)) in
      0 | 1) echo "{\"id\":$i,\"op\":\"remove_edges\",\"graph\":\"$g\",\"edges\":\"$a $b\"}" ;;
      2) echo "{\"id\":$i,\"op\":\"compact\",\"graph\":\"$g\"}" ;;
      *) echo "{\"id\":$i,\"op\":\"add_edges\",\"graph\":\"$g\",\"edges\":\"$a $b, $c $d\"}" ;;
    esac
    i=$((i + 1))
  done
} > "$OPS"
TOTAL=$(wc -l < "$OPS")

QUERIES="$WORK/queries.jsonl"
{
  echo '{"id":"q1","algorithm":"approx","graph":"g1","epsilon":0.5}'
  echo '{"id":"q2","algorithm":"charikar","graph":"g1"}'
  echo '{"id":"q3","algorithm":"approx","graph":"g2","epsilon":0.5}'
  echo '{"id":"q4","algorithm":"exact","graph":"g2"}'
} > "$QUERIES"

# elapsed_ms is nondeterministic; the cache counters legitimately
# differ between a server that ran the whole session and one that
# recovered it (recovery rebuilds state, not caches).
strip() { sed -E 's/,"elapsed_ms":[^,}]+//; s/,"(cache_hit|result_cache_hit|loads)":[0-9]+//g'; }

wait_sock() {
  for _ in $(seq 1 200); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  echo "::error::socket $1 never appeared" >&2
  return 1
}

# ver_of <stats-file> <graph>: the version the stats op reports.
ver_of() { grep -o "\"name\":\"$2\",\"version\":[0-9]*" "$1" | head -1 | sed 's/.*://'; }

# ---------------------------------------------------------------------
# Reference: one uninterrupted in-memory server runs the whole session.
# ---------------------------------------------------------------------
REF_SOCK="$WORK/ref.sock"
"$BIN" serve --quiet --socket "$REF_SOCK" &
REF_PID=$!
wait_sock "$REF_SOCK"
timeout 60 "$BIN" client --socket "$REF_SOCK" < "$OPS" > "$WORK/ref-ops.out" 2>/dev/null
[ "$(grep -c '"ok":true' "$WORK/ref-ops.out")" -eq "$TOTAL" ]
timeout 60 "$BIN" client --socket "$REF_SOCK" < "$QUERIES" 2>/dev/null | strip > "$WORK/ref-queries.out"
printf '{"op":"stats"}\n' | timeout 60 "$BIN" client --socket "$REF_SOCK" 2>/dev/null > "$WORK/ref-stats.out"
printf '{"op":"shutdown"}\n' | timeout 60 "$BIN" client --socket "$REF_SOCK" > /dev/null 2>&1 || true
wait "$REF_PID" || true
echo "reference: g1@v$(ver_of "$WORK/ref-stats.out" g1) g2@v$(ver_of "$WORK/ref-stats.out" g2)"

# ---------------------------------------------------------------------
# Crash rounds.
# ---------------------------------------------------------------------
SRV_PID=""
run_round() {
  round=$1
  dir="$WORK/round-$round"
  sock="$WORK/round-$round.sock"
  rm -rf "$dir"
  fsync=$((round % 2)) # alternate 1/0: kill -9 keeps the page cache, so both must recover

  start_server() { # $1 = DSG_CRASH_AFTER_BYTES budget, or empty
    # kill -9 leaves the previous socket file behind; remove it so
    # wait_sock below only fires once the NEW server has bound.
    rm -f "$sock"
    if [ -n "${1:-}" ]; then
      DSG_CRASH_AFTER_BYTES=$1 "$BIN" serve --quiet --socket "$sock" --data-dir "$dir" \
        --fsync-every "$fsync" --snapshot-every 8 &
    else
      "$BIN" serve --quiet --socket "$sock" --data-dir "$dir" \
        --fsync-every "$fsync" --snapshot-every 8 &
    fi
    SRV_PID=$!
    wait_sock "$sock"
  }

  if [ $((round % 2)) -eq 0 ]; then
    budget=$((40 + RANDOM % 600)) # self-abort mid-append, torn record on disk
    killpoint=""
    echo "round $round: DSG_CRASH_AFTER_BYTES=$budget fsync_every=$fsync"
  else
    budget=""
    killpoint=$((1 + RANDOM % (TOTAL - 1))) # kill -9 after this many acks
    echo "round $round: kill -9 after $killpoint acked ops, fsync_every=$fsync"
  fi

  start_server "$budget"
  crashes=0
  cursor=1
  stalls=0
  while [ "$cursor" -le "$TOTAL" ]; do
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      wait "$SRV_PID" 2>/dev/null || true
      crashes=$((crashes + 1))
      start_server "" # recover, no further injected crash
      continue
    fi
    op=$(sed -n "${cursor}p" "$OPS")
    resp=$(printf '%s\n' "$op" | timeout 10 "$BIN" client --socket "$sock" 2>/dev/null || true)
    if echo "$resp" | grep -q '"ok":true'; then
      cursor=$((cursor + 1))
      stalls=0
    elif echo "$resp" | grep -q 'exists'; then
      # Re-sent create whose record survived the crash: already applied.
      cursor=$((cursor + 1))
      stalls=0
    elif [ -z "$resp" ]; then
      # Server died mid-op (or is dying); the loop re-checks liveness.
      stalls=$((stalls + 1))
      if [ "$stalls" -gt 20 ]; then
        echo "::error::round $round: op $cursor got no response from a live server" >&2
        exit 1
      fi
      sleep 0.05
    else
      echo "::error::round $round: unexpected response for op $cursor: $resp" >&2
      exit 1
    fi
    if [ -z "$budget" ] && [ "$crashes" -eq 0 ] && [ "$cursor" -gt "$killpoint" ]; then
      kill -9 "$SRV_PID" 2>/dev/null || true
      wait "$SRV_PID" 2>/dev/null || true
      crashes=1
      start_server ""
    fi
  done
  [ "$crashes" -ge 1 ] || { echo "::error::round $round: never crashed (budget too high?)" >&2; exit 1; }

  # Snapshot the versions the live server is at, then kill -9 with the
  # full session on disk: the restarted server must answer queries
  # byte-identically to the uninterrupted reference AND resume at
  # exactly the versions it died at — never behind (an op lost), never
  # ahead (an op double-applied), and the next mutation strictly above.
  printf '{"op":"stats"}\n' | timeout 60 "$BIN" client --socket "$sock" 2>/dev/null > "$WORK/round-$round-prekill.out" || true
  grep -q '"named":' "$WORK/round-$round-prekill.out" \
    || { echo "::error::round $round: pre-kill stats unreadable" >&2; exit 1; }
  kill -9 "$SRV_PID" 2>/dev/null || true
  wait "$SRV_PID" 2>/dev/null || true
  start_server ""
  timeout 60 "$BIN" client --socket "$sock" < "$QUERIES" 2>/dev/null | strip > "$WORK/round-$round-queries.out" || true
  printf '{"op":"stats"}\n' | timeout 60 "$BIN" client --socket "$sock" 2>/dev/null > "$WORK/round-$round-stats.out" || true
  grep -q '"named":' "$WORK/round-$round-stats.out" \
    || { echo "::error::round $round: post-recovery stats unreadable" >&2; exit 1; }

  if ! diff "$WORK/ref-queries.out" "$WORK/round-$round-queries.out"; then
    echo "::error::round $round: post-recovery queries diverged from the reference" >&2
    exit 1
  fi
  for g in g1 g2; do
    want=$(ver_of "$WORK/round-$round-prekill.out" "$g")
    got=$(ver_of "$WORK/round-$round-stats.out" "$g")
    if [ "$got" != "$want" ]; then
      echo "::error::round $round: $g died at v$want but recovered at v$got" >&2
      exit 1
    fi
  done
  peak=$(ver_of "$WORK/round-$round-prekill.out" g1)
  bump=$(printf '{"id":"vb","op":"add_edges","graph":"g1","edges":"40 41"}\n' \
    | timeout 10 "$BIN" client --socket "$sock" 2>/dev/null \
    | grep -o '"version":[0-9]*' | head -1 | sed 's/.*://')
  g2peak=$(ver_of "$WORK/round-$round-prekill.out" g2)
  [ "$g2peak" -gt "$peak" ] && peak=$g2peak
  if [ -z "$bump" ] || [ "$bump" -le "$peak" ]; then
    echo "::error::round $round: post-recovery mutation got v${bump:-none}, not above v$peak" >&2
    exit 1
  fi
  printf '{"op":"shutdown"}\n' | timeout 60 "$BIN" client --socket "$sock" > /dev/null 2>&1 || true
  wait "$SRV_PID" || true
  grep -q '"replayed_ops":' "$WORK/round-$round-stats.out"
  grep -q '"dropped_tail_records":' "$WORK/round-$round-stats.out"
  grep -q '"wal_bytes":' "$WORK/round-$round-stats.out"
  replayed=$(sed -E 's/.*"replayed_ops":([0-9]+).*/\1/' "$WORK/round-$round-stats.out")
  dropped=$(sed -E 's/.*"dropped_tail_records":([0-9]+).*/\1/' "$WORK/round-$round-stats.out")
  echo "round $round ok: crashes=$crashes resumed-at-exact-versions replayed=$replayed dropped-tails=$dropped"
}

for round in $(seq 1 "$ROUNDS"); do
  run_round "$round"
done
echo "crash-recovery: all $ROUNDS rounds byte-identical to the reference (seed=$SEED)"
