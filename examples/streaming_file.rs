//! True out-of-core semi-streaming: run Algorithm 1 over an edge list on
//! disk, re-reading the file each pass, with a Count-Sketch degree oracle
//! so counter memory is sublinear in n (§5.1).
//!
//! ```text
//! cargo run --release --example streaming_file [path/to/edges.txt]
//! ```
//!
//! Without an argument, generates a graph, writes it to a temp file in
//! both text and binary formats, and streams from both.

use densest_subgraph::core::undirected::try_approx_densest;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::io::{write_binary, write_text};
use densest_subgraph::graph::stream::{BinaryFileStream, EdgeStream, TextFileStream};
use densest_subgraph::sketch::{try_approx_densest_sketched, SketchParams};

fn main() {
    let arg = std::env::args().nth(1);
    let (text_path, bin_path, num_nodes) = match arg {
        Some(p) => {
            // User-supplied file: node count from a quick scan.
            let list = densest_subgraph::graph::io::read_text(
                &p,
                densest_subgraph::graph::GraphKind::Undirected,
            )
            .expect("cannot read edge list");
            println!(
                "loaded {}: {} nodes, {} edges",
                p,
                list.num_nodes,
                list.num_edges()
            );
            (std::path::PathBuf::from(p), None, list.num_nodes)
        }
        None => {
            let dir = std::env::temp_dir().join("dsg_streaming_example");
            std::fs::create_dir_all(&dir).expect("cannot create temp dir");
            let planted = gen::planted_dense_subgraph(50_000, 200_000, 120, 0.6, 11);
            let text = dir.join("edges.txt");
            let bin = dir.join("edges.bin");
            write_text(&text, &planted.graph).expect("write text");
            write_binary(&bin, &planted.graph).expect("write binary");
            println!(
                "generated graph: {} nodes, {} edges (planted 120-node community, density ≈ {:.1})",
                planted.graph.num_nodes,
                planted.graph.num_edges(),
                planted.planted_density
            );
            println!("text file:   {}", text.display());
            println!("binary file: {}", bin.display());
            (text, Some(bin), planted.graph.num_nodes)
        }
    };

    // --- Stream from the text file with exact O(n) degree counters. ---
    // The try_ entry points surface I/O trouble (or a file modified
    // between passes) as a clean error instead of computing on garbage.
    let mut stream = TextFileStream::open(&text_path, num_nodes).expect("open text stream");
    let t0 = std::time::Instant::now();
    let run = try_approx_densest(&mut stream, 0.5).expect("stream failed mid-run");
    println!(
        "\n[text + exact degrees]   density {:.3} on {} nodes, {} file passes, {:.2?}",
        run.best_density,
        run.best_set.len(),
        stream.passes(),
        t0.elapsed()
    );

    // --- Same, with a Count-Sketch using ~10% of the counter memory. ---
    let b = num_nodes / 50; // t·b/n = 5·(n/50)/n = 10%
    let mut stream = TextFileStream::open(&text_path, num_nodes).expect("open text stream");
    let t0 = std::time::Instant::now();
    let sk = try_approx_densest_sketched(&mut stream, 0.5, SketchParams::paper(b, 7))
        .expect("stream failed mid-run");
    println!(
        "[text + Count-Sketch 10%] density {:.3} on {} nodes, {} file passes, {:.2?}",
        sk.run.best_density,
        sk.run.best_set.len(),
        stream.passes(),
        t0.elapsed()
    );
    println!(
        "  sketch memory: {} words vs {} exact ({:.0}%)",
        sk.sketch_words,
        sk.exact_words,
        100.0 * sk.memory_ratio()
    );

    // --- Binary format is faster to re-scan. ---
    if let Some(bin) = bin_path {
        let mut stream = BinaryFileStream::open(&bin).expect("open binary stream");
        let t0 = std::time::Instant::now();
        let run_bin = try_approx_densest(&mut stream, 0.5).expect("stream failed mid-run");
        println!(
            "[binary + exact degrees]  density {:.3}, {} file passes, {:.2?}",
            run_bin.best_density,
            stream.passes(),
            t0.elapsed()
        );
        assert_eq!(run.best_set.to_vec(), run_bin.best_set.to_vec());
        println!("  text and binary streams produce identical results ✓");
    }
}
