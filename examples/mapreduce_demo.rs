//! The MapReduce realization (§5.2) on the thread-pool simulator:
//! partitioned edge files, three MapReduce rounds per pass, per-pass
//! accounting — the laptop-scale version of the paper's Hadoop run on a
//! 6.1-billion-edge graph (Figure 6.7).
//!
//! ```text
//! cargo run --release --example mapreduce_demo
//! ```

use densest_subgraph::core::undirected::approx_densest;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::mapreduce::{mr_densest_undirected, MapReduceConfig};

fn main() {
    // An "im-like" heavy-tailed graph with a dense core.
    let (list, _) = gen::powerlaw_with_communities(30_000, 2.0, 12.0, 2_000.0, &[(150, 0.5)], 3);
    println!(
        "graph: {} nodes, {} edges",
        list.num_nodes,
        list.num_edges()
    );

    // Partition the edge file across 32 "machines".
    let splits: Vec<Vec<(u32, u32)>> = list
        .edges
        .chunks(list.edges.len().div_ceil(32))
        .map(|c| c.to_vec())
        .collect();
    let config = MapReduceConfig::default();
    println!(
        "simulator: {} workers, {} reducers, {} input splits",
        config.num_workers,
        config.num_reducers,
        splits.len()
    );

    let t0 = std::time::Instant::now();
    let result = mr_densest_undirected(&config, list.num_nodes, splits, 1.0);
    println!(
        "\nMapReduce result: density {:.3} on {} nodes, {} passes, {:.2?} total",
        result.best_density,
        result.best_set.len(),
        result.passes,
        t0.elapsed()
    );

    println!("\nper-pass breakdown (Figure 6.7 shape — cost tracks surviving edges):");
    println!("pass |    nodes |    edges | shuffle recs | time");
    for r in &result.reports {
        println!(
            "{:>4} | {:>8} | {:>8} | {:>12} | {:.2?}",
            r.pass, r.nodes, r.edges, r.rounds.shuffle_records, r.wall_time
        );
    }

    // Cross-check against the streaming implementation.
    let mut stream = MemoryStream::new(list);
    let expected = approx_densest(&mut stream, 1.0);
    assert_eq!(result.passes, expected.passes);
    assert!((result.best_density - expected.best_density).abs() < 1e-9);
    println!("\nMapReduce and streaming implementations agree exactly ✓");
}
