//! Link-spam detection (application (3) of the paper's introduction):
//! dense directed subgraphs on the web often correspond to link farms.
//!
//! ```text
//! cargo run --release --example link_spam
//! ```
//!
//! Plants a "link farm" — a set of spam pages S all linking to a set of
//! boosted pages T — inside a sparse directed web graph, then recovers it
//! with Algorithm 3's c-sweep.

use densest_subgraph::core::directed::sweep_c;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::{EdgeStream, MemoryStream};

fn main() {
    // 3000-page web graph; the farm: 80 spam pages -> 12 boosted pages.
    let (web, farm_s, farm_t) = gen::directed_planted(3000, 0.002, 80, 12, 0.9, 99);
    println!(
        "web graph: {} pages, {} links; planted farm: {} -> {}",
        web.num_nodes,
        web.num_edges(),
        farm_s.len(),
        farm_t.len()
    );

    // Sweep the size ratio c over powers of δ = 2 (we don't know the
    // farm's shape in advance).
    let mut stream = MemoryStream::new(web);
    let sweep = sweep_c(&mut stream, 2.0, 0.5);
    let best = &sweep.best;
    println!(
        "densest directed pair: |S| = {}, |T| = {}, ρ = {:.2} at c = {:.3} ({} stream passes total)",
        best.best_s.len(),
        best.best_t.len(),
        best.best_density,
        best.c,
        stream.passes(),
    );

    // Precision/recall of spam detection.
    let s_hit = best.best_s.intersection_len(&farm_s);
    let t_hit = best.best_t.intersection_len(&farm_t);
    println!(
        "farm recovery: S {}/{} pages, T {}/{} pages",
        s_hit,
        farm_s.len(),
        t_hit,
        farm_t.len()
    );
    let s_precision = s_hit as f64 / best.best_s.len().max(1) as f64;
    println!("precision on S side: {:.0}%", 100.0 * s_precision);
    assert!(
        s_hit * 2 >= farm_s.len(),
        "should recover most of the spam farm"
    );

    // The per-c series shows where the farm "lights up".
    println!("\nc sweep (density per assumed ratio):");
    for &(c, rho, passes) in &sweep.per_c {
        let bar = "#".repeat((rho / best.best_density * 30.0) as usize);
        println!("  c = {c:>10.4}: ρ = {rho:>7.2} ({passes:>2} passes) {bar}");
    }
}
