//! Community mining (application (1) of the paper's introduction):
//! iteratively extract node-disjoint dense communities.
//!
//! ```text
//! cargo run --release --example community_mining
//! ```
//!
//! §6 of the paper notes the algorithm "can easily be adapted to
//! iteratively enumerate node-disjoint (approximately) densest subgraphs
//! … with the guarantee that at each step the algorithm produces an
//! approximate solution on the residual graph". This example implements
//! that loop: find a dense set, remove it, repeat.

use densest_subgraph::core::enumerate::{enumerate_dense_subgraphs, EnumerateOptions};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::CsrUndirected;

fn main() {
    // A power-law social graph with three planted communities of
    // decreasing density.
    let n = 4000;
    let (list, planted) =
        gen::powerlaw_with_communities(n, 2.3, 8.0, 250.0, &[(60, 0.8), (90, 0.5), (120, 0.3)], 7);
    println!(
        "graph: {} nodes, {} edges, {} planted communities",
        list.num_nodes,
        list.num_edges(),
        planted.len()
    );
    for (i, (set, density)) in planted.iter().enumerate() {
        println!(
            "  planted {}: {} nodes, density ≥ {:.1}",
            i + 1,
            set.len(),
            density
        );
    }

    let csr = CsrUndirected::from_edge_list(&list);
    let communities = enumerate_dense_subgraphs(
        &csr,
        EnumerateOptions {
            epsilon: 0.1,
            min_density: 2.0,
            max_communities: 5,
        },
    );

    println!(
        "\nextracted {} node-disjoint communities:",
        communities.len()
    );
    for c in &communities {
        // How well does each extracted community line up with a planted one?
        let best_overlap = planted
            .iter()
            .map(|(p, _)| c.nodes.intersection_len(p))
            .max()
            .unwrap_or(0);
        println!(
            "  round {}: {} nodes, density {:.2}, best planted overlap {} nodes",
            c.round,
            c.nodes.len(),
            c.density,
            best_overlap
        );
    }
    assert!(
        !communities.is_empty(),
        "at least one dense community must be found"
    );
    // Communities are node-disjoint by construction.
    for i in 0..communities.len() {
        for j in (i + 1)..communities.len() {
            assert_eq!(
                communities[i].nodes.intersection_len(&communities[j].nodes),
                0
            );
        }
    }
    println!("all extracted communities are node-disjoint ✓");
}
