//! Team formation with a size floor (the application of reference [20]
//! in the paper, §4.2): find the most collaborative group of at least k
//! people.
//!
//! ```text
//! cargo run --release --example team_formation
//! ```
//!
//! The "at least k" constraint makes the problem NP-hard; Algorithm 2
//! removes only the ε/(1+ε) fraction of lowest-degree members per pass,
//! giving a (3+3ε)-approximation while honoring the size floor.

use densest_subgraph::core::large::approx_densest_at_least_k;
use densest_subgraph::core::undirected::approx_densest;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;

fn main() {
    // Collaboration network: 1500 people; a tight 18-person core team
    // plus a looser 60-person department.
    let (network, communities) =
        gen::powerlaw_with_communities(1500, 2.4, 6.0, 120.0, &[(18, 0.9), (60, 0.35)], 2024);
    println!(
        "collaboration network: {} people, {} edges",
        network.num_nodes,
        network.num_edges()
    );
    println!(
        "planted: tight core of {} (density {:.1}), department of {} (density {:.1})",
        communities[0].0.len(),
        communities[0].1,
        communities[1].0.len(),
        communities[1].1
    );

    // Unconstrained densest subgraph: picks the tight core.
    let mut stream = MemoryStream::new(network.clone());
    let unconstrained = approx_densest(&mut stream, 0.5);
    println!(
        "\nunconstrained (Algorithm 1): {} people, density {:.2}",
        unconstrained.best_set.len(),
        unconstrained.best_density
    );

    // Need a team of ≥ 40: Algorithm 2 with k = 40.
    for k in [40usize, 100, 400] {
        let mut stream = MemoryStream::new(network.clone());
        let team = approx_densest_at_least_k(&mut stream, k, 0.5);
        println!(
            "k = {k:>3}: team of {} people, density {:.3}, {} passes",
            team.best_set.len(),
            team.best_density,
            team.passes
        );
        assert!(team.best_set.len() >= k, "size floor violated");
    }

    println!(
        "\nnote: density necessarily drops as the size floor grows — \
              ρ*_{{≥k}} is non-increasing in k."
    );
}
