//! Algorithm shootout: every densest-subgraph method in the repository on
//! one graph, with quality, passes, and wall-clock side by side.
//!
//! ```text
//! cargo run --release --example algorithm_shootout
//! ```
//!
//! This is the repository's summary in one screen: the exact solvers set
//! the bar, Charikar's peeling matches it closely but needs Θ(n) peels,
//! and Algorithm 1 gets within a few percent in a handful of passes.

use std::time::Instant;

use densest_subgraph::core::charikar::charikar_peel;
use densest_subgraph::core::profile::peeling_profile;
use densest_subgraph::core::undirected::{approx_densest, approx_densest_csr};
use densest_subgraph::flow::{exact_densest_with, FlowBackend};
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::CsrUndirected;
use densest_subgraph::sketch::{approx_densest_sketched, SketchParams};

fn main() {
    let (list, _) =
        gen::powerlaw_with_communities(15_000, 2.3, 10.0, 1_500.0, &[(100, 0.7), (200, 0.3)], 77);
    let csr = CsrUndirected::from_edge_list(&list);
    println!(
        "graph: {} nodes, {} edges\n",
        list.num_nodes,
        list.num_edges()
    );
    println!(
        "{:<34} {:>9} {:>7} {:>10}",
        "method", "density", "passes", "time"
    );

    let t = Instant::now();
    let exact = exact_densest_with(&csr, FlowBackend::Dinic);
    let exact_time = t.elapsed();
    println!(
        "{:<34} {:>9.3} {:>7} {:>9.0?}",
        format!("exact (Goldberg + Dinic, {} flows)", exact.flow_calls),
        exact.density,
        "-",
        exact_time
    );

    let t = Instant::now();
    let pr = exact_densest_with(&csr, FlowBackend::PushRelabel);
    println!(
        "{:<34} {:>9.3} {:>7} {:>9.0?}",
        "exact (Goldberg + push-relabel)",
        pr.density,
        "-",
        t.elapsed()
    );

    let t = Instant::now();
    let peel = charikar_peel(&csr);
    println!(
        "{:<34} {:>9.3} {:>7} {:>9.0?}",
        "Charikar greedy peel",
        peel.best_density,
        format!("{}*", csr.num_nodes()),
        t.elapsed()
    );

    for eps in [0.1, 0.5, 1.0, 2.0] {
        let t = Instant::now();
        let run = approx_densest_csr(&csr, eps);
        println!(
            "{:<34} {:>9.3} {:>7} {:>9.0?}",
            format!("Algorithm 1 (ε = {eps}, in-memory)"),
            run.best_density,
            run.passes,
            t.elapsed()
        );
    }

    let t = Instant::now();
    let mut stream = MemoryStream::new(list.clone());
    let run = approx_densest(&mut stream, 0.5);
    println!(
        "{:<34} {:>9.3} {:>7} {:>9.0?}",
        "Algorithm 1 (ε = 0.5, streaming)",
        run.best_density,
        run.passes,
        t.elapsed()
    );

    let t = Instant::now();
    let mut stream = MemoryStream::new(list.clone());
    let sk = approx_densest_sketched(
        &mut stream,
        0.5,
        SketchParams::paper(list.num_nodes / 20, 5),
    );
    println!(
        "{:<34} {:>9.3} {:>7} {:>9.0?}",
        format!(
            "Algorithm 1 + Count-Sketch ({:.0}%)",
            100.0 * sk.memory_ratio()
        ),
        sk.run.best_density,
        sk.run.passes,
        t.elapsed()
    );

    // The density landscape behind all of this.
    let profile = peeling_profile(&csr);
    println!(
        "\npeeling profile: density peaks at {:.3} after peeling {} of {} nodes",
        profile.best_density,
        profile.best_prefix,
        csr.num_nodes()
    );
    println!("(* Charikar peels one node per step — Θ(n) passes in a streaming model)");

    // Sanity: everything agrees within the proven factors.
    assert!((exact.density - pr.density).abs() < 1e-6);
    assert!(peel.best_density * 2.0 + 1e-9 >= exact.density);
    assert!(run.best_density * 3.0 + 1e-9 >= exact.density);
}
