//! Quickstart: find an approximately densest subgraph with Algorithm 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a sparse random graph with a planted 25-clique, runs the
//! streaming (2+2ε)-approximation, and verifies the result against the
//! exact flow-based optimum.

use densest_subgraph::core::undirected::approx_densest;
use densest_subgraph::flow::exact_densest;
use densest_subgraph::graph::gen;
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::CsrUndirected;

fn main() {
    // 2000 background nodes / 6000 background edges + a planted 25-clique.
    let planted = gen::planted_clique(2000, 6000, 25, 42);
    println!(
        "graph: {} nodes, {} edges (planted clique density = {})",
        planted.graph.num_nodes,
        planted.graph.num_edges(),
        planted.planted_density
    );

    // Run Algorithm 1 in the streaming model with ε = 0.5.
    let epsilon = 0.5;
    let mut stream = MemoryStream::new(planted.graph.clone());
    let run = approx_densest(&mut stream, epsilon);
    println!(
        "Algorithm 1 (ε = {epsilon}): density {:.3} on {} nodes, {} passes",
        run.best_density,
        run.best_set.len(),
        run.passes
    );

    // Compare with the exact optimum (Goldberg's max-flow reduction).
    let csr = CsrUndirected::from_edge_list(&planted.graph);
    let exact = exact_densest(&csr);
    println!(
        "exact optimum: density {:.3} on {} nodes ({} max-flow calls)",
        exact.density,
        exact.set.len(),
        exact.flow_calls
    );

    let ratio = exact.density / run.best_density;
    println!(
        "approximation ratio: {ratio:.3} (guarantee: ≤ {:.1})",
        2.0 + 2.0 * epsilon
    );
    assert!(ratio <= 2.0 + 2.0 * epsilon + 1e-9);

    // How much of the planted clique did the approximation recover?
    let overlap = run.best_set.intersection_len(&planted.planted);
    println!("planted-clique recovery: {overlap}/25 nodes inside the returned set");
}
