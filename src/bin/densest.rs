//! `densest` — a command-line densest-subgraph tool over edge-list files.
//!
//! ```text
//! densest <algorithm> <edge-file> [options]
//!
//! algorithms:
//!   approx     Algorithm 1  — undirected (2+2ε)-approximation  [default]
//!   atleast-k  Algorithm 2  — at least k nodes, (3+3ε)-approximation
//!   directed   Algorithm 3  — directed density with a c-sweep
//!   charikar   exact greedy peeling (2-approximation, in-memory)
//!   exact      Goldberg max-flow optimum (in-memory)
//!   enumerate  node-disjoint dense communities
//!
//! options:
//!   --epsilon <f>     approximation parameter ε (default 0.5)
//!   --k <n>           size floor for atleast-k (default 10)
//!   --delta <f>       c-grid resolution for directed (default 2)
//!   --sketch <b>      use a Count-Sketch degree oracle with width b (t=5)
//!   --binary          input is the dsg binary edge format
//!   --directed-input  parse the file as directed (for `directed`)
//!   --quiet           print only the summary line
//! ```
//!
//! The input is a whitespace-separated `u v [w]` edge list with `#`
//! comments (SNAP format), or the compact binary format with `--binary`.

use std::process::exit;

use densest_subgraph::core as dsg_core;
use densest_subgraph::graph::io::{read_binary, read_text};
use densest_subgraph::graph::stream::MemoryStream;
use densest_subgraph::graph::{CsrDirected, CsrUndirected, EdgeList, GraphKind, NodeSet};
use densest_subgraph::sketch::{approx_densest_sketched, SketchParams};

struct Options {
    algorithm: String,
    path: String,
    epsilon: f64,
    k: usize,
    delta: f64,
    sketch_b: Option<u32>,
    binary: bool,
    directed_input: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: densest <approx|atleast-k|directed|charikar|exact|enumerate> <edge-file> \
         [--epsilon f] [--k n] [--delta f] [--sketch b] [--binary] [--directed-input] [--quiet]"
    );
    exit(2);
}

fn parse_options() -> Options {
    let mut args = std::env::args().skip(1);
    let algorithm = args.next().unwrap_or_else(|| usage());
    let path = args.next().unwrap_or_else(|| usage());
    let mut o = Options {
        algorithm,
        path,
        epsilon: 0.5,
        k: 10,
        delta: 2.0,
        sketch_b: None,
        binary: false,
        directed_input: false,
        quiet: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--epsilon" => o.epsilon = value("--epsilon").parse().expect("bad --epsilon"),
            "--k" => o.k = value("--k").parse().expect("bad --k"),
            "--delta" => o.delta = value("--delta").parse().expect("bad --delta"),
            "--sketch" => o.sketch_b = Some(value("--sketch").parse().expect("bad --sketch")),
            "--binary" => o.binary = true,
            "--directed-input" => o.directed_input = true,
            "--quiet" => o.quiet = true,
            _ => usage(),
        }
    }
    o
}

fn load(o: &Options) -> EdgeList {
    let kind = if o.directed_input || o.algorithm == "directed" {
        GraphKind::Directed
    } else {
        GraphKind::Undirected
    };
    let mut list = if o.binary {
        read_binary(&o.path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        })
    } else {
        read_text(&o.path, kind).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        })
    };
    list.kind = kind;
    list.canonicalize();
    list
}

fn print_set(nodes: &NodeSet, quiet: bool) {
    if quiet {
        return;
    }
    let v = nodes.to_vec();
    let shown: Vec<String> = v.iter().take(50).map(|u| u.to_string()).collect();
    let ellipsis = if v.len() > 50 { ", …" } else { "" };
    println!("nodes: [{}{}]", shown.join(", "), ellipsis);
}

fn main() {
    let o = parse_options();
    let list = load(&o);
    if !o.quiet {
        eprintln!(
            "loaded {}: {} nodes, {} edges",
            o.path,
            list.num_nodes,
            list.num_edges()
        );
    }

    match o.algorithm.as_str() {
        "approx" => {
            let run = if let Some(b) = o.sketch_b {
                let mut stream = MemoryStream::new(list);
                let sk = approx_densest_sketched(&mut stream, o.epsilon, SketchParams::paper(b, 0));
                if !o.quiet {
                    eprintln!(
                        "sketch: {} words vs {} exact ({:.0}%)",
                        sk.sketch_words,
                        sk.exact_words,
                        100.0 * sk.memory_ratio()
                    );
                }
                sk.run
            } else {
                let csr = CsrUndirected::from_edge_list(&list);
                dsg_core::undirected::approx_densest_csr(&csr, o.epsilon)
            };
            println!(
                "density {:.6} on {} nodes ({} passes, ε = {})",
                run.best_density,
                run.best_set.len(),
                run.passes,
                o.epsilon
            );
            print_set(&run.best_set, o.quiet);
        }
        "atleast-k" => {
            let mut stream = MemoryStream::new(list);
            let run = dsg_core::large::approx_densest_at_least_k(&mut stream, o.k, o.epsilon.max(1e-6));
            println!(
                "density {:.6} on {} nodes (k = {}, {} passes)",
                run.best_density,
                run.best_set.len(),
                o.k,
                run.passes
            );
            print_set(&run.best_set, o.quiet);
        }
        "directed" => {
            let csr = CsrDirected::from_edge_list(&list);
            let sweep = dsg_core::directed::sweep_c_csr(&csr, o.delta, o.epsilon);
            println!(
                "density {:.6} with |S| = {}, |T| = {} (best c = {:.4}, δ = {})",
                sweep.best.best_density,
                sweep.best.best_s.len(),
                sweep.best.best_t.len(),
                sweep.best.c,
                o.delta
            );
            if !o.quiet {
                println!("S:");
                print_set(&sweep.best.best_s, false);
                println!("T:");
                print_set(&sweep.best.best_t, false);
            }
        }
        "charikar" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let r = dsg_core::charikar::charikar_peel(&csr);
            println!(
                "density {:.6} on {} nodes (exact greedy 2-approximation)",
                r.best_density,
                r.best_set.len()
            );
            print_set(&r.best_set, o.quiet);
        }
        "exact" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let r = densest_subgraph::flow::exact_densest(&csr);
            println!(
                "optimum density {:.6} on {} nodes ({} max-flow calls)",
                r.density,
                r.set.len(),
                r.flow_calls
            );
            print_set(&r.set, o.quiet);
        }
        "enumerate" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let comms = dsg_core::enumerate::enumerate_dense_subgraphs(
                &csr,
                dsg_core::enumerate::EnumerateOptions {
                    epsilon: o.epsilon,
                    min_density: 1.0,
                    max_communities: 32,
                },
            );
            println!("{} node-disjoint dense communities:", comms.len());
            for c in &comms {
                println!(
                    "  round {}: density {:.4} on {} nodes",
                    c.round,
                    c.density,
                    c.nodes.len()
                );
                print_set(&c.nodes, o.quiet);
            }
        }
        _ => usage(),
    }
}
