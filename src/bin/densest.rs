//! `densest` — a command-line densest-subgraph tool over edge-list files.
//!
//! ```text
//! densest <algorithm> <edge-file> [options]
//!
//! algorithms:
//!   approx     Algorithm 1  — undirected (2+2ε)-approximation  [default]
//!   atleast-k  Algorithm 2  — at least k nodes, (3+3ε)-approximation
//!   directed   Algorithm 3  — directed density with a c-sweep
//!   charikar   exact greedy peeling (2-approximation, in-memory)
//!   exact      Goldberg max-flow optimum (in-memory)
//!   enumerate  node-disjoint dense communities
//!
//! options:
//!   --epsilon <f>     approximation parameter ε (default 0.5)
//!   --k <n>           size floor for atleast-k (default 10)
//!   --delta <f>       c-grid resolution for directed (default 2)
//!   --threads <n>     worker threads for the parallel peeling backend
//!                     (approx, atleast-k, directed; default 1 = serial)
//!   --sketch <b>      use a Count-Sketch degree oracle with width b (t=5)
//!   --stream          out-of-core mode (approx, atleast-k): run directly
//!                     over the file, one re-read per pass, O(n) memory —
//!                     the edge list is never materialized
//!   --binary          input is the dsg binary edge format
//!   --directed-input  parse the file as directed (for `directed`)
//!   --json            print a one-line machine-readable JSON summary
//!   --quiet           print only the summary line
//! ```
//!
//! The input is a whitespace-separated `u v [w]` edge list with `#`
//! comments (SNAP format), or the compact binary format with `--binary`.
//! `--threads` selects the parallel CSR backend for `approx`,
//! `atleast-k`, and `directed`; it is deterministic at every thread
//! count and bit-identical to the serial backend on unweighted graphs
//! (weighted graphs match within floating-point rounding). The flag has
//! no effect on `charikar`, `exact`, `enumerate`, sketched, or
//! `--stream` runs — a warning is printed if it is passed there.
//!
//! `--stream` is the paper's semi-streaming model end to end: the file
//! is validated once at open (a scan that also finds `n`), then each
//! peeling pass re-reads it through a fixed-size buffer. Only O(n) state
//! (liveness bits, degree counters, removal log) is ever held, so graphs
//! far larger than RAM work; the summary reports the pass count and an
//! estimate of that state's size. Results are identical to the
//! in-memory run on the same file, except that `--stream` skips
//! canonicalization: duplicate edges count twice and the input is taken
//! exactly as written (generated/canonical files are unaffected).

use std::process::exit;
use std::time::Instant;

use densest_subgraph::core as dsg_core;
use densest_subgraph::core::result::streaming_state_bytes;
use densest_subgraph::graph::io::{read_binary, read_text};
use densest_subgraph::graph::stream::{BinaryFileStream, EdgeStream, MemoryStream, TextFileStream};
use densest_subgraph::graph::{CsrDirected, CsrUndirected, EdgeList, GraphKind, NodeSet};
use densest_subgraph::sketch::{
    approx_densest_sketched, try_approx_densest_sketched, SketchParams,
};

struct Options {
    algorithm: String,
    path: String,
    epsilon: f64,
    k: usize,
    delta: f64,
    threads: usize,
    sketch_b: Option<u32>,
    stream: bool,
    binary: bool,
    directed_input: bool,
    json: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: densest <approx|atleast-k|directed|charikar|exact|enumerate> <edge-file> \
         [--epsilon f] [--k n] [--delta f] [--threads n] [--sketch b] [--stream] [--binary] \
         [--directed-input] [--json] [--quiet]"
    );
    exit(2);
}

const ALGORITHMS: [&str; 6] = [
    "approx",
    "atleast-k",
    "directed",
    "charikar",
    "exact",
    "enumerate",
];

/// Parses a flag value, naming the flag in the error. Never panics on
/// user input — asserts deep inside the kernels are not an error path.
fn parse_value<T: std::str::FromStr>(name: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{raw}' for {name}");
        exit(2);
    })
}

fn parse_options() -> Options {
    let mut args = std::env::args().skip(1);
    let algorithm = args.next().unwrap_or_else(|| usage());
    if !ALGORITHMS.contains(&algorithm.as_str()) {
        eprintln!("unknown algorithm '{algorithm}'");
        usage();
    }
    let path = args.next().unwrap_or_else(|| usage());
    let mut o = Options {
        algorithm,
        path,
        epsilon: 0.5,
        k: 10,
        delta: 2.0,
        threads: 1,
        sketch_b: None,
        stream: false,
        binary: false,
        directed_input: false,
        json: false,
        quiet: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--epsilon" => {
                o.epsilon = parse_value("--epsilon", &value("--epsilon"));
                // NaN/inf parse as f64 but poison every threshold
                // comparison downstream; reject them here by name.
                if !o.epsilon.is_finite() || o.epsilon < 0.0 {
                    eprintln!("--epsilon must be a finite number >= 0 (got {})", o.epsilon);
                    exit(2);
                }
            }
            "--k" => {
                o.k = parse_value("--k", &value("--k"));
                if o.k == 0 {
                    eprintln!("--k must be at least 1");
                    exit(2);
                }
            }
            "--delta" => {
                o.delta = parse_value("--delta", &value("--delta"));
                if !o.delta.is_finite() || o.delta <= 0.0 {
                    eprintln!("--delta must be a finite number > 0 (got {})", o.delta);
                    exit(2);
                }
            }
            "--threads" => {
                o.threads = parse_value("--threads", &value("--threads"));
                if o.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    exit(2);
                }
            }
            "--sketch" => {
                let b: u32 = parse_value("--sketch", &value("--sketch"));
                if b == 0 {
                    eprintln!("--sketch width must be at least 1");
                    exit(2);
                }
                o.sketch_b = Some(b);
            }
            "--stream" => o.stream = true,
            "--binary" => o.binary = true,
            "--directed-input" => o.directed_input = true,
            "--json" => o.json = true,
            "--quiet" => o.quiet = true,
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    if o.stream && !matches!(o.algorithm.as_str(), "approx" | "atleast-k") {
        eprintln!(
            "--stream supports only 'approx' and 'atleast-k' (got '{}'; the other algorithms \
             need the whole graph in memory)",
            o.algorithm
        );
        exit(2);
    }
    o
}

fn load(o: &Options) -> EdgeList {
    let kind = if o.directed_input || o.algorithm == "directed" {
        GraphKind::Directed
    } else {
        GraphKind::Undirected
    };
    let mut list = if o.binary {
        read_binary(&o.path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        })
    } else {
        read_text(&o.path, kind).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        })
    };
    list.kind = kind;
    list.canonicalize();
    list
}

fn print_set(nodes: &NodeSet, quiet: bool) {
    if quiet {
        return;
    }
    let v = nodes.to_vec();
    let shown: Vec<String> = v.iter().take(50).map(|u| u.to_string()).collect();
    let ellipsis = if v.len() > 50 { ", …" } else { "" };
    println!("nodes: [{}{}]", shown.join(", "), ellipsis);
}

/// Assembles the `--json` one-line summary. Keys/values are emitted in
/// insertion order; only JSON-safe primitives are used.
struct JsonSummary {
    fields: Vec<(String, String)>,
}

impl JsonSummary {
    fn new(o: &Options, num_nodes: u64, num_edges: u64) -> Self {
        let mut s = JsonSummary { fields: Vec::new() };
        s.str_field("algorithm", &o.algorithm);
        s.str_field("file", &o.path);
        s.num_field("graph_nodes", num_nodes as f64);
        s.num_field("graph_edges", num_edges as f64);
        s
    }

    fn str_field(&mut self, key: &str, value: &str) {
        let mut escaped = String::with_capacity(value.len());
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
    }

    fn num_field(&mut self, key: &str, value: f64) {
        let rendered = if value == value.trunc() && value.abs() < 1e15 {
            format!("{value:.0}")
        } else {
            format!("{value}")
        };
        self.fields.push((key.to_string(), rendered));
    }

    fn print(&self) {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        println!("{{{}}}", body.join(","));
    }
}

/// Opens the out-of-core stream for `--stream` (text via a validating
/// scan that also infers `n`, binary via the header) and returns it with
/// its edge count. The edge list is never materialized.
fn open_file_stream(o: &Options) -> (Box<dyn EdgeStream>, u64) {
    if o.binary {
        let s = BinaryFileStream::open(&o.path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        });
        let m = s.num_edges();
        (Box::new(s), m)
    } else {
        let s = TextFileStream::open_auto(&o.path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        });
        let m = s.num_edges();
        (Box::new(s), m)
    }
}

/// The `--stream` execution path: `approx`/`atleast-k` straight over the
/// file, one re-read per pass, without ever building an `EdgeList` or
/// CSR. Stream errors (I/O failure, file modified between passes) exit
/// with a clear message instead of a panic.
fn run_streamed(o: &Options) {
    let (mut stream, num_edges) = open_file_stream(o);
    let n = stream.num_nodes() as u64;
    if !o.quiet && !o.json {
        eprintln!(
            "streaming {}: {} nodes, {} edges (out-of-core; edge list not materialized)",
            o.path, n, num_edges
        );
    }
    if o.threads > 1 {
        eprintln!("warning: --threads has no effect with --stream (semi-streaming is serial)");
    }
    let mut json = JsonSummary::new(o, n, num_edges);
    let quiet = o.quiet || o.json;
    let started = Instant::now();
    let fail = |e: densest_subgraph::graph::GraphError| -> ! {
        eprintln!("streaming {} failed: {e}", o.path);
        exit(1);
    };

    let (run, oracle_words) = match o.algorithm.as_str() {
        "approx" => {
            if let Some(b) = o.sketch_b {
                let sk =
                    try_approx_densest_sketched(&mut *stream, o.epsilon, SketchParams::paper(b, 0))
                        .unwrap_or_else(|e| fail(e));
                if !quiet {
                    eprintln!(
                        "sketch: {} words vs {} exact ({:.0}%)",
                        sk.sketch_words,
                        sk.exact_words,
                        100.0 * sk.memory_ratio()
                    );
                }
                json.num_field("sketch_words", sk.sketch_words as f64);
                let words = sk.sketch_words as u64;
                (sk.run, words)
            } else {
                let run = dsg_core::undirected::try_approx_densest(&mut *stream, o.epsilon)
                    .unwrap_or_else(|e| fail(e));
                (run, n)
            }
        }
        "atleast-k" => {
            if o.k as u64 > n {
                eprintln!("--k {} exceeds the graph's {} nodes", o.k, n);
                exit(2);
            }
            let epsilon = o.epsilon.max(1e-6);
            let run = dsg_core::large::try_approx_densest_at_least_k(&mut *stream, o.k, epsilon)
                .unwrap_or_else(|e| fail(e));
            (run, n)
        }
        other => unreachable!("--stream validated in parse_options (got '{other}')"),
    };

    json.num_field("density", run.best_density);
    json.num_field("nodes", run.best_set.len() as f64);
    json.num_field("passes", run.passes as f64);
    if o.algorithm == "atleast-k" {
        json.num_field("k", o.k as f64);
        json.num_field("epsilon", o.epsilon.max(1e-6));
    } else {
        json.num_field("epsilon", o.epsilon);
    }
    json.num_field("threads", 1.0);
    json.num_field("stream", 1.0);
    json.num_field("state_bytes", streaming_state_bytes(n, oracle_words) as f64);
    if o.json {
        json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
        json.print();
        return;
    }
    match o.algorithm.as_str() {
        "atleast-k" => println!(
            "density {:.6} on {} nodes (k = {}, {} passes)",
            run.best_density,
            run.best_set.len(),
            o.k,
            run.passes
        ),
        _ => println!(
            "density {:.6} on {} nodes ({} passes, ε = {})",
            run.best_density,
            run.best_set.len(),
            run.passes,
            o.epsilon
        ),
    }
    print_set(&run.best_set, o.quiet);
    if !o.quiet {
        eprintln!(
            "peak streaming state ≈ {} bytes for {} nodes (edge file re-read {} times)",
            streaming_state_bytes(n, oracle_words),
            n,
            run.passes
        );
    }
}

fn main() {
    let o = parse_options();
    if o.stream {
        run_streamed(&o);
        return;
    }
    let list = load(&o);
    if !o.quiet && !o.json {
        eprintln!(
            "loaded {}: {} nodes, {} edges",
            o.path,
            list.num_nodes,
            list.num_edges()
        );
    }
    let mut json = JsonSummary::new(&o, list.num_nodes as u64, list.num_edges() as u64);
    let quiet = o.quiet || o.json;
    let started = Instant::now();

    // The parallel peeling backend serves atleast-k, directed, and
    // approx without the streaming sketch oracle; warn instead of
    // silently ignoring the flag elsewhere.
    let threads_used = matches!(o.algorithm.as_str(), "atleast-k" | "directed")
        || (o.algorithm == "approx" && o.sketch_b.is_none());
    if o.threads > 1 && !threads_used {
        eprintln!(
            "warning: --threads has no effect for '{}'{} (serial run)",
            o.algorithm,
            if o.algorithm == "approx" {
                " with --sketch"
            } else {
                ""
            }
        );
    }

    match o.algorithm.as_str() {
        "approx" => {
            let run = if let Some(b) = o.sketch_b {
                let mut stream = MemoryStream::new(list);
                let sk = approx_densest_sketched(&mut stream, o.epsilon, SketchParams::paper(b, 0));
                if !quiet {
                    eprintln!(
                        "sketch: {} words vs {} exact ({:.0}%)",
                        sk.sketch_words,
                        sk.exact_words,
                        100.0 * sk.memory_ratio()
                    );
                }
                json.num_field("sketch_words", sk.sketch_words as f64);
                sk.run
            } else {
                let csr = CsrUndirected::from_edge_list(&list);
                if o.threads > 1 {
                    dsg_core::undirected::approx_densest_csr_parallel(&csr, o.epsilon, o.threads)
                } else {
                    dsg_core::undirected::approx_densest_csr(&csr, o.epsilon)
                }
            };
            json.num_field("density", run.best_density);
            json.num_field("nodes", run.best_set.len() as f64);
            json.num_field("passes", run.passes as f64);
            json.num_field("epsilon", o.epsilon);
            json.num_field("threads", o.threads as f64);
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!(
                "density {:.6} on {} nodes ({} passes, ε = {})",
                run.best_density,
                run.best_set.len(),
                run.passes,
                o.epsilon
            );
            print_set(&run.best_set, o.quiet);
        }
        "atleast-k" => {
            if o.k > list.num_nodes as usize {
                eprintln!("--k {} exceeds the graph's {} nodes", o.k, list.num_nodes);
                exit(2);
            }
            let epsilon = o.epsilon.max(1e-6);
            let run = if o.threads > 1 {
                let csr = CsrUndirected::from_edge_list(&list);
                dsg_core::large::approx_densest_at_least_k_csr_parallel(
                    &csr, o.k, epsilon, o.threads,
                )
            } else {
                let mut stream = MemoryStream::new(list);
                dsg_core::large::approx_densest_at_least_k(&mut stream, o.k, epsilon)
            };
            json.num_field("density", run.best_density);
            json.num_field("nodes", run.best_set.len() as f64);
            json.num_field("passes", run.passes as f64);
            json.num_field("k", o.k as f64);
            json.num_field("epsilon", epsilon);
            json.num_field("threads", o.threads as f64);
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!(
                "density {:.6} on {} nodes (k = {}, {} passes)",
                run.best_density,
                run.best_set.len(),
                o.k,
                run.passes
            );
            print_set(&run.best_set, o.quiet);
        }
        "directed" => {
            let csr = CsrDirected::from_edge_list(&list);
            let sweep = if o.threads > 1 {
                dsg_core::directed::sweep_c_csr_parallel(&csr, o.delta, o.epsilon, o.threads)
            } else {
                dsg_core::directed::sweep_c_csr(&csr, o.delta, o.epsilon)
            };
            json.num_field("density", sweep.best.best_density);
            json.num_field("s_nodes", sweep.best.best_s.len() as f64);
            json.num_field("t_nodes", sweep.best.best_t.len() as f64);
            json.num_field("best_c", sweep.best.c);
            json.num_field("delta", o.delta);
            json.num_field("epsilon", o.epsilon);
            json.num_field("threads", o.threads as f64);
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!(
                "density {:.6} with |S| = {}, |T| = {} (best c = {:.4}, δ = {})",
                sweep.best.best_density,
                sweep.best.best_s.len(),
                sweep.best.best_t.len(),
                sweep.best.c,
                o.delta
            );
            if !o.quiet {
                println!("S:");
                print_set(&sweep.best.best_s, false);
                println!("T:");
                print_set(&sweep.best.best_t, false);
            }
        }
        "charikar" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let r = dsg_core::charikar::charikar_peel(&csr);
            json.num_field("density", r.best_density);
            json.num_field("nodes", r.best_set.len() as f64);
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!(
                "density {:.6} on {} nodes (exact greedy 2-approximation)",
                r.best_density,
                r.best_set.len()
            );
            print_set(&r.best_set, o.quiet);
        }
        "exact" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let r = densest_subgraph::flow::exact_densest(&csr);
            json.num_field("density", r.density);
            json.num_field("nodes", r.set.len() as f64);
            json.num_field("flow_calls", r.flow_calls as f64);
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!(
                "optimum density {:.6} on {} nodes ({} max-flow calls)",
                r.density,
                r.set.len(),
                r.flow_calls
            );
            print_set(&r.set, o.quiet);
        }
        "enumerate" => {
            let csr = CsrUndirected::from_edge_list(&list);
            let comms = dsg_core::enumerate::enumerate_dense_subgraphs(
                &csr,
                dsg_core::enumerate::EnumerateOptions {
                    epsilon: o.epsilon,
                    min_density: 1.0,
                    max_communities: 32,
                },
            );
            json.num_field("communities", comms.len() as f64);
            json.num_field("top_density", comms.first().map_or(0.0, |c| c.density));
            if o.json {
                json.num_field("elapsed_ms", started.elapsed().as_secs_f64() * 1e3);
                json.print();
                return;
            }
            println!("{} node-disjoint dense communities:", comms.len());
            for c in &comms {
                println!(
                    "  round {}: density {:.4} on {} nodes",
                    c.round,
                    c.density,
                    c.nodes.len()
                );
                print_set(&c.nodes, o.quiet);
            }
        }
        _ => unreachable!("algorithm validated against ALGORITHMS in parse_options"),
    }
}
