//! `densest` — a command-line densest-subgraph tool over edge-list files.
//!
//! The binary is a thin parser over the `dsg-engine` query engine: flags
//! become a [`Query`] + [`ResourcePolicy`], the engine's planner picks
//! the execution backend (in-memory serial, parallel CSR, file-streamed,
//! sketched; in-RAM vs spill-to-disk shuffle for MapReduce), and one
//! unified [`Report`] drives both the human and `--json` output. Run
//! `densest --help` for the full usage, including the long-running
//! `serve` mode that answers repeated JSONL queries against a
//! catalog-cached graph.

#![forbid(unsafe_code)]

use std::io::BufReader;
use std::path::PathBuf;
use std::process::exit;

use densest_subgraph::engine::{
    percentile, Algorithm, BackendRequest, ClientOptions, ClientStats, Engine, EngineError,
    Outcome, Query, Report, ResourcePolicy, ServeOptions, Source,
};
use densest_subgraph::flow::FlowBackend;
use densest_subgraph::graph::NodeSet;

const USAGE: &str =
    "usage: densest <approx|atleast-k|directed|charikar|exact|enumerate> <edge-file> \
     [--epsilon f] [--k n] [--delta f] [--threads n] [--sketch b] [--stream] [--binary] \
     [--directed-input] [--backend auto|memory|parallel|stream|mapreduce] [--memory-budget bytes] \
     [--flow-backend dinic|push-relabel] [--json] [--quiet]\n\
       densest serve [--socket <path>] [--workers n] [--max-connections n] [--shards n] \
     [--shard-spill edges] [--threads n] [--memory-budget bytes] [--max-graphs n] \
     [--result-cache bytes] [--warm-threshold f] [--incremental-threshold f] \
     [--compact-ratio f] [--data-dir <path>] [--fsync-every n] [--snapshot-every n] [--quiet]\n\
       densest client --socket <path> [--repeat n] [--parallel n] [--graph-per-conn] \
     [--binary] [--pipeline n]\n\
       densest --help";

const HELP: &str = "densest — densest-subgraph queries over edge-list files

usage:
  densest <algorithm> <edge-file> [options]     one-shot query
  densest serve [options]                       long-running JSONL server
  densest client --socket <path> [options]      client for a serve socket
  densest --help | -h                           this help

algorithms:
  approx     Algorithm 1  — undirected (2+2ε)-approximation  [default]
  atleast-k  Algorithm 2  — at least k nodes, (3+3ε)-approximation
  directed   Algorithm 3  — directed density with a c-sweep
  charikar   exact greedy peeling (2-approximation, in-memory)
  exact      Goldberg max-flow optimum (in-memory)
  enumerate  node-disjoint dense communities

query options:
  --epsilon <f>        approximation parameter ε (default 0.5)
  --k <n>              size floor for atleast-k (default 10)
  --delta <f>          c-grid resolution for directed (default 2, must be > 1)
  --sketch <b>         use a Count-Sketch degree oracle with width b (t=5)
  --binary             input is the dsg binary edge format
  --directed-input     parse the file as directed (for `directed`)
  --flow-backend <s>   max-flow solver for `exact`: dinic (default) or
                       push-relabel
  --json               print a one-line machine-readable JSON summary
  --quiet              print only the summary line

planner options (one-shot and serve):
  --threads <n>        worker threads (default 1 = serial; > 1 plans the
                       deterministic parallel CSR backend where one exists)
  --memory-budget <b>  working-set budget in bytes (suffixes k/m/g allowed);
                       graphs whose in-memory estimate exceeds it are planned
                       on the out-of-core streamed backend automatically
  --backend <s>        force a backend instead of planning: auto (default),
                       memory, parallel, stream, mapreduce
  --stream             shorthand for --backend stream (approx, atleast-k):
                       run straight over the file, one re-read per pass,
                       O(n) memory — the edge list is never materialized

serve mode:
  densest serve reads one flat JSON request per line (stdin, or a Unix
  socket with --socket) and writes one JSON response per line. Socket
  mode serves many clients concurrently: an accept thread hands
  connections to --workers worker threads (default 4) over a queue of at
  most --max-connections pending connections (default 64; a full queue
  blocks the accept thread — that is the backpressure). All workers
  share one engine: graphs are loaded once into a catalog (single-flight
  — concurrent cold requests trigger exactly one load) and every further
  query is a cache hit; repeated identical queries are replayed from a
  result cache without recomputing (bounded at --result-cache bytes,
  default 64m; 0 disables it). The response's `loads` and
  `result_cache_hit` counters prove both, and a {\"op\":\"stats\"} request
  reports the full counter set including the concurrent-connection high
  water mark. The catalog keeps at most --max-graphs graphs (default 32,
  LRU eviction). The loop exits cleanly on EOF (stdin), on client
  disconnect (socket: that connection only), or on a {\"op\":\"shutdown\"}
  request, which drains in-flight queries before removing the socket
  file. Example session:

    $ densest serve --socket /tmp/dsg.sock &
    $ printf '%s\\n' \\
        '{\"id\":1,\"algorithm\":\"approx\",\"file\":\"g.txt\",\"epsilon\":0.5}' \\
        '{\"id\":2,\"algorithm\":\"exact\",\"file\":\"g.txt\"}' \\
        '{\"op\":\"shutdown\"}' | densest client --socket /tmp/dsg.sock
    {\"id\":1,\"ok\":true,\"result\":{...},\"cache_hit\":0,\"result_cache_hit\":0,\"loads\":1,\"elapsed_ms\":...}
    {\"id\":2,\"ok\":true,\"result\":{...},\"cache_hit\":1,\"result_cache_hit\":0,\"loads\":1,\"elapsed_ms\":...}
    {\"id\":null,\"ok\":true,\"bye\":true}

  The nested `result` object is byte-identical to the one-shot `--json`
  summary of the same query (minus the nondeterministic elapsed_ms) —
  cold, catalog-cached, and result-cache-replayed alike.

sharded serving (socket mode):
  --shards n (default 1) splits the server into n independent engines —
  each with its own catalog, result cache, and warm/incremental state on
  its own executor pool — behind one socket. A front router owns all
  connection I/O and routes every request by a stable hash of its graph
  identity (\"graph\" name, else \"file\" path), so a named graph's whole
  session always lands on the same shard and shards never touch each
  other's locks. Responses stay byte-identical in content to a 1-shard
  server; the stats op reports merged counters plus a per-shard
  \"shards\" breakdown. --shard-spill <edges> (default off) additionally
  promotes any unforced approx query over at least that many edges onto
  the MapReduce substrate, partitioning its peeling passes across worker
  threads (byte-identical results, plan reason names the threshold).

mutable graph sessions (serve mode):
  {\"op\":\"create_graph\",\"graph\":\"g\",\"directed\":false,\"edges\":\"0 1, 1 2\"}
  makes a named in-memory mutable graph; {\"op\":\"add_edges\"} /
  {\"op\":\"remove_edges\"} mutate it in batches (edges are one flat
  string of 'u v' pairs) and {\"op\":\"compact\"} folds its delta logs
  into a fresh base. Queries target it with \"graph\":\"g\" instead of
  \"file\". Every mutation bumps the graph's version; cached results of
  older versions are structurally unreachable and evicted eagerly, so a
  query after a mutation always recomputes (result_cache_hit: 0). Small
  deltas take the incremental tier first: the mutation journal is
  replayed through the stored peel trace and only the affected region is
  re-peeled, verified against the published snapshot before answering
  (--incremental-threshold bounds the affected set at that fraction of
  the nodes, default 0.05; 0 disables the tier). Past that, a warm
  restart re-peels from the previous version's result where the delta is
  small (--warm-threshold, default 0.25; delta logs auto-compact past
  --compact-ratio x base edges, default 1). The stats op reports
  per-graph version/delta_edges/compactions plus warm and incremental
  hit/fallback counters.

durable sessions (serve mode):
  --data-dir <path> makes named graphs survive restarts: every session
  op (create/add/remove/compact) is appended to a checksummed
  write-ahead log under <path> *before* the new version is published,
  and a compacted snapshot is rotated in every --snapshot-every records
  (default 256). On startup the server replays log-over-snapshot and
  resumes at the exact version it stopped at — versions never regress,
  so result-cache and warm-seed invariants hold across a crash. A torn
  tail record (kill mid-append) fails its checksum and is dropped
  whole, never replayed partially. --fsync-every n fsyncs the log after
  every nth record (default 1 = every record; 0 = leave flushing to the
  OS). Each shard persists under its own <path>/shard-<i> subdirectory,
  so the shard count must be stable across restarts of the same data
  dir. The stats op reports per-graph wal_bytes/snapshot_version/
  last_fsync plus server-wide replayed_ops/dropped_tail_records.

client mode:
  densest client forwards each stdin line to the server and prints each
  response line. --repeat n sends the whole request set n times;
  --parallel n spreads those rounds across n concurrent connections
  (round-robin — total work is repeat x request-set regardless of the
  connection count; responses are printed grouped per connection, and a
  throughput summary with per-connection p50/p99 latency goes to
  stderr). --graph-per-conn partitions the request set by graph identity
  instead, with the server's own routing hash: connection c carries
  exactly the requests an n-shard server would route to shard c, and
  sends them --repeat times — disjoint-shard load for the throughput
  grid.
  --binary switches the connection to the length-prefixed binary frame
  protocol (the server detects it per connection; response lines stay
  byte-identical to JSONL), and --pipeline n keeps up to n requests in
  flight per connection — in binary mode each window travels as one
  batch frame. The throughput experiment and the CI concurrent-serve
  smoke are built on these flags.

The input is a whitespace-separated `u v [w]` edge list with `#` comments
(SNAP format), or the compact binary format with --binary. The planner is
deterministic and explainable: the chosen backend and the rules that fired
are reported in the JSON summary (`backend`, `plan`) and on stderr.";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

const ALGORITHMS: [&str; 6] = [
    "approx",
    "atleast-k",
    "directed",
    "charikar",
    "exact",
    "enumerate",
];

/// Parses a flag value, naming the flag in the error. Never panics on
/// user input — asserts deep inside the kernels are not an error path.
fn parse_value<T: std::str::FromStr>(name: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{raw}' for {name}");
        exit(2);
    })
}

/// Byte-size flags (`--memory-budget`, `--result-cache`) accept plain
/// bytes or k/m/g (KiB multiple) suffixes.
fn parse_budget(name: &str, raw: &str) -> u64 {
    let (digits, mult) = match raw.trim().to_ascii_lowercase() {
        s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 1024u64),
        s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 1024 * 1024),
        s if s.ends_with('g') => (s[..s.len() - 1].to_string(), 1024 * 1024 * 1024),
        s => (s, 1),
    };
    let n: u64 = parse_value(name, &digits);
    n.checked_mul(mult).unwrap_or_else(|| {
        eprintln!("invalid value '{raw}' for {name} (overflows)");
        exit(2);
    })
}

struct Options {
    algorithm: String,
    path: String,
    epsilon: f64,
    k: usize,
    delta: f64,
    threads: usize,
    sketch_b: Option<u32>,
    stream: bool,
    backend: Option<BackendRequest>,
    memory_budget: Option<u64>,
    flow_backend: Option<FlowBackend>,
    binary: bool,
    directed_input: bool,
    json: bool,
    quiet: bool,
}

/// Parses the shared query/planner flags; `algorithm`/`path` are already
/// consumed by the caller. Used by the one-shot mode.
fn parse_options(algorithm: String, path: String, args: impl Iterator<Item = String>) -> Options {
    let mut o = Options {
        algorithm,
        path,
        epsilon: 0.5,
        k: 10,
        delta: 2.0,
        threads: 1,
        sketch_b: None,
        stream: false,
        backend: None,
        memory_budget: None,
        flow_backend: None,
        binary: false,
        directed_input: false,
        json: false,
        quiet: false,
    };
    let mut it = args;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--epsilon" => {
                o.epsilon = parse_value("--epsilon", &value("--epsilon"));
                // NaN/inf parse as f64 but poison every threshold
                // comparison downstream; reject them here by name.
                if !o.epsilon.is_finite() || o.epsilon < 0.0 {
                    eprintln!("--epsilon must be a finite number >= 0 (got {})", o.epsilon);
                    exit(2);
                }
            }
            "--k" => {
                o.k = parse_value("--k", &value("--k"));
                if o.k == 0 {
                    eprintln!("--k must be at least 1");
                    exit(2);
                }
            }
            "--delta" => {
                o.delta = parse_value("--delta", &value("--delta"));
                if !o.delta.is_finite() || o.delta <= 0.0 {
                    eprintln!("--delta must be a finite number > 0 (got {})", o.delta);
                    exit(2);
                }
            }
            "--threads" => {
                o.threads = parse_value("--threads", &value("--threads"));
                if o.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    exit(2);
                }
            }
            "--sketch" => {
                let b: u32 = parse_value("--sketch", &value("--sketch"));
                if b == 0 {
                    eprintln!("--sketch width must be at least 1");
                    exit(2);
                }
                o.sketch_b = Some(b);
            }
            "--stream" => o.stream = true,
            "--backend" => {
                let raw = value("--backend");
                o.backend = BackendRequest::parse(&raw).unwrap_or_else(|| {
                    eprintln!(
                        "invalid value '{raw}' for --backend \
                         (auto|memory|parallel|stream|mapreduce)"
                    );
                    exit(2);
                });
            }
            "--memory-budget" => {
                o.memory_budget = Some(parse_budget("--memory-budget", &value("--memory-budget")));
            }
            "--flow-backend" => {
                let raw = value("--flow-backend");
                o.flow_backend = Some(match raw.as_str() {
                    "dinic" => FlowBackend::Dinic,
                    "push-relabel" => FlowBackend::PushRelabel,
                    _ => {
                        eprintln!("invalid value '{raw}' for --flow-backend (dinic|push-relabel)");
                        exit(2);
                    }
                });
            }
            "--binary" => o.binary = true,
            "--directed-input" => o.directed_input = true,
            "--json" => o.json = true,
            "--quiet" => o.quiet = true,
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    if o.stream && !matches!(o.algorithm.as_str(), "approx" | "atleast-k") {
        eprintln!(
            "--stream supports only 'approx' and 'atleast-k' (got '{}'; the other algorithms \
             need the whole graph in memory)",
            o.algorithm
        );
        exit(2);
    }
    if o.flow_backend.is_some() && o.algorithm != "exact" {
        eprintln!(
            "--flow-backend applies only to 'exact' (got '{}')",
            o.algorithm
        );
        exit(2);
    }
    o
}

/// Assembles the engine query from parsed flags.
fn build_query(o: &Options) -> Query {
    let algorithm = match o.algorithm.as_str() {
        "approx" => Algorithm::Approx {
            epsilon: o.epsilon,
            sketch: o.sketch_b,
        },
        "atleast-k" => Algorithm::AtLeastK {
            k: o.k,
            epsilon: o.epsilon,
        },
        "directed" => Algorithm::Directed {
            delta: o.delta,
            epsilon: o.epsilon,
        },
        "charikar" => Algorithm::Charikar,
        "exact" => Algorithm::Exact {
            flow: o.flow_backend.unwrap_or_default(),
        },
        "enumerate" => Algorithm::Enumerate {
            epsilon: o.epsilon,
            min_density: 1.0,
            max_communities: 32,
        },
        other => unreachable!("algorithm validated against ALGORITHMS ({other})"),
    };
    let backend = if o.stream {
        Some(BackendRequest::Streamed)
    } else {
        o.backend
    };
    Query { algorithm, backend }
}

fn print_set(nodes: &NodeSet, quiet: bool) {
    if quiet {
        return;
    }
    let v = nodes.to_vec();
    let shown: Vec<String> = v.iter().take(50).map(|u| u.to_string()).collect();
    let ellipsis = if v.len() > 50 { ", …" } else { "" };
    println!("nodes: [{}{}]", shown.join(", "), ellipsis);
}

/// Renders the human-readable result, matching the pre-engine output of
/// every algorithm branch byte for byte.
fn print_human(o: &Options, report: &Report) {
    match (&report.query.algorithm, &report.outcome) {
        (Algorithm::Approx { epsilon, .. }, _) => {
            println!(
                "density {:.6} on {} nodes ({} passes, ε = {})",
                report.density(),
                report.node_count(),
                report.passes().unwrap_or(0),
                epsilon
            );
            print_set(report.best_set().expect("approx has a set"), o.quiet);
        }
        (Algorithm::AtLeastK { k, .. }, _) => {
            println!(
                "density {:.6} on {} nodes (k = {}, {} passes)",
                report.density(),
                report.node_count(),
                k,
                report.passes().unwrap_or(0)
            );
            print_set(report.best_set().expect("atleast-k has a set"), o.quiet);
        }
        (Algorithm::Directed { delta, .. }, Outcome::Sweep(sweep)) => {
            println!(
                "density {:.6} with |S| = {}, |T| = {} (best c = {:.4}, δ = {})",
                sweep.best.best_density,
                sweep.best.best_s.len(),
                sweep.best.best_t.len(),
                sweep.best.c,
                delta
            );
            if !o.quiet {
                println!("S:");
                print_set(&sweep.best.best_s, false);
                println!("T:");
                print_set(&sweep.best.best_t, false);
            }
        }
        (Algorithm::Charikar, _) => {
            println!(
                "density {:.6} on {} nodes (exact greedy 2-approximation)",
                report.density(),
                report.node_count()
            );
            print_set(report.best_set().expect("charikar has a set"), o.quiet);
        }
        (Algorithm::Exact { .. }, Outcome::Exact(r)) => {
            println!(
                "optimum density {:.6} on {} nodes ({} max-flow calls)",
                r.density,
                r.set.len(),
                r.flow_calls
            );
            print_set(&r.set, o.quiet);
        }
        (Algorithm::Enumerate { .. }, Outcome::Communities(comms)) => {
            println!("{} node-disjoint dense communities:", comms.len());
            for c in comms {
                println!(
                    "  round {}: density {:.4} on {} nodes",
                    c.round,
                    c.density,
                    c.nodes.len()
                );
                print_set(&c.nodes, o.quiet);
            }
        }
        (alg, _) => unreachable!("outcome shape mismatch for {}", alg.name()),
    }
}

/// Renders an engine error exactly as the pre-engine CLI did, and exits.
fn fail(o: &Options, e: EngineError) -> ! {
    match e {
        EngineError::Graph(e) => {
            eprintln!("cannot read {}: {e}", o.path);
            exit(1);
        }
        EngineError::StreamFailed(e) => {
            eprintln!("streaming {} failed: {e}", o.path);
            exit(1);
        }
        EngineError::KTooLarge { k, n } => {
            eprintln!("--k {k} exceeds the graph's {n} nodes");
            exit(2);
        }
        EngineError::InvalidQuery(msg) | EngineError::Unsupported(msg) => {
            eprintln!("{msg}");
            exit(2);
        }
        // Named session graphs exist only inside a running server; the
        // one-shot CLI can never hold one, but the match stays
        // exhaustive so a new error variant is a compile error here.
        e @ (EngineError::UnknownGraph { .. }
        | EngineError::GraphExists { .. }
        | EngineError::StaleGraph { .. }
        | EngineError::Persistence(_)) => {
            eprintln!("{e}");
            exit(2);
        }
    }
}

/// One-shot query mode: parse → plan + execute via the engine → render.
fn run_query(algorithm: String, path: String, rest: impl Iterator<Item = String>) {
    let o = parse_options(algorithm, path, rest);
    let query = build_query(&o);
    let policy = ResourcePolicy {
        memory_budget_bytes: o.memory_budget,
        threads: o.threads,
    };
    let source = Source::File {
        path: PathBuf::from(&o.path),
        binary: o.binary,
        directed_input: o.directed_input,
    };

    // Warn when --threads cannot take effect, instead of silently
    // ignoring the flag.
    if o.threads > 1 {
        if o.stream {
            eprintln!("warning: --threads has no effect with --stream (semi-streaming is serial)");
        } else if !query.algorithm.parallelizable() {
            eprintln!(
                "warning: --threads has no effect for '{}'{} (serial run)",
                o.algorithm,
                if o.algorithm == "approx" {
                    " with --sketch"
                } else {
                    ""
                }
            );
        }
    }

    let engine = Engine::new();
    // A one-shot process can never replay a cached result; a zero
    // budget makes the engine skip the report deep-clone entirely.
    engine.results().set_budget(0);
    let report = engine
        .execute(&source, &query, &policy)
        .unwrap_or_else(|e| fail(&o, e));

    if !o.quiet && !o.json {
        if matches!(report.plan.backend.name(), "stream" | "sketch-stream") {
            eprintln!(
                "streaming {}: {} nodes, {} edges (out-of-core; edge list not materialized)",
                o.path, report.graph_nodes, report.graph_edges
            );
        } else {
            eprintln!(
                "loaded {}: {} nodes, {} edges",
                o.path, report.graph_nodes, report.graph_edges
            );
        }
        eprintln!("plan: {}", report.plan.explain());
        if let Some((words, exact)) = report.sketch_words {
            // exact = n; an empty graph would divide by zero.
            let pct = if exact == 0 {
                100.0
            } else {
                100.0 * words as f64 / exact as f64
            };
            eprintln!("sketch: {words} words vs {exact} exact ({pct:.0}%)");
        }
    }

    if o.json {
        println!("{}", report.json_object(true));
        return;
    }
    print_human(&o, &report);
    if !o.quiet {
        if let Some(state) = report.state_bytes {
            eprintln!(
                "peak streaming state ≈ {} bytes for {} nodes (edge file re-read {} times)",
                state,
                report.graph_nodes,
                report.passes().unwrap_or(0)
            );
        }
    }
}

/// `densest serve`: the long-running JSONL loop (stdin, or a Unix
/// socket with an accept thread + worker pool).
fn run_serve(args: impl Iterator<Item = String>) {
    let mut socket: Option<PathBuf> = None;
    let mut policy = ResourcePolicy::default();
    let mut options = ServeOptions::default();
    let mut max_graphs = densest_subgraph::engine::catalog::DEFAULT_MAX_ENTRIES;
    let mut result_cache_bytes = densest_subgraph::engine::result_cache::DEFAULT_RESULT_CACHE_BYTES;
    let mut warm_threshold: Option<f64> = None;
    let mut incremental_threshold: Option<f64> = None;
    let mut compact_ratio: Option<f64> = None;
    let mut shard_spill: Option<u64> = None;
    let mut quiet = false;
    let mut it = args.collect::<Vec<_>>().into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--workers" => {
                options.workers = parse_value("--workers", &value("--workers"));
                if options.workers == 0 {
                    eprintln!("--workers must be at least 1");
                    exit(2);
                }
            }
            "--max-connections" => {
                options.max_connections =
                    parse_value("--max-connections", &value("--max-connections"));
                if options.max_connections == 0 {
                    eprintln!("--max-connections must be at least 1");
                    exit(2);
                }
            }
            "--shards" => {
                options.shards = parse_value("--shards", &value("--shards"));
                if options.shards == 0 {
                    eprintln!("--shards must be at least 1");
                    exit(2);
                }
            }
            "--shard-spill" => {
                shard_spill = Some(parse_budget("--shard-spill", &value("--shard-spill")));
            }
            "--data-dir" => options.data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--fsync-every" => {
                options.fsync_every = parse_value("--fsync-every", &value("--fsync-every"));
            }
            "--snapshot-every" => {
                options.snapshot_every =
                    parse_value("--snapshot-every", &value("--snapshot-every"));
                if options.snapshot_every == 0 {
                    eprintln!("--snapshot-every must be at least 1");
                    exit(2);
                }
            }
            "--threads" => {
                policy.threads = parse_value("--threads", &value("--threads"));
                if policy.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    exit(2);
                }
            }
            "--memory-budget" => {
                policy.memory_budget_bytes =
                    Some(parse_budget("--memory-budget", &value("--memory-budget")));
            }
            "--max-graphs" => {
                max_graphs = parse_value("--max-graphs", &value("--max-graphs"));
                if max_graphs == 0 {
                    eprintln!("--max-graphs must be at least 1");
                    exit(2);
                }
            }
            "--result-cache" => {
                result_cache_bytes = parse_budget("--result-cache", &value("--result-cache"));
            }
            "--warm-threshold" => {
                let t: f64 = parse_value("--warm-threshold", &value("--warm-threshold"));
                if !t.is_finite() || t < 0.0 {
                    eprintln!("--warm-threshold must be a finite number >= 0 (got {t})");
                    exit(2);
                }
                warm_threshold = Some(t);
            }
            "--incremental-threshold" => {
                let t: f64 =
                    parse_value("--incremental-threshold", &value("--incremental-threshold"));
                if !t.is_finite() || t < 0.0 {
                    eprintln!("--incremental-threshold must be a finite number >= 0 (got {t})");
                    exit(2);
                }
                incremental_threshold = Some(t);
            }
            "--compact-ratio" => {
                let r: f64 = parse_value("--compact-ratio", &value("--compact-ratio"));
                if !r.is_finite() || r < 0.0 {
                    eprintln!("--compact-ratio must be a finite number >= 0 (got {r})");
                    exit(2);
                }
                compact_ratio = Some(r);
            }
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    let engine = Engine::new();
    engine.catalog().set_max_entries(max_graphs);
    engine.results().set_budget(result_cache_bytes);
    if let Some(t) = warm_threshold {
        engine.set_warm_threshold(t);
    }
    if let Some(t) = incremental_threshold {
        engine.set_incremental_threshold(t);
    }
    if let Some(r) = compact_ratio {
        engine.catalog().set_compact_ratio(r);
    }
    if let Some(edges) = shard_spill {
        engine.set_mapreduce_spill(if edges > 0 { Some(edges) } else { None });
    }
    if options.shards > 1 && socket.is_none() {
        eprintln!("--shards requires --socket (stdin mode is one connection)");
        exit(2);
    }
    // Durable sessions: single-engine modes (stdin, or socket with one
    // shard) open the data dir here so the banner can report recovery;
    // sharded servers open one `shard-<i>` subdirectory per shard
    // inside `serve_unix`.
    if let Some(dir) = &options.data_dir {
        if options.shards <= 1 {
            let recovery = engine
                .catalog()
                .open_data_dir(
                    &dir.join("shard-0"),
                    options.fsync_every,
                    options.snapshot_every,
                )
                .unwrap_or_else(|e| {
                    eprintln!("cannot open --data-dir {}: {e}", dir.display());
                    exit(1);
                });
            if !quiet {
                eprintln!(
                    "durable sessions under {} (fsync every {}, snapshot every {}): recovered {} \
                     graphs, replayed {} ops, dropped {} torn tails, resuming at version {}",
                    dir.display(),
                    options.fsync_every,
                    options.snapshot_every,
                    recovery.graphs,
                    recovery.replayed_ops,
                    recovery.dropped_tail_records,
                    recovery.max_version,
                );
            }
        } else if !quiet {
            eprintln!(
                "durable sessions under {} (fsync every {}, snapshot every {}, one subdir per \
                 shard)",
                dir.display(),
                options.fsync_every,
                options.snapshot_every,
            );
        }
    }
    let summary = match &socket {
        Some(path) => {
            if !quiet {
                eprintln!(
                    "serving JSONL queries on socket {} ({} workers, {} pending connections max{})",
                    path.display(),
                    options.workers.max(1),
                    options.max_connections.max(1),
                    if options.shards > 1 {
                        format!(", {} engine shards", options.shards)
                    } else {
                        String::new()
                    }
                );
            }
            densest_subgraph::engine::serve_unix(&engine, &policy, path, &options)
        }
        None => {
            if !quiet {
                eprintln!("serving JSONL queries on stdin (EOF shuts down)");
            }
            densest_subgraph::engine::serve_stdio(&engine, &policy)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("serve failed: {e}");
        exit(1);
    });
    if !quiet {
        let stats = engine.catalog().stats();
        let results = engine.results().stats();
        let warm = engine.warm_stats();
        eprintln!(
            "served {} queries and {} mutations ({} errors) over {} connections (peak {} \
             concurrent): {} graph loads, {} cache hits, {} result-cache hits, {} incremental \
             re-peels ({} fallbacks), {} warm restarts ({} fallbacks); {}",
            summary.queries,
            summary.mutations,
            summary.errors,
            summary.connections,
            summary.peak_connections,
            stats.loads,
            stats.hits,
            results.hits,
            summary.incremental_hits,
            summary.incremental_fallbacks,
            warm.hits,
            warm.fallbacks,
            if summary.shutdown {
                "shutdown requested"
            } else {
                "input closed"
            }
        );
    }
}

/// `densest client --socket <path> [--repeat n] [--parallel n]
/// [--binary] [--pipeline n]`: forward stdin requests to a server,
/// optionally over the binary frame transport, pipelined, repeating
/// the request set and fanning it out over parallel connections.
fn run_client(args: impl Iterator<Item = String>) {
    let mut socket: Option<PathBuf> = None;
    let mut repeat: usize = 1;
    let mut parallel: usize = 1;
    let mut graph_per_conn = false;
    let mut client_options = ClientOptions::default();
    let mut it = args.collect::<Vec<_>>().into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--repeat" => {
                repeat = parse_value("--repeat", &value("--repeat"));
                if repeat == 0 {
                    eprintln!("--repeat must be at least 1");
                    exit(2);
                }
            }
            "--parallel" => {
                parallel = parse_value("--parallel", &value("--parallel"));
                if parallel == 0 {
                    eprintln!("--parallel must be at least 1");
                    exit(2);
                }
            }
            "--graph-per-conn" => graph_per_conn = true,
            "--binary" => client_options.binary = true,
            "--pipeline" => {
                client_options.pipeline = parse_value("--pipeline", &value("--pipeline"));
                if client_options.pipeline == 0 {
                    eprintln!("--pipeline must be at least 1");
                    exit(2);
                }
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    let socket = socket.unwrap_or_else(|| {
        eprintln!("densest client requires --socket <path>");
        exit(2);
    });
    let stdin = std::io::stdin();
    let plain = repeat == 1 && parallel == 1;
    if plain && !client_options.binary && client_options.pipeline == 1 {
        // Plain JSONL lockstep streams stdin line by line (stays
        // interactive — responses appear as requests are typed).
        let mut stdout = std::io::stdout().lock();
        if let Err(e) = densest_subgraph::engine::client_unix(
            &socket,
            BufReader::new(stdin.lock()),
            &mut stdout,
        ) {
            eprintln!("client failed: {e}");
            exit(1);
        }
        return;
    }
    // Every other mode reads the whole request set first, then each of
    // `parallel` connections sends it `repeat` times through
    // `client_unix_opts` (binary framing and pipelining live there).
    let requests: String = {
        use std::io::Read;
        let mut buf = String::new();
        if let Err(e) = stdin.lock().read_to_string(&mut buf) {
            eprintln!("client failed reading stdin: {e}");
            exit(1);
        }
        buf
    };
    // The request set is repeated `repeat` times and the rounds are
    // spread across the `parallel` connections — total work is
    // repeat x request-set no matter the connection count, so the
    // throughput grid varies concurrency without varying load. With
    // --graph-per-conn the split is by graph identity instead, using
    // the server's own routing hash: connection c carries exactly the
    // requests an n-shard server routes to shard c (disjoint-shard
    // load), sent `repeat` times.
    let per_conn_requests: Vec<String> = {
        let lines: Vec<&str> = requests.lines().filter(|l| !l.trim().is_empty()).collect();
        if graph_per_conn {
            use densest_subgraph::engine::minijson::{self, Value};
            let mut parts = vec![String::new(); parallel];
            for line in &lines {
                let conn = minijson::parse_object(line)
                    .map(|fields| {
                        let graph = minijson::get(&fields, "graph").and_then(Value::as_str);
                        let file = minijson::get(&fields, "file").and_then(Value::as_str);
                        densest_subgraph::engine::routing_shard(graph, file, parallel)
                    })
                    .unwrap_or(0);
                parts[conn].push_str(line);
                parts[conn].push('\n');
            }
            parts.into_iter().map(|part| part.repeat(repeat)).collect()
        } else {
            let mut round = String::with_capacity(requests.len() + 1);
            for line in &lines {
                round.push_str(line);
                round.push('\n');
            }
            (0..parallel)
                .map(|conn| {
                    let rounds = repeat / parallel + usize::from(conn < repeat % parallel);
                    round.repeat(rounds)
                })
                .collect()
        }
    };
    // Per connection: the responses received so far (flushed to stdout
    // even when the connection later died), the latency stats, and the
    // error if the connection failed mid-round — a failed worker must
    // surface *which* connection died after *how many* exchanges, and
    // the process must exit non-zero, not just report throughput.
    let expected_per_conn: Vec<u64> = per_conn_requests
        .iter()
        .map(|r| r.lines().count() as u64)
        .collect();
    let started = std::time::Instant::now();
    type ConnOutput = (Vec<u8>, ClientStats, Option<std::io::Error>);
    let outputs: Vec<ConnOutput> = std::thread::scope(|s| {
        let handles: Vec<_> = per_conn_requests
            .iter()
            .map(|conn_requests| {
                let socket = &socket;
                let options = &client_options;
                s.spawn(move || {
                    let mut out = Vec::new();
                    match densest_subgraph::engine::client_unix_opts(
                        socket,
                        std::io::Cursor::new(conn_requests.as_bytes()),
                        &mut out,
                        options,
                    ) {
                        Ok(stats) => (out, stats, None),
                        Err(e) => {
                            // Responses stream into `out` as they
                            // arrive, so the partial transcript
                            // survives the failure.
                            let partial = out.iter().filter(|&&b| b == b'\n').count() as u64;
                            let stats = ClientStats {
                                exchanges: partial,
                                ..ClientStats::default()
                            };
                            (out, stats, Some(e))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut total_exchanges = 0u64;
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut failures = 0usize;
    {
        use std::io::Write;
        let mut stdout = std::io::stdout().lock();
        for (conn, (out, stats, error)) in outputs.iter().enumerate() {
            total_exchanges += stats.exchanges;
            all_latencies.extend_from_slice(&stats.latencies_ms);
            if stdout.write_all(out).is_err() {
                failures += 1;
            }
            if let Some(e) = error {
                failures += 1;
                eprintln!(
                    "client connection {conn} failed after {}/{} exchanges: {e}",
                    stats.exchanges, expected_per_conn[conn]
                );
            } else if parallel > 1 {
                eprintln!(
                    "client connection {conn}: {} exchanges, p50 {:.3} ms, p99 {:.3} ms",
                    stats.exchanges,
                    stats.percentile_ms(50.0),
                    stats.percentile_ms(99.0)
                );
            }
        }
    }
    eprintln!(
        "client: {} exchanges over {} connection(s) x {} repeat(s) [{}{}] in {:.1} ms \
         ({:.0} req/s, p50 {:.3} ms, p99 {:.3} ms){}",
        total_exchanges,
        parallel,
        repeat,
        if client_options.binary {
            "binary"
        } else {
            "jsonl"
        },
        if client_options.pipeline > 1 {
            format!(", pipeline {}", client_options.pipeline)
        } else {
            String::new()
        },
        elapsed * 1e3,
        if elapsed > 0.0 {
            total_exchanges as f64 / elapsed
        } else {
            0.0
        },
        percentile(&all_latencies, 50.0),
        percentile(&all_latencies, 99.0),
        if failures > 0 {
            format!("; {failures} connection(s) FAILED")
        } else {
            String::new()
        }
    );
    // A parallel fan-out is usually a benchmark run; round it off with
    // the server's maintenance counters so a mutate-heavy workload shows
    // how many answers the incremental tier carried. Best-effort: a
    // server that went away between the run and this probe just skips
    // the line.
    if parallel > 1 && failures == 0 {
        if let Some((inc_hits, inc_fallbacks, warm_hits)) = fetch_server_maintenance(&socket) {
            eprintln!(
                "server maintenance: {inc_hits} incremental re-peels \
                 ({inc_fallbacks} fallbacks), {warm_hits} warm restarts"
            );
        }
    }
    if failures > 0 {
        exit(1);
    }
}

/// One best-effort `stats` exchange: the server's incremental
/// hit/fallback and warm-hit counters, or `None` if the probe failed.
fn fetch_server_maintenance(socket: &std::path::Path) -> Option<(u64, u64, u64)> {
    use densest_subgraph::engine::minijson;
    let mut out = Vec::new();
    densest_subgraph::engine::client_unix_opts(
        socket,
        std::io::Cursor::new("{\"op\":\"stats\"}\n".to_string()),
        &mut out,
        &ClientOptions::default(),
    )
    .ok()?;
    let line = std::str::from_utf8(&out).ok()?.lines().next()?;
    let fields = minijson::parse_object(line).ok()?;
    let uint = |key: &str| minijson::get(&fields, key).and_then(minijson::Value::as_uint);
    Some((
        uint("incremental_hits")?,
        uint("incremental_fallbacks")?,
        uint("warm_hits")?,
    ))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next().unwrap_or_else(|| usage());
    match first.as_str() {
        "--help" | "-h" | "help" => {
            println!("{HELP}");
        }
        "serve" => run_serve(args),
        "client" => run_client(args),
        alg if ALGORITHMS.contains(&alg) => {
            let path = args.next().unwrap_or_else(|| usage());
            run_query(first, path, args);
        }
        other => {
            eprintln!("unknown algorithm '{other}'");
            usage();
        }
    }
}
