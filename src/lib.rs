//! # densest-subgraph
//!
//! A comprehensive Rust reproduction of *"Densest Subgraph in Streaming
//! and MapReduce"* (Bahmani, Kumar, Vassilvitskii; PVLDB 5(5), 2012).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`graph`] — graph substrate: CSR snapshots, node sets, multi-pass
//!   edge streams, generators (including the paper's lower-bound
//!   instances), and I/O.
//! * [`core`] — the paper's algorithms: Algorithm 1 (undirected),
//!   Algorithm 2 (size-constrained), Algorithm 3 (directed), plus
//!   Charikar's greedy peeling baseline and core decomposition.
//! * [`flow`] — exact densest subgraph via Goldberg's max-flow reduction
//!   (used in place of the paper's LP solver to measure approximation
//!   quality).
//! * [`sketch`] — Count-Sketch / Count-Min degree oracles and the
//!   sketched streaming variant of §5.1.
//! * [`mapreduce`] — a thread-pool MapReduce simulator and the MapReduce
//!   realization of §5.2.
//! * [`engine`] — the query engine: declarative `Query` → resource-aware
//!   `Plan` → unified `Report`, a fingerprinting `GraphCatalog`, and the
//!   long-running JSONL serve loop (`densest serve`).
//! * [`datasets`] — synthetic stand-ins for the paper's evaluation
//!   datasets.
//!
//! ## Quickstart
//!
//! ```
//! use densest_subgraph::graph::gen;
//! use densest_subgraph::graph::stream::MemoryStream;
//! use densest_subgraph::core::undirected::approx_densest;
//!
//! // A 30-clique planted in a sparse background.
//! let planted = gen::planted_clique(500, 1000, 30, 42);
//! let mut stream = MemoryStream::new(planted.graph.clone());
//! let run = approx_densest(&mut stream, 0.5);
//! // Guarantee: within (2 + 2ε) of optimal. The planted clique has
//! // density (30-1)/2 = 14.5, so the result must be ≥ 14.5 / 3.
//! assert!(run.best_density >= 14.5 / 3.0);
//! ```

#![forbid(unsafe_code)]

pub use dsg_core as core;
pub use dsg_datasets as datasets;
pub use dsg_engine as engine;
pub use dsg_flow as flow;
pub use dsg_graph as graph;
pub use dsg_mapreduce as mapreduce;
pub use dsg_sketch as sketch;
