//! # dsg-sketch — frequency sketches as degree oracles (§5.1 of the paper)
//!
//! Lemma 7 shows any constant-factor streaming approximation needs
//! `Ω(n/p)` bits, but §5.1 observes that the algorithm only consults
//! degrees of *surviving* nodes, and surviving nodes have *high* degrees —
//! exactly the elements a Count-Sketch (Charikar, Chen, Farach-Colton;
//! TCS 2004) estimates well. Replacing the `n`-word exact degree vector
//! with a `t×b` sketch (`t·b ≪ n`) keeps high-degree estimates accurate
//! while mis-estimating only low-degree nodes, whose premature survival
//! barely perturbs the density (Table 4 of the paper).
//!
//! * [`CountSketch`] — the signed median-estimate sketch used by the paper.
//! * [`CountMin`] — the one-sided (over-estimating) alternative, included
//!   as an ablation.
//! * [`SketchDegreeOracle`] — adapts either sketch to
//!   [`dsg_core::oracle::DegreeOracle`], so Algorithm 1 runs unchanged.
//! * [`approx_densest_sketched`] — the full §5.1 pipeline: Algorithm 1
//!   with sketched degrees and exact edge counting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod countmin;
pub mod countsketch;
pub mod hashing;
pub mod oracle;

pub use countmin::CountMin;
pub use countsketch::CountSketch;
pub use oracle::{
    approx_densest_sketched, try_approx_densest_sketched, SketchDegreeOracle, SketchKind,
    SketchParams,
};
