//! The Count-Sketch of Charikar, Chen, and Farach-Colton (TCS 2004).
//!
//! `t` rows of `b` counters. Item `x` with update `Δ` adds `g_i(x)·Δ` to
//! counter `c_{i, h_i(x)}` in every row; the estimate for `x` is the
//! median over rows of `c_{i, h_i(x)}·g_i(x)`. The estimate is unbiased
//! per row, and the median over `t = O(log 1/δ)` rows is within
//! `±O(‖f‖₂ / sqrt(b))` with probability `1-δ` — high-frequency items
//! (high-degree nodes, here) are therefore estimated with small *relative*
//! error, which is exactly what §5.1 needs.

use crate::hashing::{draw_rows, median, HashRow};

/// A Count-Sketch over `u32` keys with `f64` updates.
///
/// ```
/// use dsg_sketch::CountSketch;
///
/// let mut cs = CountSketch::new(5, 1024, 42);
/// for _ in 0..100 { cs.update(7, 1.0); }
/// let est = cs.estimate(7);
/// assert!((est - 100.0).abs() < 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct CountSketch {
    rows: Vec<HashRow>,
    counters: Vec<f64>,
    buckets: u32,
}

impl CountSketch {
    /// Creates a sketch with `t` rows of `b` buckets, seeded
    /// deterministically.
    pub fn new(t: usize, b: u32, seed: u64) -> Self {
        assert!(t >= 1, "need at least one row");
        CountSketch {
            rows: draw_rows(t, b, seed),
            counters: vec![0.0; t * b as usize],
            buckets: b,
        }
    }

    /// Number of rows `t`.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Buckets per row `b`.
    pub fn buckets(&self) -> u32 {
        self.buckets
    }

    /// Total counter words (`t·b`) — the memory footprint of Table 4.
    pub fn memory_words(&self) -> usize {
        self.counters.len()
    }

    /// Adds `delta` to the frequency of `x`.
    #[inline]
    pub fn update(&mut self, x: u32, delta: f64) {
        for (i, row) in self.rows.iter().enumerate() {
            let idx = i * self.buckets as usize + row.bucket(x) as usize;
            self.counters[idx] += row.sign(x) * delta;
        }
    }

    /// Median estimate of the frequency of `x`.
    pub fn estimate(&self, x: u32) -> f64 {
        let mut est: Vec<f64> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let idx = i * self.buckets as usize + row.bucket(x) as usize;
                self.counters[idx] * row.sign(x)
            })
            .collect();
        median(&mut est)
    }

    /// Zeroes all counters, keeping the hash functions.
    pub fn clear(&mut self) {
        self.counters.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::SplitMix64;

    #[test]
    fn exact_when_no_collisions() {
        // Few items, many buckets: estimates are exact.
        let mut cs = CountSketch::new(5, 4096, 1);
        cs.update(10, 3.0);
        cs.update(20, 5.0);
        cs.update(10, 2.0);
        assert_eq!(cs.estimate(10), 5.0);
        assert_eq!(cs.estimate(20), 5.0);
        assert_eq!(cs.estimate(999), 0.0);
    }

    #[test]
    fn clear_resets_counters_not_hashes() {
        let mut cs = CountSketch::new(3, 64, 2);
        cs.update(7, 4.0);
        cs.clear();
        assert_eq!(cs.estimate(7), 0.0);
        cs.update(7, 4.0);
        assert_eq!(cs.estimate(7), 4.0);
    }

    #[test]
    fn heavy_hitters_have_small_relative_error() {
        // 10k light items (freq 1) + 20 heavy items (freq 1000);
        // b = 2048 buckets: ‖light‖₂ = 100, error ≈ 100/sqrt(2048) ≈ 2.2.
        let mut cs = CountSketch::new(5, 2048, 3);
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            cs.update(rng.next_u32() % 1_000_000 + 1_000, 1.0);
        }
        for h in 0..20u32 {
            cs.update(h, 1000.0);
        }
        for h in 0..20u32 {
            let est = cs.estimate(h);
            assert!(
                (est - 1000.0).abs() < 100.0,
                "heavy item {h} estimated {est}"
            );
        }
    }

    #[test]
    fn negative_updates_supported() {
        let mut cs = CountSketch::new(5, 1024, 4);
        cs.update(42, 10.0);
        cs.update(42, -4.0);
        assert!((cs.estimate(42) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn memory_accounting() {
        let cs = CountSketch::new(5, 30_000, 0);
        assert_eq!(cs.memory_words(), 150_000);
        assert_eq!(cs.rows(), 5);
        assert_eq!(cs.buckets(), 30_000);
    }

    #[test]
    fn average_error_shrinks_with_buckets() {
        // Mean absolute error over light items should drop roughly like
        // 1/sqrt(b).
        let mut rng = SplitMix64::new(5);
        let items: Vec<u32> = (0..4000).map(|_| rng.next_u32() % 100_000).collect();
        let mut err = Vec::new();
        for &b in &[256u32, 4096] {
            let mut cs = CountSketch::new(5, b, 9);
            for &x in &items {
                cs.update(x, 1.0);
            }
            let mean_abs: f64 = items
                .iter()
                .take(500)
                .map(|&x| {
                    let truth = items.iter().filter(|&&y| y == x).count() as f64;
                    (cs.estimate(x) - truth).abs()
                })
                .sum::<f64>()
                / 500.0;
            err.push(mean_abs);
        }
        assert!(
            err[1] < err[0] * 0.5,
            "error did not shrink with buckets: {err:?}"
        );
    }
}
