//! The Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005) —
//! the one-sided cousin of Count-Sketch, included as an ablation for the
//! §5.1 heuristic.
//!
//! Same `t×b` counter layout, but updates are unsigned and the estimate is
//! the row **minimum**, so estimates never under-shoot the truth
//! (`f̂ ≥ f`, with `f̂ ≤ f + ε‖f‖₁` w.h.p.). For the densest-subgraph
//! heuristic, over-estimation keeps nodes alive too long — the opposite
//! failure mode of Count-Sketch's symmetric noise — which is precisely the
//! comparison the `ablation` bench measures.

use crate::hashing::{draw_rows, HashRow};

/// A Count-Min sketch over `u32` keys with non-negative `f64` updates.
///
/// Optionally uses **conservative update** (Estan & Varghese 2002): only
/// the counters that currently equal the minimum estimate are increased,
/// which provably never increases the estimate of any other item and
/// substantially reduces over-estimation at the same memory — the second
/// sketch ablation of the benchmark suite.
#[derive(Clone, Debug)]
pub struct CountMin {
    rows: Vec<HashRow>,
    counters: Vec<f64>,
    buckets: u32,
    conservative: bool,
}

impl CountMin {
    /// Creates a sketch with `t` rows of `b` buckets (plain updates).
    pub fn new(t: usize, b: u32, seed: u64) -> Self {
        assert!(t >= 1, "need at least one row");
        CountMin {
            rows: draw_rows(t, b, seed),
            counters: vec![0.0; t * b as usize],
            buckets: b,
            conservative: false,
        }
    }

    /// Creates a sketch with conservative updates.
    pub fn new_conservative(t: usize, b: u32, seed: u64) -> Self {
        let mut cm = CountMin::new(t, b, seed);
        cm.conservative = true;
        cm
    }

    /// Total counter words (`t·b`).
    pub fn memory_words(&self) -> usize {
        self.counters.len()
    }

    /// Adds `delta ≥ 0` to the frequency of `x`.
    #[inline]
    pub fn update(&mut self, x: u32, delta: f64) {
        debug_assert!(delta >= 0.0, "Count-Min requires non-negative updates");
        if self.conservative {
            // Conservative update: raise every counter only up to
            // (current estimate + delta).
            let target = self.estimate(x) + delta;
            for (i, row) in self.rows.iter().enumerate() {
                let idx = i * self.buckets as usize + row.bucket(x) as usize;
                if self.counters[idx] < target {
                    self.counters[idx] = target;
                }
            }
        } else {
            for (i, row) in self.rows.iter().enumerate() {
                let idx = i * self.buckets as usize + row.bucket(x) as usize;
                self.counters[idx] += delta;
            }
        }
    }

    /// Minimum-over-rows estimate of the frequency of `x` (never less than
    /// the true frequency).
    pub fn estimate(&self, x: u32) -> f64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| self.counters[i * self.buckets as usize + row.bucket(x) as usize])
            .fold(f64::INFINITY, f64::min)
    }

    /// Zeroes all counters, keeping the hash functions.
    pub fn clear(&mut self) {
        self.counters.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::SplitMix64;

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CountMin::new(4, 4096, 1);
        cm.update(3, 2.0);
        cm.update(3, 1.0);
        cm.update(8, 5.0);
        assert_eq!(cm.estimate(3), 3.0);
        assert_eq!(cm.estimate(8), 5.0);
        assert_eq!(cm.estimate(77), 0.0);
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(3, 64, 2);
        let mut rng = SplitMix64::new(4);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..5000 {
            let x = rng.next_u32() % 500;
            cm.update(x, 1.0);
            *truth.entry(x).or_insert(0.0f64) += 1.0;
        }
        for (&x, &f) in &truth {
            assert!(
                cm.estimate(x) + 1e-9 >= f,
                "item {x}: estimate {} < truth {f}",
                cm.estimate(x)
            );
        }
    }

    #[test]
    fn clear_works() {
        let mut cm = CountMin::new(2, 32, 3);
        cm.update(1, 9.0);
        cm.clear();
        assert_eq!(cm.estimate(1), 0.0);
    }

    #[test]
    fn conservative_never_underestimates_and_beats_plain() {
        let mut plain = CountMin::new(4, 128, 11);
        let mut cons = CountMin::new_conservative(4, 128, 11);
        let mut rng = SplitMix64::new(12);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..8000 {
            let x = rng.next_u32() % 2000;
            plain.update(x, 1.0);
            cons.update(x, 1.0);
            *truth.entry(x).or_insert(0.0f64) += 1.0;
        }
        let mut plain_err = 0.0;
        let mut cons_err = 0.0;
        for (&x, &f) in &truth {
            assert!(cons.estimate(x) + 1e-9 >= f, "conservative under-estimated");
            plain_err += plain.estimate(x) - f;
            cons_err += cons.estimate(x) - f;
        }
        assert!(
            cons_err < plain_err * 0.8,
            "conservative total overestimate {cons_err} not clearly below plain {plain_err}"
        );
    }

    #[test]
    fn overestimate_bounded_by_l1_over_b() {
        let mut cm = CountMin::new(5, 1024, 7);
        let mut rng = SplitMix64::new(8);
        let n_updates = 20_000;
        for _ in 0..n_updates {
            cm.update(rng.next_u32() % 100_000, 1.0);
        }
        // Expected overcount per row ≈ L1/b ≈ 19.5; min over 5 rows is
        // almost surely below 4x that.
        let fresh = 999_999u32; // never updated
        assert!(cm.estimate(fresh) < 80.0, "estimate {}", cm.estimate(fresh));
    }
}
