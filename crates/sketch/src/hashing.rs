//! Pairwise-independent hash families for the sketches.
//!
//! Multiply-shift hashing (Dietzfelbinger et al.): with a random odd
//! 64-bit multiplier `a` and random `b`, `h(x) = (a·x + b) >> s` is
//! universal on 32-bit keys. Bucket mapping uses Lemire's multiply-shift
//! reduction instead of `%` (no modulo bias, no division).

use dsg_graph::SplitMix64;

/// One hash row: a bucket hash `h : u32 -> [0, buckets)` and a sign hash
/// `g : u32 -> {+1, -1}`.
#[derive(Clone, Debug)]
pub struct HashRow {
    mul_h: u64,
    add_h: u64,
    mul_g: u64,
    add_g: u64,
    buckets: u32,
}

impl HashRow {
    /// Draws a fresh row from the RNG.
    pub fn new(buckets: u32, rng: &mut SplitMix64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        HashRow {
            mul_h: rng.next_u64() | 1,
            add_h: rng.next_u64(),
            mul_g: rng.next_u64() | 1,
            add_g: rng.next_u64(),
            buckets,
        }
    }

    /// Bucket index of `x`, in `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, x: u32) -> u32 {
        let hashed = self.mul_h.wrapping_mul(x as u64).wrapping_add(self.add_h) >> 32;
        // Lemire reduction: maps uniform 32-bit to [0, buckets) unbiasedly
        // enough for sketching.
        ((hashed * self.buckets as u64) >> 32) as u32
    }

    /// Sign of `x`: `+1.0` or `-1.0`.
    #[inline]
    pub fn sign(&self, x: u32) -> f64 {
        let hashed = self.mul_g.wrapping_mul(x as u64).wrapping_add(self.add_g);
        if hashed >> 63 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Draws `t` independent hash rows.
pub fn draw_rows(t: usize, buckets: u32, seed: u64) -> Vec<HashRow> {
    let mut rng = SplitMix64::new(seed);
    (0..t).map(|_| HashRow::new(buckets, &mut rng)).collect()
}

/// Median of a small mutable slice (used over the `t` row estimates).
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_in_range() {
        let rows = draw_rows(5, 97, 42);
        for row in &rows {
            for x in 0..10_000u32 {
                assert!(row.bucket(x) < 97);
            }
        }
    }

    #[test]
    fn buckets_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let row = HashRow::new(16, &mut rng);
        let mut counts = [0usize; 16];
        let n = 64_000u32;
        for x in 0..n {
            counts[row.bucket(x) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 0.15 * expected,
                "bucket skew: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn signs_balanced() {
        let mut rng = SplitMix64::new(9);
        let row = HashRow::new(8, &mut rng);
        let pos = (0..100_000u32).filter(|&x| row.sign(x) > 0.0).count();
        assert!(
            (pos as f64 - 50_000.0).abs() < 2_000.0,
            "sign imbalance: {pos}"
        );
    }

    #[test]
    fn rows_are_independent_looking() {
        let rows = draw_rows(2, 1024, 3);
        // The two rows should disagree on bucket assignments frequently.
        let agree = (0..10_000u32)
            .filter(|&x| rows[0].bucket(x) == rows[1].bucket(x))
            .count();
        assert!(agree < 200, "rows agree {agree} times out of 10000");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = draw_rows(3, 64, 5);
        let b = draw_rows(3, 64, 5);
        for (x, y) in a.iter().zip(&b) {
            for k in 0..1000u32 {
                assert_eq!(x.bucket(k), y.bucket(k));
                assert_eq!(x.sign(k), y.sign(k));
            }
        }
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }
}
