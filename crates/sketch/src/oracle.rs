//! The sketched degree oracle and the full §5.1 pipeline.
//!
//! [`SketchDegreeOracle`] implements [`dsg_core::oracle::DegreeOracle`]
//! over either sketch, so Algorithm 1's control flow is byte-identical to
//! the exact run — only the degree lookups differ, exactly as in the
//! paper's experiment (Table 4). The live-edge count (hence `ρ(S)`) stays
//! exact: it is a single counter, costing O(1) memory.

use dsg_core::oracle::DegreeOracle;
use dsg_core::result::UndirectedRun;
use dsg_core::undirected::approx_densest_with_oracle;
use dsg_graph::stream::EdgeStream;

use crate::countmin::CountMin;
use crate::countsketch::CountSketch;

/// Which sketch backs the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchKind {
    /// Count-Sketch (the paper's choice): symmetric ± noise.
    CountSketch,
    /// Count-Min: one-sided over-estimates (ablation).
    CountMin,
    /// Count-Min with conservative updates: smaller one-sided error at
    /// the same memory (second ablation).
    CountMinConservative,
}

/// Sketch configuration: `t` rows × `b` buckets (the paper uses `t = 5`,
/// `b ∈ {30000, 40000, 50000}` for flickr's 976K nodes).
#[derive(Clone, Copy, Debug)]
pub struct SketchParams {
    /// Number of hash rows `t`.
    pub t: usize,
    /// Buckets per row `b`.
    pub b: u32,
    /// Seed for the hash functions.
    pub seed: u64,
    /// Sketch flavor.
    pub kind: SketchKind,
}

impl SketchParams {
    /// The paper's configuration: Count-Sketch with `t = 5`.
    pub fn paper(b: u32, seed: u64) -> Self {
        SketchParams {
            t: 5,
            b,
            seed,
            kind: SketchKind::CountSketch,
        }
    }
}

/// A [`DegreeOracle`] backed by a frequency sketch.
///
/// The hash functions are **redrawn on every pass** (deterministically
/// from the base seed). This matters: with frozen hash functions the
/// noise on each node's estimate is the same every pass, so the nodes
/// whose noise pushed them above the removal threshold survive *forever*
/// and the algorithm degenerates to one-removal-per-pass. Fresh
/// randomness per pass makes the per-pass errors independent, restoring
/// geometric shrinkage (each pass removes roughly the same fraction an
/// exact oracle would, in expectation).
pub struct SketchDegreeOracle {
    params: SketchParams,
    pass: u64,
    inner: SketchImpl,
}

enum SketchImpl {
    Cs(CountSketch),
    Cm(CountMin),
}

fn build_inner(params: &SketchParams, pass: u64) -> SketchImpl {
    // Mix the pass index into the seed (SplitMix64 increment constant).
    let seed = params
        .seed
        .wrapping_add(pass.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match params.kind {
        SketchKind::CountSketch => SketchImpl::Cs(CountSketch::new(params.t, params.b, seed)),
        SketchKind::CountMin => SketchImpl::Cm(CountMin::new(params.t, params.b, seed)),
        SketchKind::CountMinConservative => {
            SketchImpl::Cm(CountMin::new_conservative(params.t, params.b, seed))
        }
    }
}

impl SketchDegreeOracle {
    /// Builds the oracle from parameters.
    pub fn new(params: SketchParams) -> Self {
        SketchDegreeOracle {
            inner: build_inner(&params, 0),
            params,
            pass: 0,
        }
    }
}

impl DegreeOracle for SketchDegreeOracle {
    fn reset(&mut self) {
        self.pass += 1;
        self.inner = build_inner(&self.params, self.pass);
    }

    #[inline]
    fn record(&mut self, u: u32, v: u32, w: f64) {
        match &mut self.inner {
            SketchImpl::Cs(s) => {
                s.update(u, w);
                s.update(v, w);
            }
            SketchImpl::Cm(s) => {
                s.update(u, w);
                s.update(v, w);
            }
        }
    }

    #[inline]
    fn degree(&self, u: u32) -> f64 {
        match &self.inner {
            SketchImpl::Cs(s) => s.estimate(u),
            SketchImpl::Cm(s) => s.estimate(u),
        }
    }

    fn memory_words(&self) -> usize {
        match &self.inner {
            SketchImpl::Cs(s) => s.memory_words(),
            SketchImpl::Cm(s) => s.memory_words(),
        }
    }
}

/// The result of a sketched run plus its memory accounting.
#[derive(Clone, Debug)]
pub struct SketchedRun {
    /// The Algorithm 1 result under sketched degrees.
    pub run: UndirectedRun,
    /// Counter words used by the sketch (`t·b`).
    pub sketch_words: usize,
    /// Counter words an exact run would use (`n`).
    pub exact_words: usize,
}

impl SketchedRun {
    /// The memory row of Table 4: sketch words / exact words.
    pub fn memory_ratio(&self) -> f64 {
        self.sketch_words as f64 / self.exact_words as f64
    }
}

/// Runs Algorithm 1 with sketched degree estimates (§5.1).
pub fn approx_densest_sketched<S: EdgeStream + ?Sized>(
    stream: &mut S,
    epsilon: f64,
    params: SketchParams,
) -> SketchedRun {
    let n = stream.num_nodes();
    let mut oracle = SketchDegreeOracle::new(params);
    let run = approx_densest_with_oracle(stream, epsilon, &mut oracle);
    SketchedRun {
        run,
        sketch_words: oracle.memory_words(),
        exact_words: n as usize,
    }
}

/// Fallible form of [`approx_densest_sketched`] for file-backed streams:
/// if a pass failed (I/O error, file modified between passes — see
/// `EdgeStream::take_error`) the computed run is invalid and the stream's
/// error is returned instead. Never fails on `MemoryStream`.
pub fn try_approx_densest_sketched<S: EdgeStream + ?Sized>(
    stream: &mut S,
    epsilon: f64,
    params: SketchParams,
) -> dsg_graph::Result<SketchedRun> {
    let run = approx_densest_sketched(stream, epsilon, params);
    match stream.take_error() {
        Some(e) => Err(e),
        None => Ok(run),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_core::undirected::approx_densest;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;

    #[test]
    fn generous_sketch_matches_exact_run() {
        // With b ≫ n the sketch is collision-free, so the sketched run is
        // identical to the exact run.
        let pg = gen::planted_clique(300, 700, 15, 3);
        let mut s1 = MemoryStream::new(pg.graph.clone());
        let exact = approx_densest(&mut s1, 0.5);
        let mut s2 = MemoryStream::new(pg.graph.clone());
        let sk = approx_densest_sketched(&mut s2, 0.5, SketchParams::paper(8192, 1));
        assert_eq!(exact.passes, sk.run.passes);
        assert!((exact.best_density - sk.run.best_density).abs() < 1e-9);
        assert_eq!(exact.best_set.to_vec(), sk.run.best_set.to_vec());
    }

    #[test]
    fn tight_sketch_stays_near_exact_density() {
        // b ≈ n/6, like the paper's 30000/976K ≈ 3% ... 16% regime.
        let pg = gen::planted_dense_subgraph(3000, 12_000, 60, 0.5, 7);
        let mut s1 = MemoryStream::new(pg.graph.clone());
        let exact = approx_densest(&mut s1, 0.5);
        let mut s2 = MemoryStream::new(pg.graph.clone());
        let sk = approx_densest_sketched(&mut s2, 0.5, SketchParams::paper(512, 5));
        let ratio = sk.run.best_density / exact.best_density;
        // Table 4 observes ratios in [0.7, 1.05]; allow a wide but
        // meaningful band.
        assert!(
            (0.5..=1.5).contains(&ratio),
            "sketched/exact density ratio {ratio}"
        );
        assert!(sk.memory_ratio() < 1.0, "sketch must save memory");
    }

    #[test]
    fn memory_ratio_matches_parameters() {
        let g = gen::gnp(10_000, 0.001, 2);
        let mut s = MemoryStream::new(g);
        let sk = approx_densest_sketched(&mut s, 1.0, SketchParams::paper(500, 3));
        assert_eq!(sk.sketch_words, 2500);
        assert_eq!(sk.exact_words, 10_000);
        assert!((sk.memory_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn countmin_variant_runs_and_terminates() {
        let pg = gen::planted_clique(500, 1500, 20, 9);
        let mut s = MemoryStream::new(pg.graph);
        let params = SketchParams {
            t: 5,
            b: 256,
            seed: 3,
            kind: SketchKind::CountMin,
        };
        let sk = approx_densest_sketched(&mut s, 0.5, params);
        // Over-estimating degrees can stall the threshold rule; the
        // min-estimate fallback must still terminate the run.
        assert!(sk.run.passes > 0);
        assert!(sk.run.best_density > 0.0);
    }

    #[test]
    fn sketched_run_is_deterministic() {
        let pg = gen::planted_clique(400, 900, 15, 4);
        let mut s1 = MemoryStream::new(pg.graph.clone());
        let a = approx_densest_sketched(&mut s1, 1.0, SketchParams::paper(300, 8));
        let mut s2 = MemoryStream::new(pg.graph);
        let b = approx_densest_sketched(&mut s2, 1.0, SketchParams::paper(300, 8));
        assert_eq!(a.run.passes, b.run.passes);
        assert_eq!(a.run.best_set.to_vec(), b.run.best_set.to_vec());
    }
}
