//! Property-based tests for the graph substrate: I/O round-trips, CSR
//! consistency, canonicalization, and stream equivalence.

use proptest::prelude::*;

use dsg_graph::edgelist::{EdgeList, GraphKind};
use dsg_graph::io::{read_binary, read_text, write_binary, write_text};
use dsg_graph::stream::{BinaryFileStream, EdgeStream, MemoryStream, TextFileStream};
use dsg_graph::{CsrDirected, CsrUndirected, NodeSet};

fn arb_edge_list(directed: bool) -> impl Strategy<Value = EdgeList> {
    (2u32..40).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..150).prop_map(move |pairs| {
            let mut g = if directed {
                EdgeList::new_directed(n)
            } else {
                EdgeList::new_undirected(n)
            };
            for (u, v) in pairs {
                g.push(u, v);
            }
            g
        })
    })
}

fn arb_weighted_list() -> impl Strategy<Value = EdgeList> {
    (2u32..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.01f64..100.0), 0..100).prop_map(move |triples| {
            let mut g = EdgeList::new_undirected(n);
            for (u, v, w) in triples {
                g.push_weighted(u, v, w);
            }
            g
        })
    })
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dsg_graph_proptests");
    std::fs::create_dir_all(&dir).unwrap();
    // Thread id keeps parallel proptest cases from clobbering each other.
    dir.join(format!("{tag}_{:?}.tmp", std::thread::current().id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Text I/O round-trips edges (and weights) exactly.
    #[test]
    fn text_io_round_trip(list in arb_edge_list(false)) {
        let path = tmp_path("text");
        write_text(&path, &list).unwrap();
        let back = read_text(&path, GraphKind::Undirected).unwrap();
        prop_assert_eq!(&back.edges, &list.edges);
        prop_assert_eq!(back.weights, list.weights);
    }

    /// Binary I/O round-trips exactly, including directedness and weights.
    #[test]
    fn binary_io_round_trip(list in arb_weighted_list()) {
        let path = tmp_path("bin");
        write_binary(&path, &list).unwrap();
        let back = read_binary(&path).unwrap();
        prop_assert_eq!(back.num_nodes, list.num_nodes);
        prop_assert_eq!(&back.edges, &list.edges);
        prop_assert_eq!(back.weights, list.weights);
        prop_assert_eq!(back.kind, list.kind);
    }

    /// Canonicalization is idempotent and never grows the edge set.
    #[test]
    fn canonicalize_idempotent(list in arb_edge_list(false)) {
        let mut once = list.clone();
        once.canonicalize();
        prop_assert!(once.num_edges() <= list.num_edges());
        // Sorted, deduped, self-loop free, (min, max)-oriented.
        for w in once.edges.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &(u, v) in &once.edges {
            prop_assert!(u < v);
        }
        let mut twice = once.clone();
        twice.canonicalize();
        prop_assert_eq!(once.edges, twice.edges);
    }

    /// CSR degrees sum to twice the edge count, and per-node degrees
    /// match the edge list.
    #[test]
    fn csr_degree_consistency(list in arb_edge_list(false)) {
        let mut canon = list.clone();
        canon.canonicalize();
        let csr = CsrUndirected::from_edge_list(&canon);
        let total: usize = (0..csr.num_nodes() as u32).map(|u| csr.degree(u)).sum();
        prop_assert_eq!(total, 2 * canon.num_edges());
        let expected = canon.degrees_out();
        for u in 0..csr.num_nodes() as u32 {
            prop_assert_eq!(csr.degree(u) as f64, expected[u as usize]);
        }
        // Induced edge count over the full set equals total edges.
        let full = NodeSet::full(csr.num_nodes());
        prop_assert_eq!(csr.induced_edge_count(&full), canon.num_edges());
    }

    /// Directed CSR: out/in adjacency agree with each other and the list.
    #[test]
    fn csr_directed_consistency(list in arb_edge_list(true)) {
        let csr = CsrDirected::from_edge_list(&list);
        let out_total: usize = (0..csr.num_nodes() as u32).map(|u| csr.out_degree(u)).sum();
        let in_total: usize = (0..csr.num_nodes() as u32).map(|v| csr.in_degree(v)).sum();
        prop_assert_eq!(out_total, list.num_edges());
        prop_assert_eq!(in_total, list.num_edges());
        // Every arc is visible from both sides.
        for &(u, v) in &list.edges {
            prop_assert!(csr.out_neighbors(u).contains(&v));
            prop_assert!(csr.in_neighbors(v).contains(&u));
        }
    }

    /// A memory stream delivers exactly the edge list, every pass.
    #[test]
    fn stream_is_faithful(list in arb_weighted_list()) {
        let expected: Vec<(u32, u32, f64)> = list.iter_weighted().collect();
        let mut stream = MemoryStream::new(list);
        for pass in 1..=3u64 {
            let mut got = Vec::new();
            stream.for_each_edge(&mut |u, v, w| got.push((u, v, w)));
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(stream.passes(), pass);
        }
    }

    /// The full out-of-core format chain round-trips:
    /// `EdgeList -> text -> EdgeList -> binary -> EdgeList` preserves
    /// edges, weights, and directedness exactly.
    #[test]
    fn text_binary_chain_round_trip(list in arb_weighted_list()) {
        let text = tmp_path("chain_text");
        write_text(&text, &list).unwrap();
        let from_text = read_text(&text, list.kind).unwrap();
        prop_assert_eq!(&from_text.edges, &list.edges);
        prop_assert_eq!(&from_text.weights, &list.weights);

        let bin = tmp_path("chain_bin");
        write_binary(&bin, &from_text).unwrap();
        let from_bin = read_binary(&bin).unwrap();
        prop_assert_eq!(&from_bin.edges, &list.edges);
        prop_assert_eq!(&from_bin.weights, &list.weights);
        prop_assert_eq!(from_bin.kind, list.kind);
        prop_assert_eq!(from_bin.num_nodes, from_text.num_nodes);
    }

    /// The file streams deliver exactly the same edge sequence as the
    /// memory stream over the same list, for both on-disk formats, on
    /// every pass.
    #[test]
    fn file_streams_match_memory_stream(list in arb_weighted_list()) {
        let expected: Vec<(u32, u32, f64)> = list.iter_weighted().collect();
        let n = list.num_nodes;

        let text = tmp_path("stream_text");
        write_text(&text, &list).unwrap();
        let mut ts = TextFileStream::open(&text, n).unwrap();
        prop_assert_eq!(ts.num_edges(), expected.len() as u64);
        for pass in 1..=2u64 {
            let mut got = Vec::new();
            ts.for_each_edge(&mut |u, v, w| got.push((u, v, w)));
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(ts.passes(), pass);
        }
        prop_assert!(ts.take_error().is_none());

        let bin = tmp_path("stream_bin");
        write_binary(&bin, &list).unwrap();
        let mut bs = BinaryFileStream::open(&bin).unwrap();
        prop_assert_eq!(bs.num_nodes(), n);
        for pass in 1..=2u64 {
            let mut got = Vec::new();
            bs.for_each_edge(&mut |u, v, w| got.push((u, v, w)));
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(bs.passes(), pass);
        }
        prop_assert!(bs.take_error().is_none());
    }

    /// `TextFileStream::open_auto` infers the tightest node bound that
    /// still streams the file (max id + 1).
    #[test]
    fn open_auto_infers_tight_bound(list in arb_edge_list(false)) {
        let path = tmp_path("auto");
        write_text(&path, &list).unwrap();
        let s = TextFileStream::open_auto(&path).unwrap();
        let max_id = list.edges.iter().map(|&(u, v)| u.max(v)).max();
        match max_id {
            Some(mx) => prop_assert_eq!(s.num_nodes(), mx + 1),
            None => prop_assert_eq!(s.num_nodes(), 0),
        }
    }

    /// Weighted totals are preserved by canonicalization (weights of
    /// merged duplicates are summed; self-loop weight is dropped).
    #[test]
    fn canonicalize_preserves_weight_mass(list in arb_weighted_list()) {
        let loop_weight: f64 = list
            .iter_weighted()
            .filter(|&(u, v, _)| u == v)
            .map(|(_, _, w)| w)
            .sum();
        let before = list.total_weight();
        let mut canon = list;
        canon.canonicalize();
        let after = canon.total_weight();
        prop_assert!((before - loop_weight - after).abs() < 1e-6 * before.max(1.0));
    }
}
