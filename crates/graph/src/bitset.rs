//! Dense bitset over node ids, used to represent node subsets `S ⊆ V`.
//!
//! The streaming algorithms of the paper keep exactly this structure in
//! memory: one liveness bit per node (`O(n)` bits) plus the degree vector.
//! Cardinality is maintained incrementally so `ρ(S) = |E(S)|/|S|` is O(1)
//! to evaluate once the induced edge count is known.

/// A fixed-capacity set of node ids backed by a `u64` bit vector.
///
/// The set tracks its own cardinality, so [`NodeSet::len`] is O(1).
#[derive(Clone, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set with room for ids `0..capacity`.
    pub fn empty(capacity: usize) -> Self {
        NodeSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Creates a full set `{0, 1, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut words = vec![!0u64; capacity.div_ceil(64)];
        // Mask off the bits beyond `capacity` in the last word.
        let spare = words.len() * 64 - capacity;
        if spare > 0 {
            if let Some(last) = words.last_mut() {
                *last >>= spare;
            }
        }
        NodeSet {
            words,
            capacity,
            len: capacity,
        }
    }

    /// Builds a set from an iterator of ids; all ids must be `< capacity`.
    pub fn from_iter<I: IntoIterator<Item = u32>>(capacity: usize, iter: I) -> Self {
        let mut s = NodeSet::empty(capacity);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Maximum id capacity (the `n` this set was created with).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ids currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no ids are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(
            i < self.capacity,
            "id {i} out of capacity {}",
            self.capacity
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        let idx = i as usize;
        assert!(
            idx < self.capacity,
            "id {idx} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        let idx = i as usize;
        assert!(
            idx < self.capacity,
            "id {idx} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every id.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the ids into a `Vec` in ascending order.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// In-place intersection with `other` (same capacity required).
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place union with `other` (same capacity required).
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place difference: removes every id present in `other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Number of ids present in both sets.
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` if every id of `self` is contained in `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Recomputes the cached cardinality from the bit words.
    ///
    /// Required after bulk mutation through an
    /// [`crate::atomic::AtomicSetView`], which flips bits without updating
    /// the cached length.
    pub fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the ids of a [`NodeSet`].
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as u32 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = NodeSet::empty(130);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = NodeSet::full(130);
        assert_eq!(f.len(), 130);
        assert!(f.contains(0));
        assert!(f.contains(129));
        assert_eq!(f.iter().count(), 130);
    }

    #[test]
    fn full_masks_spare_bits() {
        for n in [1usize, 63, 64, 65, 127, 128, 129] {
            let f = NodeSet::full(n);
            assert_eq!(f.len(), n);
            assert_eq!(f.iter().count(), n);
            assert_eq!(f.iter().last(), Some((n - 1) as u32));
        }
    }

    #[test]
    fn insert_remove_tracks_len() {
        let mut s = NodeSet::empty(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains(64));
        assert!(!s.contains(5));
    }

    #[test]
    fn iter_ascending() {
        let s = NodeSet::from_iter(200, [199u32, 0, 63, 64, 65, 128]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(70, [1u32, 2, 3, 64]);
        let b = NodeSet::from_iter(70, [2u32, 3, 4, 69]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2, 3]);
        assert_eq!(i.len(), 2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 64, 69]);
        assert_eq!(u.len(), 6);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 64]);

        assert_eq!(a.intersection_len(&b), 2);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::full(50);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = NodeSet::empty(10);
        s.insert(10);
    }
}
