//! Descriptive graph statistics used by the experiment harness and tests:
//! degree distributions, connected components, and summary rows in the
//! style of the paper's Table 1.

use crate::csr::CsrUndirected;
use crate::edgelist::{EdgeList, GraphKind};

/// Summary of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: f64,
    /// Largest degree.
    pub max: f64,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
}

/// Computes [`DegreeStats`] from a degree vector. Returns `None` when the
/// vector is empty.
pub fn degree_stats(degrees: &[f64]) -> Option<DegreeStats> {
    if degrees.is_empty() {
        return None;
    }
    let mut sorted = degrees.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("degrees must not be NaN"));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    Some(DegreeStats {
        min: sorted[0],
        max: sorted[n - 1],
        mean: sorted.iter().sum::<f64>() / n as f64,
        median,
    })
}

/// Degree histogram: `hist[d]` = number of nodes with (integer) degree `d`.
/// Weighted degrees are rounded down.
pub fn degree_histogram(degrees: &[f64]) -> Vec<usize> {
    let max = degrees.iter().fold(0.0f64, |a, &b| a.max(b)) as usize;
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Connected components of an undirected graph. Returns `(components,
/// component_id_per_node)` where components are sorted by decreasing size.
pub fn connected_components(g: &CsrUndirected) -> (Vec<Vec<u32>>, Vec<u32>) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut components: Vec<Vec<u32>> = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let id = components.len() as u32;
        let mut members = vec![start];
        comp[start as usize] = id;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        components.push(members);
    }
    // Sort components by decreasing size and remap ids accordingly.
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(components[i].len()));
    let mut remap = vec![0u32; components.len()];
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id] = new_id as u32;
    }
    for c in comp.iter_mut() {
        *c = remap[*c as usize];
    }
    let mut sorted_components: Vec<Vec<u32>> = order
        .into_iter()
        .map(|i| std::mem::take(&mut components[i]))
        .collect();
    for c in &mut sorted_components {
        c.sort_unstable();
    }
    (sorted_components, comp)
}

/// One row of a Table 1-style dataset summary.
#[derive(Clone, Debug)]
pub struct GraphSummary {
    /// Dataset name.
    pub name: String,
    /// `"undirected"` or `"directed"`.
    pub kind: &'static str,
    /// Node count.
    pub num_nodes: u32,
    /// Edge count.
    pub num_edges: usize,
    /// Mean degree (out-degree for directed graphs).
    pub mean_degree: f64,
    /// Maximum degree (out-degree for directed graphs).
    pub max_degree: f64,
}

/// Builds a [`GraphSummary`] for an edge list.
pub fn summarize(name: &str, list: &EdgeList) -> GraphSummary {
    let degrees = list.degrees_out();
    let stats = degree_stats(&degrees).unwrap_or(DegreeStats {
        min: 0.0,
        max: 0.0,
        mean: 0.0,
        median: 0.0,
    });
    GraphSummary {
        name: name.to_string(),
        kind: match list.kind {
            GraphKind::Undirected => "undirected",
            GraphKind::Directed => "directed",
        },
        num_nodes: list.num_nodes,
        num_edges: list.num_edges(),
        mean_degree: stats.mean,
        max_degree: stats.max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn degree_stats_basic() {
        let s = degree_stats(&[1.0, 5.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 2.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!(degree_stats(&[]).is_none());
    }

    #[test]
    fn histogram() {
        let h = degree_histogram(&[0.0, 1.0, 1.0, 3.0]);
        assert_eq!(h, vec![1, 2, 0, 1]);
    }

    #[test]
    fn components_two_triangles() {
        let mut g = EdgeList::new_undirected(7);
        g.push(0, 1);
        g.push(1, 2);
        g.push(0, 2);
        g.push(3, 4);
        g.push(4, 5);
        g.push(3, 5);
        // node 6 isolated
        let csr = CsrUndirected::from_edge_list(&g);
        let (comps, ids) = connected_components(&csr);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
        assert_eq!(comps[2], vec![6]);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[3]);
        assert_ne!(ids[3], ids[6]);
    }

    #[test]
    fn components_sorted_by_size() {
        let mut g = EdgeList::new_undirected(6);
        g.push(0, 1); // pair
        g.push(2, 3);
        g.push(3, 4);
        g.push(2, 4);
        g.push(4, 5); // quad is biggest
        let csr = CsrUndirected::from_edge_list(&g);
        let (comps, _) = connected_components(&csr);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn summary_row() {
        let mut g = EdgeList::new_undirected(3);
        g.push(0, 1);
        g.push(0, 2);
        let s = summarize("demo", &g);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.max_degree, 2.0);
        assert_eq!(s.kind, "undirected");
    }
}
