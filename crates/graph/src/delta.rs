//! [`DeltaGraph`] — a mutable overlay over an immutable canonical base.
//!
//! The paper's algorithms are built for graphs that evolve (streaming
//! passes, MapReduce rounds), but every in-memory snapshot in this
//! repository — [`EdgeList`] after canonicalization, the CSR views built
//! from it — is immutable by design: queries compute over frozen,
//! shareable state. `DeltaGraph` bridges the two worlds the way
//! disk-aware incremental structures do (EMBANKS-style, see PAPERS.md):
//! a canonical **base** edge list plus an **append log** and a
//! **tombstone set**, folded into a fresh base (*compaction*) once the
//! logs outgrow a configurable fraction of the base.
//!
//! * Mutations are cheap: an add/remove touches hash sets and never
//!   re-sorts the base.
//! * [`DeltaGraph::materialize`] produces the canonical [`EdgeList`] of
//!   the current state via a sorted merge (the base is already sorted;
//!   only the log — typically tiny — is sorted per call), so a
//!   materialized snapshot is **bit-identical** to canonicalizing the
//!   edge multiset from scratch: downstream algorithms cannot tell a
//!   mutated graph from a freshly loaded one.
//! * Set semantics: the graph is simple. Adding a present edge, adding a
//!   self-loop, or removing an absent edge is a no-op (reported via the
//!   applied-count return), and an add after a remove (or vice versa)
//!   cancels instead of stacking.
//!
//! Weighted **undirected** bases are supported with summing semantics —
//! the same rule [`EdgeList::canonicalize`] applies to duplicate
//! weighted edges: [`DeltaGraph::add_weighted_edges`] adds its weight to
//! the edge's running total (creating the edge when absent), an
//! unweighted add contributes `1.0`, and a remove drops the edge whole.
//! Cancellation is weight-aware: an overlay entry is kept only while the
//! edge's state differs bit-for-bit from the base, so remove-then-re-add
//! at the original weight leaves no delta behind. Weighted *directed*
//! bases stay rejected (the directed CSR is unweighted by contract).

use std::collections::{HashMap, HashSet};

use crate::{EdgeList, GraphError, GraphKind, NodeId, Result};

/// Default log-to-base ratio past which [`DeltaGraph::maybe_compact`]
/// folds the logs into a fresh base.
pub const DEFAULT_COMPACT_RATIO: f64 = 1.0;

/// A mutable graph: canonical base + add/remove logs with tombstones.
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    /// Canonical (sorted, deduped, loop-free) base edges.
    base: EdgeList,
    /// Edges added since the base was last compacted (canonical form,
    /// none of them present in `base`).
    added: HashSet<(NodeId, NodeId)>,
    /// Tombstones: base edges removed since the last compaction.
    removed: HashSet<(NodeId, NodeId)>,
    /// Weighted-base overlay (unused when the base is unweighted):
    /// `Some(w)` pins an edge present at total weight `w`, `None`
    /// tombstones a base edge. An entry exists only while the edge's
    /// state differs bit-for-bit from the base.
    overlay: HashMap<(NodeId, NodeId), Option<f64>>,
    /// Current node count (grows when an added edge names a new id;
    /// never shrinks — ids are stable for the life of the graph).
    num_nodes: u32,
    /// How many times the logs were folded into a fresh base.
    compactions: u64,
}

impl DeltaGraph {
    /// Wraps `base` (canonicalized here) as the initial state.
    /// Weighted *directed* lists are rejected — see the module docs.
    pub fn new(mut base: EdgeList) -> Result<Self> {
        if base.is_weighted() && base.kind == GraphKind::Directed {
            return Err(GraphError::Format(
                "mutable directed graphs support unweighted edges only".into(),
            ));
        }
        base.validate()?;
        base.canonicalize();
        let num_nodes = base.num_nodes;
        Ok(DeltaGraph {
            base,
            added: HashSet::new(),
            removed: HashSet::new(),
            overlay: HashMap::new(),
            num_nodes,
            compactions: 0,
        })
    }

    /// An empty weighted mutable graph (undirected — the only weighted
    /// orientation the overlay supports).
    pub fn new_empty_weighted() -> Self {
        let mut base = EdgeList::new_undirected(0);
        base.weights = Some(Vec::new());
        DeltaGraph::new(base).expect("empty weighted undirected base is always valid")
    }

    /// `true` if the graph carries per-edge weights.
    pub fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    /// An empty mutable graph of the given orientation.
    pub fn new_empty(kind: GraphKind) -> Self {
        let base = match kind {
            GraphKind::Undirected => EdgeList::new_undirected(0),
            GraphKind::Directed => EdgeList::new_directed(0),
        };
        DeltaGraph::new(base).expect("empty unweighted base is always valid")
    }

    /// Orientation of the graph (fixed at creation).
    pub fn kind(&self) -> GraphKind {
        self.base.kind
    }

    /// Current node count (`max id + 1` over every edge ever added).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Current edge count: base minus tombstones plus the append log.
    pub fn num_edges(&self) -> usize {
        if self.is_weighted() {
            let mut n = self.base.num_edges() as i64;
            for (e, v) in &self.overlay {
                match v {
                    None => n -= 1,
                    Some(_) if !self.base_contains(*e) => n += 1,
                    Some(_) => {}
                }
            }
            n as usize
        } else {
            self.base.num_edges() - self.removed.len() + self.added.len()
        }
    }

    /// Outstanding log size — edges whose state diverges from the base
    /// since the last compaction.
    pub fn delta_edges(&self) -> usize {
        self.added.len() + self.removed.len() + self.overlay.len()
    }

    /// `delta_edges / max(1, base edges)` — the compaction trigger and
    /// the engine's warm-restart fallback signal.
    pub fn delta_ratio(&self) -> f64 {
        self.delta_edges() as f64 / self.base.num_edges().max(1) as f64
    }

    /// How many times the logs were folded into a fresh base.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Canonical form of one edge: `(min, max)` for undirected graphs,
    /// as-is for directed ones. `None` for self-loops (never stored).
    fn canonical(&self, u: NodeId, v: NodeId) -> Option<(NodeId, NodeId)> {
        if u == v {
            return None;
        }
        Some(match self.base.kind {
            GraphKind::Undirected if u > v => (v, u),
            _ => (u, v),
        })
    }

    /// Whether the base holds `edge` (binary search — the base is
    /// canonical, hence sorted).
    fn base_contains(&self, edge: (NodeId, NodeId)) -> bool {
        self.base.edges.binary_search(&edge).is_ok()
    }

    /// Weight the base holds for `edge`, `None` when absent.
    fn base_weight(&self, edge: (NodeId, NodeId)) -> Option<f64> {
        self.base
            .edges
            .binary_search(&edge)
            .ok()
            .map(|idx| self.base.weight(idx))
    }

    /// Current state of `edge` on a weighted graph: `Some(total weight)`
    /// when present.
    fn weighted_state(&self, edge: (NodeId, NodeId)) -> Option<f64> {
        match self.overlay.get(&edge) {
            Some(v) => *v,
            None => self.base_weight(edge),
        }
    }

    /// Pins `edge` to `state`, dropping the overlay entry when the state
    /// returns bit-for-bit to the base (weight-aware cancellation).
    fn set_weighted_state(&mut self, edge: (NodeId, NodeId), state: Option<f64>) {
        let same = match (state, self.base_weight(edge)) {
            (None, None) => true,
            (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        };
        if same {
            self.overlay.remove(&edge);
        } else {
            self.overlay.insert(edge, state);
        }
    }

    /// Whether the current state holds the edge `(u, v)`.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        match self.canonical(u, v) {
            None => false,
            Some(e) if self.is_weighted() => self.weighted_state(e).is_some(),
            Some(e) => {
                self.added.contains(&e) || (self.base_contains(e) && !self.removed.contains(&e))
            }
        }
    }

    /// Adds a batch of edges; returns how many actually changed the
    /// graph (self-loops, duplicates, and already-present edges are
    /// no-ops). Node ids beyond the current count grow the graph.
    pub fn add_edges(&mut self, edges: &[(NodeId, NodeId)]) -> Result<usize> {
        // Growing past u32::MAX nodes would wrap `max id + 1`.
        for &(u, v) in edges {
            if u == u32::MAX || v == u32::MAX {
                return Err(GraphError::TooLarge {
                    what: "node id",
                    value: u32::MAX as u64,
                    max: u32::MAX as u64 - 1,
                });
            }
        }
        if self.is_weighted() {
            let mut applied = 0;
            for &(u, v) in edges {
                if self.apply_weighted(u, v, 1.0) {
                    applied += 1;
                }
            }
            return Ok(applied);
        }
        let mut applied = 0;
        for &(u, v) in edges {
            let Some(e) = self.canonical(u, v) else {
                continue;
            };
            let changed = if self.removed.contains(&e) {
                // Cancel the tombstone: the base copy is live again.
                self.removed.remove(&e)
            } else if self.base_contains(e) || self.added.contains(&e) {
                false
            } else {
                self.added.insert(e)
            };
            if changed {
                applied += 1;
                self.num_nodes = self.num_nodes.max(u + 1).max(v + 1);
            }
        }
        Ok(applied)
    }

    /// Adds a batch of weighted edges to a weighted graph, summing each
    /// weight into the edge's running total (the canonicalization rule
    /// for duplicate weighted edges) and creating absent edges. Returns
    /// how many changed the graph. Rejected on unweighted graphs —
    /// mixing would silently coerce weights away.
    pub fn add_weighted_edges(&mut self, edges: &[(NodeId, NodeId, f64)]) -> Result<usize> {
        if !self.is_weighted() {
            return Err(GraphError::Format(
                "weighted delta on an unweighted mutable graph".into(),
            ));
        }
        for &(u, v, w) in edges {
            if u == u32::MAX || v == u32::MAX {
                return Err(GraphError::TooLarge {
                    what: "node id",
                    value: u32::MAX as u64,
                    max: u32::MAX as u64 - 1,
                });
            }
            if !w.is_finite() {
                return Err(GraphError::Format(format!("non-finite edge weight {w}")));
            }
        }
        let mut applied = 0;
        for &(u, v, w) in edges {
            if self.apply_weighted(u, v, w) {
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// One weighted add; `true` when the graph changed.
    fn apply_weighted(&mut self, u: NodeId, v: NodeId, w: f64) -> bool {
        let Some(e) = self.canonical(u, v) else {
            return false;
        };
        let before = self.weighted_state(e);
        let after = Some(match before {
            Some(x) => x + w,
            None => w,
        });
        self.set_weighted_state(e, after);
        let changed = match (before, after) {
            (None, Some(_)) => true,
            (Some(a), Some(b)) => a.to_bits() != b.to_bits(),
            _ => unreachable!("adds never delete"),
        };
        if changed {
            self.num_nodes = self.num_nodes.max(u + 1).max(v + 1);
        }
        changed
    }

    /// Removes a batch of edges; returns how many were actually present.
    /// Removing an absent edge is a no-op. Node ids never shrink.
    pub fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        if self.is_weighted() {
            let mut applied = 0;
            for &(u, v) in edges {
                let Some(e) = self.canonical(u, v) else {
                    continue;
                };
                if self.weighted_state(e).is_some() {
                    self.set_weighted_state(e, None);
                    applied += 1;
                }
            }
            return applied;
        }
        let mut applied = 0;
        for &(u, v) in edges {
            let Some(e) = self.canonical(u, v) else {
                continue;
            };
            let changed = if self.added.contains(&e) {
                // Cancel the pending add: nothing reaches the base.
                self.added.remove(&e)
            } else if self.base_contains(e) && !self.removed.contains(&e) {
                self.removed.insert(e)
            } else {
                false
            };
            if changed {
                applied += 1;
            }
        }
        applied
    }

    /// The canonical [`EdgeList`] of the current state, bit-identical to
    /// canonicalizing the same edge multiset from scratch. The base is
    /// streamed in order, tombstones filtered, and the (sorted) append
    /// log merged in — `O(m + d log d)` for `d` log entries, no full
    /// re-sort.
    pub fn materialize(&self) -> EdgeList {
        if self.is_weighted() {
            return self.materialize_weighted();
        }
        let mut log: Vec<(NodeId, NodeId)> = self.added.iter().copied().collect();
        log.sort_unstable();
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut log_it = log.into_iter().peekable();
        for &e in &self.base.edges {
            if self.removed.contains(&e) {
                continue;
            }
            while log_it.peek().is_some_and(|&a| a < e) {
                edges.push(log_it.next().expect("peeked"));
            }
            edges.push(e);
        }
        edges.extend(log_it);
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
            weights: None,
            kind: self.base.kind,
        }
    }

    /// Weighted materialization: tombstones filtered, overlay weights
    /// substituted, overlay-born edges merged in sorted order.
    fn materialize_weighted(&self) -> EdgeList {
        let mut log: Vec<((NodeId, NodeId), f64)> = self
            .overlay
            .iter()
            .filter_map(|(&e, &v)| match v {
                Some(w) if !self.base_contains(e) => Some((e, w)),
                _ => None,
            })
            .collect();
        log.sort_unstable_by_key(|&(e, _)| e);
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut weights = Vec::with_capacity(self.num_edges());
        let mut log_it = log.into_iter().peekable();
        for (idx, &e) in self.base.edges.iter().enumerate() {
            let w = match self.overlay.get(&e) {
                Some(None) => continue,
                Some(Some(w)) => *w,
                None => self.base.weight(idx),
            };
            while log_it.peek().is_some_and(|&(a, _)| a < e) {
                let (a, aw) = log_it.next().expect("peeked");
                edges.push(a);
                weights.push(aw);
            }
            edges.push(e);
            weights.push(w);
        }
        for (a, aw) in log_it {
            edges.push(a);
            weights.push(aw);
        }
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
            weights: Some(weights),
            kind: self.base.kind,
        }
    }

    /// Folds the logs into a fresh canonical base, clearing both logs.
    pub fn compact(&mut self) {
        self.base = self.materialize();
        self.added.clear();
        self.removed.clear();
        self.overlay.clear();
        self.compactions += 1;
    }

    /// Compacts when [`DeltaGraph::delta_ratio`] exceeds `ratio`;
    /// returns whether a compaction ran.
    pub fn maybe_compact(&mut self, ratio: f64) -> bool {
        if self.delta_edges() > 0 && self.delta_ratio() > ratio {
            self.compact();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn from_edges(kind: GraphKind, n: u32, edges: &[(u32, u32)]) -> DeltaGraph {
        let mut list = match kind {
            GraphKind::Undirected => EdgeList::new_undirected(n),
            GraphKind::Directed => EdgeList::new_directed(n),
        };
        for &(u, v) in edges {
            list.push(u, v);
        }
        DeltaGraph::new(list).unwrap()
    }

    #[test]
    fn add_remove_roundtrip_with_cancellation() {
        let mut g = from_edges(GraphKind::Undirected, 3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        // Adding a present edge (either orientation) is a no-op.
        assert_eq!(g.add_edges(&[(1, 0)]).unwrap(), 0);
        // A new edge grows the node set.
        assert_eq!(g.add_edges(&[(2, 5)]).unwrap(), 1);
        assert_eq!(g.num_nodes(), 6);
        assert!(g.contains(5, 2));
        // Removing it cancels the pending add (log returns to empty).
        assert_eq!(g.remove_edges(&[(5, 2)]), 1);
        assert_eq!(g.delta_edges(), 0);
        // Tombstone a base edge, then resurrect it.
        assert_eq!(g.remove_edges(&[(0, 1)]), 1);
        assert!(!g.contains(0, 1));
        assert_eq!(g.delta_edges(), 1);
        assert_eq!(g.add_edges(&[(0, 1)]).unwrap(), 1);
        assert!(g.contains(0, 1));
        assert_eq!(g.delta_edges(), 0);
        // Self-loops and absent removals are no-ops.
        assert_eq!(g.add_edges(&[(2, 2)]).unwrap(), 0);
        assert_eq!(g.remove_edges(&[(0, 2)]), 0);
    }

    #[test]
    fn directed_keeps_orientation() {
        let mut g = from_edges(GraphKind::Directed, 2, &[(0, 1)]);
        assert!(g.contains(0, 1));
        assert!(!g.contains(1, 0));
        assert_eq!(g.add_edges(&[(1, 0)]).unwrap(), 1);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.remove_edges(&[(0, 1)]), 1);
        assert!(g.contains(1, 0));
        assert!(!g.contains(0, 1));
    }

    #[test]
    fn weighted_directed_base_is_rejected() {
        let mut list = EdgeList::new_directed(2);
        list.push_weighted(0, 1, 2.0);
        assert!(matches!(DeltaGraph::new(list), Err(GraphError::Format(_))));
    }

    #[test]
    fn weighted_add_remove_cancellation() {
        let mut list = EdgeList::new_undirected(3);
        list.push_weighted(0, 1, 2.0);
        list.push_weighted(1, 2, 1.0);
        let mut g = DeltaGraph::new(list).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.num_edges(), 2);
        // Remove then re-add at the original weight: no delta survives.
        assert_eq!(g.remove_edges(&[(1, 0)]), 1);
        assert!(!g.contains(0, 1));
        assert_eq!(g.delta_edges(), 1);
        assert_eq!(g.add_weighted_edges(&[(0, 1, 2.0)]).unwrap(), 1);
        assert_eq!(g.delta_edges(), 0, "state returned to base");
        // Summing: duplicate weighted adds accumulate like canonicalize.
        assert_eq!(g.add_weighted_edges(&[(0, 1, 0.5)]).unwrap(), 1);
        let mat = g.materialize();
        assert_eq!(mat.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(mat.weights.as_ref().unwrap(), &vec![2.5, 1.0]);
        // An unweighted add on a weighted graph contributes 1.0.
        assert_eq!(g.add_edges(&[(2, 0)]).unwrap(), 1);
        assert_eq!(
            g.materialize().weights.as_ref().unwrap(),
            &vec![2.5, 1.0, 1.0]
        );
        // Removing an overlay-born edge cancels it entirely.
        assert_eq!(g.remove_edges(&[(0, 2)]), 1);
        assert!(!g.contains(0, 2));
        // Weighted deltas on unweighted graphs are a typed error.
        let mut ug = DeltaGraph::new_empty(GraphKind::Undirected);
        assert!(matches!(
            ug.add_weighted_edges(&[(0, 1, 2.0)]),
            Err(GraphError::Format(_))
        ));
        // Non-finite weights are a typed error.
        assert!(matches!(
            g.add_weighted_edges(&[(0, 1, f64::NAN)]),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn weighted_materialize_matches_scratch_canonicalization() {
        // Random weighted op sequence against a HashMap model with the
        // same op order — weights must match bit for bit, and the
        // materialized list must be a canonicalization fixpoint.
        let mut rng = SplitMix64::new(9);
        let mut g = DeltaGraph::new_empty_weighted();
        let mut model: HashMap<(u32, u32), f64> = HashMap::new();
        let canon = |u: u32, v: u32| if u > v { (v, u) } else { (u, v) };
        for step in 0..2000 {
            let u = (rng.next_u64() % 40) as u32;
            let v = (rng.next_u64() % 40) as u32;
            if rng.next_u64().is_multiple_of(3) {
                g.remove_edges(&[(u, v)]);
                if u != v {
                    model.remove(&canon(u, v));
                }
            } else {
                let w = (rng.next_u64() % 8) as f64 * 0.25 + 0.25;
                g.add_weighted_edges(&[(u, v, w)]).unwrap();
                if u != v {
                    *model.entry(canon(u, v)).or_insert(0.0) += w;
                }
            }
            if step % 500 == 250 {
                g.maybe_compact(0.5);
            }
            if step % 700 == 350 {
                let mat = g.materialize();
                let mut scratch = mat.clone();
                scratch.canonicalize();
                assert_eq!(mat.edges, scratch.edges, "materialize must be canonical");
                assert_eq!(
                    mat.weights, scratch.weights,
                    "weights must be canonical at step {step}"
                );
                let got: HashMap<(u32, u32), f64> = mat
                    .edges
                    .iter()
                    .zip(mat.weights.as_ref().unwrap())
                    .map(|(&e, &w)| (e, w))
                    .collect();
                assert_eq!(got.len(), model.len(), "edge count at step {step}");
                for (e, w) in &model {
                    let gw = got.get(e).unwrap_or_else(|| panic!("missing {e:?}"));
                    assert_eq!(gw.to_bits(), w.to_bits(), "weight of {e:?} at step {step}");
                }
                assert_eq!(mat.num_edges(), g.num_edges());
            }
        }
    }

    #[test]
    fn materialize_matches_scratch_canonicalization() {
        // Random op sequence; the materialized list must be bit-identical
        // to canonicalizing the surviving edge set from scratch, and a
        // naive HashSet model must agree edge for edge.
        for kind in [GraphKind::Undirected, GraphKind::Directed] {
            let mut rng = SplitMix64::new(match kind {
                GraphKind::Undirected => 7,
                GraphKind::Directed => 8,
            });
            let mut g = DeltaGraph::new_empty(kind);
            let mut model: HashSet<(u32, u32)> = HashSet::new();
            let canon = |u: u32, v: u32| match kind {
                GraphKind::Undirected if u > v => (v, u),
                _ => (u, v),
            };
            for step in 0..2000 {
                let u = (rng.next_u64() % 40) as u32;
                let v = (rng.next_u64() % 40) as u32;
                if rng.next_u64().is_multiple_of(3) {
                    g.remove_edges(&[(u, v)]);
                    if u != v {
                        model.remove(&canon(u, v));
                    }
                } else {
                    g.add_edges(&[(u, v)]).unwrap();
                    if u != v {
                        model.insert(canon(u, v));
                    }
                }
                if step % 500 == 250 {
                    g.maybe_compact(0.5);
                }
                if step % 700 == 350 {
                    let mat = g.materialize();
                    let mut scratch = mat.clone();
                    scratch.canonicalize();
                    assert_eq!(mat.edges, scratch.edges, "materialize must be canonical");
                    let got: HashSet<(u32, u32)> = mat.edges.iter().copied().collect();
                    assert_eq!(got, model, "model divergence at step {step}");
                    assert_eq!(mat.num_edges(), g.num_edges());
                }
            }
        }
    }

    #[test]
    fn compaction_clears_logs_and_counts() {
        let mut g = from_edges(GraphKind::Undirected, 4, &[(0, 1), (1, 2), (2, 3)]);
        g.add_edges(&[(0, 3), (0, 2)]).unwrap();
        g.remove_edges(&[(1, 2)]);
        assert_eq!(g.delta_edges(), 3);
        assert!(g.delta_ratio() > 0.9);
        assert!(g.maybe_compact(0.5));
        assert_eq!(g.delta_edges(), 0);
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.maybe_compact(0.5), "nothing left to compact");
        // The compacted base is canonical: materialize is now a copy.
        let mat = g.materialize();
        assert_eq!(mat.edges, vec![(0, 1), (0, 2), (0, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph_grows_from_nothing() {
        let mut g = DeltaGraph::new_empty(GraphKind::Undirected);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.add_edges(&[(0, 1), (1, 2), (1, 0)]).unwrap(), 2);
        assert_eq!(g.num_nodes(), 3);
        let mat = g.materialize();
        assert_eq!(mat.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(mat.num_nodes, 3);
    }

    #[test]
    fn node_id_cap_is_a_typed_error() {
        let mut g = DeltaGraph::new_empty(GraphKind::Undirected);
        assert!(matches!(
            g.add_edges(&[(0, u32::MAX)]),
            Err(GraphError::TooLarge { .. })
        ));
    }
}
