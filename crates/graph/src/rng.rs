//! Deterministic pseudo-random number generation.
//!
//! Every synthetic graph in this repository must be byte-for-byte
//! reproducible from a seed, across platforms and library versions, so the
//! experiment harness can quote stable numbers. We therefore ship a tiny
//! self-contained generator (SplitMix64, Steele et al., *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014) instead of depending on a
//! general-purpose RNG crate whose stream may change between versions.
//!
//! SplitMix64 passes BigCrush when used as a 64-bit generator and is more
//! than adequate for graph generation; it is *not* cryptographic.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Different seeds give independent
    /// looking streams; the same seed always gives the same stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[0, bound)` as `u32`.
    #[inline]
    pub fn range_u32(&mut self, bound: u32) -> u32 {
        self.range_u64(bound as u64) as u32
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.range_u64(hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.range_u64(slice.len() as u64) as usize]
    }

    /// Forks an independent generator (useful for parallel generation with
    /// reproducible per-worker streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Samples `k` distinct integers from `[0, n)` (Floyd's algorithm).
    /// The result is in no particular order. Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: u64) -> Vec<u64> {
        assert!(k <= n, "cannot sample {k} distinct values from [0, {n})");
        let mut chosen = rustc_hash::FxHashSet::default();
        let mut out = Vec::with_capacity(k as usize);
        for j in n - k..n {
            let t = self.range_u64(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value for seed 1234567 from the SplitMix64 reference
        // implementation (verified independently): guards against stream
        // changes that would silently alter every generated graph.
        let mut r = SplitMix64::new(0);
        let v = r.next_u64();
        assert_eq!(v, 0xE220A8397B1DCDAF);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.range_u64(17);
            assert!(x < 17);
            let y = r.range(5, 10);
            assert!((5..10).contains(&y));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.range_u64(8) as usize] += 1;
        }
        let expected = n / 8;
        for &c in &counts {
            // Loose 10% tolerance; a biased generator would fail wildly.
            assert!((c as f64 - expected as f64).abs() < expected as f64 * 0.1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = SplitMix64::new(5);
        let s = r.sample_distinct(1000, 100);
        assert_eq!(s.len(), 100);
        let set: std::collections::BTreeSet<_> = s.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert!(s.iter().all(|&x| x < 1000));
        // Edge cases.
        assert_eq!(r.sample_distinct(5, 5).len(), 5);
        assert!(r.sample_distinct(5, 0).is_empty());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(13);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }
}
