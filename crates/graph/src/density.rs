//! The density notions of the paper (Definitions 1 and 2).
//!
//! * Undirected: `ρ(S) = w(E(S)) / |S|` — induced edge weight over node
//!   count. Note this is **not** the edge-to-possible-edge ratio; the
//!   densest subgraph under this measure can be found in polynomial time.
//! * Directed (Kannan–Vinay): `ρ(S, T) = |E(S,T)| / sqrt(|S|·|T|)` for two
//!   not necessarily disjoint subsets.

/// Undirected density `ρ(S) = edge_weight / |S|`. Returns 0 for `|S| = 0`.
#[inline]
pub fn undirected(edge_weight: f64, set_size: usize) -> f64 {
    if set_size == 0 {
        0.0
    } else {
        edge_weight / set_size as f64
    }
}

/// Directed density `ρ(S,T) = edges / sqrt(|S|·|T|)`. Returns 0 if either
/// side is empty.
#[inline]
pub fn directed(edges: f64, s_size: usize, t_size: usize) -> f64 {
    if s_size == 0 || t_size == 0 {
        0.0
    } else {
        edges / ((s_size as f64) * (t_size as f64)).sqrt()
    }
}

/// The (2+2ε) removal threshold of Algorithm 1: nodes with induced degree
/// `≤ 2(1+ε)·ρ(S)` are removed each pass.
#[inline]
pub fn undirected_threshold(rho: f64, epsilon: f64) -> f64 {
    2.0 * (1.0 + epsilon) * rho
}

/// The removal threshold of Algorithm 3 for the side of size `side_size`:
/// nodes with degree into the other side `≤ (1+ε)·E/|side|` are removed.
#[inline]
pub fn directed_threshold(edges: f64, side_size: usize, epsilon: f64) -> f64 {
    if side_size == 0 {
        0.0
    } else {
        (1.0 + epsilon) * edges / side_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_density_values() {
        assert_eq!(undirected(0.0, 0), 0.0);
        assert_eq!(undirected(10.0, 5), 2.0);
        // Complete graph on k nodes: ρ = (k-1)/2.
        let k = 7usize;
        let m = (k * (k - 1) / 2) as f64;
        assert!((undirected(m, k) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn directed_density_values() {
        assert_eq!(directed(5.0, 0, 3), 0.0);
        assert_eq!(directed(5.0, 3, 0), 0.0);
        // Complete bipartite |S|=a, |T|=b: ρ = ab/sqrt(ab) = sqrt(ab).
        assert!((directed(12.0, 3, 4) - (12.0f64).sqrt()).abs() < 1e-12);
        // Single node with a self-loop viewed as S=T={v}: ρ = 1.
        assert!((directed(1.0, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds() {
        assert!((undirected_threshold(3.0, 0.0) - 6.0).abs() < 1e-12);
        assert!((undirected_threshold(3.0, 0.5) - 9.0).abs() < 1e-12);
        assert!((directed_threshold(10.0, 5, 0.0) - 2.0).abs() < 1e-12);
        assert!((directed_threshold(10.0, 5, 1.0) - 4.0).abs() < 1e-12);
        assert_eq!(directed_threshold(10.0, 0, 1.0), 0.0);
    }
}
