//! # dsg-graph — graph substrate for densest-subgraph algorithms
//!
//! This crate provides every graph-shaped building block used by the
//! reproduction of *"Densest Subgraph in Streaming and MapReduce"*
//! (Bahmani, Kumar, Vassilvitskii; VLDB 2012):
//!
//! * [`EdgeList`] — a mutable edge-list representation used by builders,
//!   generators, and I/O.
//! * [`CsrUndirected`] / [`CsrDirected`] — immutable compressed-sparse-row
//!   snapshots for fast in-memory algorithms.
//! * [`DeltaGraph`] — a mutable overlay (canonical base + add/remove logs
//!   with tombstones, compactable) backing the engine's graph sessions.
//! * [`NodeSet`] — a dense bitset over node ids with O(1) cardinality,
//!   used to represent subgraphs `S ⊆ V`.
//! * [`stream`] — the multi-pass *semi-streaming* model: the node set fits
//!   in memory, edges are re-read pass by pass ([`stream::EdgeStream`]).
//! * [`gen`] — synthetic graph generators, including the worst-case
//!   instances from the paper's lower bounds (Lemmas 5–7).
//! * [`io`] — SNAP-style text and compact binary edge-list formats.
//! * [`rng`] — a tiny deterministic RNG so every generated graph is
//!   reproducible across platforms.
//! * [`wal`] — the byte codec for durable session ops ([`DeltaGraph`]
//!   mutations), replayed by the engine's write-ahead log on startup.
//!
//! The density definitions of the paper live in [`density`].

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod atomic;
pub mod bitset;
pub mod csr;
pub mod delta;
pub mod density;
pub mod edgelist;
pub mod gen;
pub mod io;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod wal;

pub use bitset::NodeSet;
pub use csr::{CsrDirected, CsrUndirected};
pub use delta::DeltaGraph;
pub use edgelist::{EdgeList, GraphKind};
pub use rng::SplitMix64;

/// Node identifier. Graphs are addressed by dense ids `0..num_nodes`.
pub type NodeId = u32;

/// Errors produced by graph parsing and validation.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared number of nodes.
        num_nodes: u64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: u64,
        /// Explanation of the failure.
        msg: String,
    },
    /// A binary edge file had an invalid header or truncated body.
    Format(String),
    /// A graph exceeded a hard limit of a serialization format (e.g. the
    /// binary format's `u32` edge count).
    TooLarge {
        /// What overflowed (e.g. `"edge count"`).
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The format's maximum.
        max: u64,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range (num_nodes = {num_nodes})")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
            GraphError::TooLarge { what, value, max } => {
                write!(f, "{what} {value} exceeds the format limit of {max}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
