//! Serialization of [`DeltaGraph`] session ops for the engine's
//! write-ahead log.
//!
//! A [`SessionOp`] is exactly one catalog mutation as the serve layer
//! applies it: create a session with its initial edges, add a batch of
//! edges, remove a batch, or compact. The encoding is the op **payload**
//! of a WAL record — length framing, checksums, and file layout live in
//! the engine's `persistence` module; this module only defines how an op
//! becomes bytes and how replaying it rebuilds the same [`DeltaGraph`]
//! the live mutation produced.
//!
//! ## Encoding (all integers little-endian)
//!
//! | tag | op      | body                                      |
//! |-----|---------|-------------------------------------------|
//! | 1   | create  | `kind u8`, `edge_count u32`, pairs        |
//! | 2   | add     | `edge_count u32`, pairs                   |
//! | 3   | remove  | `edge_count u32`, pairs                   |
//! | 4   | compact | (empty)                                   |
//!
//! Each pair is `u u32, v u32`. Weighted sessions are not encodable:
//! the serve protocol only creates unweighted sessions, and the codec
//! rejects weighted graphs with a typed error rather than silently
//! dropping weights.

use std::borrow::Cow;

use crate::delta::DeltaGraph;
use crate::edgelist::GraphKind;
use crate::{GraphError, NodeId, Result};

/// Op tag bytes (the first payload byte).
const TAG_CREATE: u8 = 1;
const TAG_ADD: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_COMPACT: u8 = 4;

/// Kind bytes inside a create body.
const KIND_UNDIRECTED: u8 = 0;
const KIND_DIRECTED: u8 = 1;

/// One durable session mutation, exactly as the catalog applied it.
///
/// Edge batches borrow (`Cow::Borrowed`) on the encode path — the live
/// mutation encodes straight from the client's parsed batch without a
/// copy — and own (`Cow::Owned`) on the decode path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionOp<'a> {
    /// `create_graph`: a fresh session of `kind` seeded with `edges`.
    Create {
        /// Directedness of the new session.
        kind: GraphKind,
        /// The initial edge batch (may be empty).
        edges: Cow<'a, [(NodeId, NodeId)]>,
    },
    /// `add_edges` with the given batch.
    Add(Cow<'a, [(NodeId, NodeId)]>),
    /// `remove_edges` with the given batch.
    Remove(Cow<'a, [(NodeId, NodeId)]>),
    /// An explicit `compact` request.
    Compact,
}

impl SessionOp<'_> {
    /// Appends the op's encoding to `out` and returns the bytes written.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match self {
            SessionOp::Create { kind, edges } => {
                out.push(TAG_CREATE);
                out.push(match kind {
                    GraphKind::Undirected => KIND_UNDIRECTED,
                    GraphKind::Directed => KIND_DIRECTED,
                });
                encode_edges(edges, out);
            }
            SessionOp::Add(edges) => {
                out.push(TAG_ADD);
                encode_edges(edges, out);
            }
            SessionOp::Remove(edges) => {
                out.push(TAG_REMOVE);
                encode_edges(edges, out);
            }
            SessionOp::Compact => out.push(TAG_COMPACT),
        }
        out.len() - start
    }

    /// Decodes one op from `bytes`, which must be exactly one encoded op
    /// (the record framing layer has already stripped length prefix and
    /// checksum). Trailing bytes are a format error: a checksummed record
    /// holds exactly one op, so slack means the writer and reader
    /// disagree about the codec.
    pub fn decode(bytes: &[u8]) -> Result<SessionOp<'static>> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| GraphError::Format("empty session op".into()))?;
        let (op, used) = match tag {
            TAG_CREATE => {
                let (&kind_byte, body) = rest
                    .split_first()
                    .ok_or_else(|| GraphError::Format("create op missing kind byte".into()))?;
                let kind = match kind_byte {
                    KIND_UNDIRECTED => GraphKind::Undirected,
                    KIND_DIRECTED => GraphKind::Directed,
                    other => {
                        return Err(GraphError::Format(format!(
                            "create op has unknown graph kind byte {other}"
                        )))
                    }
                };
                let (edges, used) = decode_edges(body)?;
                (
                    SessionOp::Create {
                        kind,
                        edges: Cow::Owned(edges),
                    },
                    2 + used,
                )
            }
            TAG_ADD => {
                let (edges, used) = decode_edges(rest)?;
                (SessionOp::Add(Cow::Owned(edges)), 1 + used)
            }
            TAG_REMOVE => {
                let (edges, used) = decode_edges(rest)?;
                (SessionOp::Remove(Cow::Owned(edges)), 1 + used)
            }
            TAG_COMPACT => (SessionOp::Compact, 1),
            other => {
                return Err(GraphError::Format(format!(
                    "unknown session op tag {other}"
                )))
            }
        };
        if used != bytes.len() {
            return Err(GraphError::Format(format!(
                "session op has {} trailing bytes",
                bytes.len() - used
            )));
        }
        Ok(op)
    }

    /// Replays this op against `state`, mirroring the catalog's live
    /// mutation path: a create replaces `state` with a fresh session, an
    /// add applies the batch and then the same `maybe_compact` policy the
    /// live path runs, a remove applies tombstones, a compact folds the
    /// delta. Returns how many edges the op changed (0 for compact).
    ///
    /// `compact_ratio` must be the catalog's configured auto-compaction
    /// ratio so replay reproduces the live path's compaction decisions.
    pub fn replay(&self, state: &mut DeltaGraph, compact_ratio: f64) -> Result<usize> {
        match self {
            SessionOp::Create { kind, edges } => {
                let mut fresh = DeltaGraph::new_empty(*kind);
                let applied = fresh.add_edges(edges)?;
                *state = fresh;
                Ok(applied)
            }
            SessionOp::Add(edges) => {
                let applied = state.add_edges(edges)?;
                if applied > 0 {
                    state.maybe_compact(compact_ratio);
                }
                Ok(applied)
            }
            SessionOp::Remove(edges) => {
                let removed = state.remove_edges(edges);
                if removed > 0 {
                    state.maybe_compact(compact_ratio);
                }
                Ok(removed)
            }
            SessionOp::Compact => {
                state.compact();
                Ok(0)
            }
        }
    }

    /// The edge batch carried by this op (empty for compact).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        match self {
            SessionOp::Create { edges, .. } => edges,
            SessionOp::Add(edges) | SessionOp::Remove(edges) => edges,
            SessionOp::Compact => &[],
        }
    }

    /// Converts any borrowed edge batch into an owned one, detaching the
    /// op from the buffer it was encoded from.
    pub fn into_owned(self) -> SessionOp<'static> {
        match self {
            SessionOp::Create { kind, edges } => SessionOp::Create {
                kind,
                edges: Cow::Owned(edges.into_owned()),
            },
            SessionOp::Add(edges) => SessionOp::Add(Cow::Owned(edges.into_owned())),
            SessionOp::Remove(edges) => SessionOp::Remove(Cow::Owned(edges.into_owned())),
            SessionOp::Compact => SessionOp::Compact,
        }
    }
}

/// Guards encodable sessions: the WAL codec carries no weights, so a
/// weighted [`DeltaGraph`] session must be rejected at the door (the
/// serve protocol cannot create one today; this keeps the failure typed
/// if an embedder tries).
pub fn check_encodable(state: &DeltaGraph) -> Result<()> {
    if state.is_weighted() {
        return Err(GraphError::Format(
            "weighted sessions are not representable in the WAL codec".into(),
        ));
    }
    Ok(())
}

fn encode_edges(edges: &[(NodeId, NodeId)], out: &mut Vec<u8>) {
    debug_assert!(edges.len() <= u32::MAX as usize);
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for &(u, v) in edges {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_edges(bytes: &[u8]) -> Result<(Vec<(NodeId, NodeId)>, usize)> {
    if bytes.len() < 4 {
        return Err(GraphError::Format(
            "session op truncated before edge count".into(),
        ));
    }
    let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let need = count
        .checked_mul(8)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| GraphError::Format("session op edge count overflows".into()))?;
    if bytes.len() < need {
        return Err(GraphError::Format(format!(
            "session op edge batch truncated: need {need} bytes, have {}",
            bytes.len()
        )));
    }
    let mut edges = Vec::with_capacity(count);
    let mut at = 4;
    for _ in 0..count {
        let u = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let v = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        edges.push((u, v));
        at += 8;
    }
    Ok((edges, need))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: &SessionOp<'_>) -> SessionOp<'static> {
        let mut buf = Vec::new();
        op.encode_into(&mut buf);
        SessionOp::decode(&buf).expect("roundtrip decode")
    }

    #[test]
    fn ops_roundtrip_bitwise() {
        let ops: Vec<SessionOp<'_>> = vec![
            SessionOp::Create {
                kind: GraphKind::Undirected,
                edges: Cow::Owned(vec![(0, 1), (1, 2)]),
            },
            SessionOp::Create {
                kind: GraphKind::Directed,
                edges: Cow::Owned(vec![]),
            },
            SessionOp::Add(Cow::Owned(vec![(3, 4)])),
            SessionOp::Remove(Cow::Owned(vec![(0, 1), (4, 3)])),
            SessionOp::Compact,
        ];
        for op in &ops {
            assert_eq!(&roundtrip(op), op);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SessionOp::decode(&[]).is_err());
        assert!(SessionOp::decode(&[9]).is_err());
        assert!(SessionOp::decode(&[TAG_CREATE]).is_err());
        assert!(SessionOp::decode(&[TAG_CREATE, 7, 0, 0, 0, 0]).is_err());
        // Truncated edge batch.
        assert!(SessionOp::decode(&[TAG_ADD, 1, 0, 0, 0, 1, 2]).is_err());
        // Trailing slack after a complete op.
        let mut buf = Vec::new();
        SessionOp::Compact.encode_into(&mut buf);
        buf.push(0);
        assert!(SessionOp::decode(&buf).is_err());
    }

    #[test]
    fn replay_reproduces_live_mutations() {
        let mut live = DeltaGraph::new_empty(GraphKind::Undirected);
        let mut replayed = DeltaGraph::new_empty(GraphKind::Directed);
        let script: Vec<SessionOp<'_>> = vec![
            SessionOp::Create {
                kind: GraphKind::Undirected,
                edges: Cow::Owned(vec![(0, 1), (1, 2), (2, 0)]),
            },
            SessionOp::Add(Cow::Owned(vec![(2, 3), (3, 4)])),
            SessionOp::Remove(Cow::Owned(vec![(1, 2)])),
            SessionOp::Compact,
            SessionOp::Add(Cow::Owned(vec![(0, 4)])),
        ];
        for op in &script {
            op.replay(&mut live, 0.5).unwrap();
            let roundtripped = roundtrip(op);
            roundtripped.replay(&mut replayed, 0.5).unwrap();
        }
        let mut a = live.materialize();
        a.canonicalize();
        let mut b = replayed.materialize();
        b.canonicalize();
        assert_eq!(a.num_nodes, b.num_nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(live.compactions(), replayed.compactions());
    }

    #[test]
    fn weighted_sessions_are_rejected() {
        let g = DeltaGraph::new_empty_weighted();
        assert!(check_encodable(&g).is_err());
    }
}
