//! Graph serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The text format is line-oriented `u v [w]` with `#` comments — the same
//! shape as the SNAP datasets the paper evaluates on (Table 2), so real
//! downloads drop in unchanged. The binary format is a fixed 16-byte header
//! followed by fixed-width little-endian records; it exists so that the
//! out-of-core streaming experiments are not bottlenecked on integer
//! parsing.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::edgelist::{EdgeList, GraphKind};
use crate::stream::BINARY_MAGIC;
use crate::{GraphError, Result};

/// Writes `list` as a text edge list with a SNAP-style header comment.
pub fn write_text<P: AsRef<Path>>(path: P, list: &EdgeList) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let kind = match list.kind {
        GraphKind::Undirected => "undirected",
        GraphKind::Directed => "directed",
    };
    writeln!(
        w,
        "# {kind} graph: Nodes: {} Edges: {}",
        list.num_nodes,
        list.num_edges()
    )?;
    match &list.weights {
        None => {
            for &(u, v) in &list.edges {
                writeln!(w, "{u}\t{v}")?;
            }
        }
        Some(ws) => {
            for (&(u, v), &wt) in list.edges.iter().zip(ws) {
                writeln!(w, "{u}\t{v}\t{wt}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a text edge list. Node ids may be arbitrary (non-dense) `u32`
/// values; `num_nodes` is set to `max id + 1`. Self-loops and duplicates
/// are kept — call [`EdgeList::canonicalize`] to simplify.
pub fn read_text<P: AsRef<Path>>(path: P, kind: GraphKind) -> Result<EdgeList> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut any_weight = false;
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx as u64 + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u32 = it.next().unwrap().parse().map_err(|e| GraphError::Parse {
            line: line_no,
            msg: format!("bad source id: {e}"),
        })?;
        let v: u32 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                msg: "missing target id".to_string(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                msg: format!("bad target id: {e}"),
            })?;
        let w: f64 = match it.next() {
            None => 1.0,
            Some(tok) => {
                any_weight = true;
                tok.parse().map_err(|e| GraphError::Parse {
                    line: line_no,
                    msg: format!("bad weight: {e}"),
                })?
            }
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
        weights.push(w);
    }
    let num_nodes = if edges.is_empty() { 0 } else { max_id + 1 };
    Ok(EdgeList {
        num_nodes,
        edges,
        weights: if any_weight { Some(weights) } else { None },
        kind,
    })
}

/// Writes `list` in the compact binary format readable by
/// [`crate::stream::BinaryFileStream`] and [`read_binary`].
pub fn write_binary<P: AsRef<Path>>(path: P, list: &EdgeList) -> Result<()> {
    let m = list.num_edges();
    assert!(
        m <= u32::MAX as usize,
        "binary format caps edges at u32::MAX"
    );
    let file = File::create(path)?;
    let mut w = BufWriter::with_capacity(1 << 20, file);
    let weighted = list.is_weighted();
    let mut flags = 0u32;
    if weighted {
        flags |= 1;
    }
    if list.kind == GraphKind::Directed {
        flags |= 2;
    }
    w.write_all(&BINARY_MAGIC.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&list.num_nodes.to_le_bytes())?;
    w.write_all(&(m as u32).to_le_bytes())?;
    for (i, &(u, v)) in list.edges.iter().enumerate() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        if weighted {
            w.write_all(&list.weight(i).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a binary edge file fully into memory.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    use std::io::Read;
    let mut file = File::open(path)?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    if buf.len() < 16 {
        return Err(GraphError::Format(
            "binary edge file shorter than header".into(),
        ));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != BINARY_MAGIC {
        return Err(GraphError::Format(format!("bad magic 0x{magic:08x}")));
    }
    let flags = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let weighted = flags & 1 != 0;
    let kind = if flags & 2 != 0 {
        GraphKind::Directed
    } else {
        GraphKind::Undirected
    };
    let num_nodes = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let num_edges = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let record = if weighted { 16 } else { 8 };
    if buf.len() != 16 + num_edges * record {
        return Err(GraphError::Format(format!(
            "binary edge file length {} != expected {}",
            buf.len(),
            16 + num_edges * record
        )));
    }
    let mut edges = Vec::with_capacity(num_edges);
    let mut weights = if weighted {
        Vec::with_capacity(num_edges)
    } else {
        Vec::new()
    };
    let mut off = 16;
    for _ in 0..num_edges {
        let u = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let v = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        edges.push((u, v));
        if weighted {
            let w = f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
            weights.push(w);
        }
        off += record;
    }
    Ok(EdgeList {
        num_nodes,
        edges,
        weights: if weighted { Some(weights) } else { None },
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BinaryFileStream, EdgeStream};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dsg_graph_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> EdgeList {
        let mut g = EdgeList::new_undirected(5);
        g.push(0, 1);
        g.push(1, 2);
        g.push(3, 4);
        g
    }

    #[test]
    fn text_round_trip() {
        let path = tmp("t1.txt");
        let g = sample();
        write_text(&path, &g).unwrap();
        let h = read_text(&path, GraphKind::Undirected).unwrap();
        assert_eq!(h.num_nodes, 5);
        assert_eq!(h.edges, g.edges);
        assert!(!h.is_weighted());
    }

    #[test]
    fn text_round_trip_weighted() {
        let path = tmp("t2.txt");
        let mut g = EdgeList::new_directed(3);
        g.push_weighted(0, 1, 2.25);
        g.push_weighted(2, 0, 0.5);
        write_text(&path, &g).unwrap();
        let h = read_text(&path, GraphKind::Directed).unwrap();
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.weights, g.weights);
        assert_eq!(h.kind, GraphKind::Directed);
    }

    #[test]
    fn binary_round_trip() {
        let path = tmp("b1.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(h.num_nodes, g.num_nodes);
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.kind, GraphKind::Undirected);
    }

    #[test]
    fn binary_round_trip_weighted_directed() {
        let path = tmp("b2.bin");
        let mut g = EdgeList::new_directed(4);
        g.push_weighted(0, 3, 1.5);
        g.push_weighted(3, 2, 2.5);
        write_binary(&path, &g).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.weights, g.weights);
        assert_eq!(h.kind, GraphKind::Directed);
    }

    #[test]
    fn binary_stream_matches_file() {
        let path = tmp("b3.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let mut s = BinaryFileStream::open(&path).unwrap();
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.num_edges(), 3);
        let mut seen = Vec::new();
        s.for_each_edge(&mut |u, v, w| seen.push((u, v, w)));
        assert_eq!(seen, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
    }

    #[test]
    fn binary_rejects_truncated() {
        let path = tmp("b4.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_binary(&path).is_err());
        assert!(BinaryFileStream::open(&path).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("b5.bin");
        std::fs::write(&path, [0u8; 32]).unwrap();
        assert!(read_binary(&path).is_err());
    }
}
