//! Graph serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The text format is line-oriented `u v [w]` with `#` comments — the same
//! shape as the SNAP datasets the paper evaluates on (Table 2), so real
//! downloads drop in unchanged. Text parsing is shared with
//! [`crate::stream::TextFileStream`] (one line grammar, one
//! implementation: [`crate::stream::parse_edge_line`]), so a file loads
//! in memory if and only if it also streams.
//!
//! The binary format is a fixed 16-byte header followed by fixed-width
//! little-endian records; it exists so that the out-of-core streaming
//! experiments are not bottlenecked on integer parsing. All binary reads
//! go through [`BinaryEdgeReader`], which works record-by-record through
//! a fixed-size buffer — memory stays O(1) in the file size, which is the
//! point of the out-of-core path.
//!
//! Nothing in this module panics on user input: malformed files, header
//! limits, and out-of-range node ids all surface as [`GraphError`]s.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::{EdgeList, GraphKind};
use crate::stream::{parse_edge_line, BINARY_MAGIC};
use crate::{GraphError, Result};

/// Writes `list` as a text edge list with a SNAP-style header comment.
pub fn write_text<P: AsRef<Path>>(path: P, list: &EdgeList) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let kind = match list.kind {
        GraphKind::Undirected => "undirected",
        GraphKind::Directed => "directed",
    };
    writeln!(
        w,
        "# {kind} graph: Nodes: {} Edges: {}",
        list.num_nodes,
        list.num_edges()
    )?;
    match &list.weights {
        None => {
            for &(u, v) in &list.edges {
                writeln!(w, "{u}\t{v}")?;
            }
        }
        Some(ws) => {
            for (&(u, v), &wt) in list.edges.iter().zip(ws) {
                writeln!(w, "{u}\t{v}\t{wt}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a text edge list. Node ids may be arbitrary (non-dense) `u32`
/// values; `num_nodes` is set to `max id + 1`. Self-loops and duplicates
/// are kept — call [`EdgeList::canonicalize`] to simplify.
///
/// Uses the same line grammar as [`crate::stream::TextFileStream`]
/// (shared [`parse_edge_line`]): `u v [w]`, `#` comments, and **no**
/// trailing tokens — a file loads here if and only if it streams.
pub fn read_text<P: AsRef<Path>>(path: P, kind: GraphKind) -> Result<EdgeList> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut any_weight = false;
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some((u, v, w)) = parse_edge_line(&line, idx as u64 + 1)? {
            max_id = max_id.max(u).max(v);
            edges.push((u, v));
            if let Some(w) = w {
                any_weight = true;
                weights.push(w);
            } else {
                weights.push(1.0);
            }
        }
    }
    if !edges.is_empty() && max_id == u32::MAX {
        // `max id + 1` must still fit the u32 node-count space.
        return Err(GraphError::TooLarge {
            what: "node id",
            value: max_id as u64,
            max: u32::MAX as u64 - 1,
        });
    }
    let num_nodes = if edges.is_empty() { 0 } else { max_id + 1 };
    Ok(EdgeList {
        num_nodes,
        edges,
        weights: if any_weight { Some(weights) } else { None },
        kind,
    })
}

/// Writes `list` in the compact binary format readable by
/// [`crate::stream::BinaryFileStream`] and [`read_binary`].
///
/// The format stores the edge count as a `u32`; lists with more than
/// `u32::MAX` edges are rejected with [`GraphError::TooLarge`].
pub fn write_binary<P: AsRef<Path>>(path: P, list: &EdgeList) -> Result<()> {
    let m = list.num_edges();
    if m > u32::MAX as usize {
        return Err(GraphError::TooLarge {
            what: "edge count",
            value: m as u64,
            max: u32::MAX as u64,
        });
    }
    let file = File::create(path)?;
    let mut w = BufWriter::with_capacity(BINARY_READ_BUFFER, file);
    let weighted = list.is_weighted();
    let mut flags = 0u32;
    if weighted {
        flags |= 1;
    }
    if list.kind == GraphKind::Directed {
        flags |= 2;
    }
    w.write_all(&BINARY_MAGIC.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&list.num_nodes.to_le_bytes())?;
    w.write_all(&(m as u32).to_le_bytes())?;
    for (i, &(u, v)) in list.edges.iter().enumerate() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        if weighted {
            w.write_all(&list.weight(i).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Fixed read-buffer size of [`BinaryEdgeReader`] (64 KiB). Binary files
/// of any size are read through a buffer of exactly this many bytes.
pub const BINARY_READ_BUFFER: usize = 64 * 1024;

/// A validating, chunked reader over the compact binary edge format.
///
/// Opens the file, checks the header (magic, length vs. record count)
/// and then yields edges one [`BinaryEdgeReader::next_edge`] at a time
/// through a fixed [`BINARY_READ_BUFFER`]-byte buffer — never the whole
/// file. Node ids are bounds-checked against the header's node count, so
/// a corrupt or adversarial file surfaces a [`GraphError`] instead of an
/// out-of-bounds panic later in CSR construction or a peeling kernel.
pub struct BinaryEdgeReader {
    reader: BufReader<File>,
    num_nodes: u32,
    num_edges: u64,
    read: u64,
    weighted: bool,
    kind: GraphKind,
}

impl BinaryEdgeReader {
    /// Opens a binary edge file and validates its header and length.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = File::open(&path)?;
        let mut reader = BufReader::with_capacity(BINARY_READ_BUFFER, file);
        let mut header = [0u8; 16];
        reader
            .read_exact(&mut header)
            .map_err(|_| GraphError::Format("binary edge file shorter than header".into()))?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != BINARY_MAGIC {
            return Err(GraphError::Format(format!(
                "bad magic 0x{magic:08x} (expected 0x{BINARY_MAGIC:08x})"
            )));
        }
        let flags = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let weighted = flags & 1 != 0;
        let kind = if flags & 2 != 0 {
            GraphKind::Directed
        } else {
            GraphKind::Undirected
        };
        let num_nodes = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let num_edges = u32::from_le_bytes(header[12..16].try_into().unwrap()) as u64;
        let record: u64 = if weighted { 16 } else { 8 };
        let expected = 16 + num_edges * record;
        let actual = reader.get_ref().metadata()?.len();
        if actual != expected {
            return Err(GraphError::Format(format!(
                "binary edge file length {actual} != expected {expected}"
            )));
        }
        Ok(BinaryEdgeReader {
            reader,
            num_nodes,
            num_edges,
            read: 0,
            weighted,
            kind,
        })
    }

    /// Node count from the header.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Edge count from the header.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Whether records carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Directedness recorded in the header flags.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Reads the next edge, or `Ok(None)` after the last record.
    ///
    /// Errors on short reads (the file shrank after [`open`](Self::open))
    /// and on node ids `>= num_nodes`.
    pub fn next_edge(&mut self) -> Result<Option<(u32, u32, f64)>> {
        if self.read == self.num_edges {
            return Ok(None);
        }
        let len = if self.weighted { 16 } else { 8 };
        let mut rec = [0u8; 16];
        self.reader.read_exact(&mut rec[..len]).map_err(|e| {
            GraphError::Format(format!(
                "binary edge file truncated at record {}: {e}",
                self.read
            ))
        })?;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let w = if self.weighted {
            f64::from_le_bytes(rec[8..16].try_into().unwrap())
        } else {
            1.0
        };
        if u >= self.num_nodes || v >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u.max(v) as u64,
                num_nodes: self.num_nodes as u64,
            });
        }
        self.read += 1;
        Ok(Some((u, v, w)))
    }
}

/// Reads a binary edge file into memory through the chunked
/// [`BinaryEdgeReader`] (fixed-size read buffer; only the edge list
/// itself is materialized, never a second whole-file byte copy).
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let mut r = BinaryEdgeReader::open(path)?;
    let weighted = r.is_weighted();
    let mut edges = Vec::with_capacity(r.num_edges() as usize);
    let mut weights = if weighted {
        Vec::with_capacity(r.num_edges() as usize)
    } else {
        Vec::new()
    };
    while let Some((u, v, w)) = r.next_edge()? {
        edges.push((u, v));
        if weighted {
            weights.push(w);
        }
    }
    Ok(EdgeList {
        num_nodes: r.num_nodes(),
        edges,
        weights: if weighted { Some(weights) } else { None },
        kind: r.kind(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BinaryFileStream, EdgeStream};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dsg_graph_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> EdgeList {
        let mut g = EdgeList::new_undirected(5);
        g.push(0, 1);
        g.push(1, 2);
        g.push(3, 4);
        g
    }

    #[test]
    fn text_round_trip() {
        let path = tmp("t1.txt");
        let g = sample();
        write_text(&path, &g).unwrap();
        let h = read_text(&path, GraphKind::Undirected).unwrap();
        assert_eq!(h.num_nodes, 5);
        assert_eq!(h.edges, g.edges);
        assert!(!h.is_weighted());
    }

    #[test]
    fn text_round_trip_weighted() {
        let path = tmp("t2.txt");
        let mut g = EdgeList::new_directed(3);
        g.push_weighted(0, 1, 2.25);
        g.push_weighted(2, 0, 0.5);
        write_text(&path, &g).unwrap();
        let h = read_text(&path, GraphKind::Directed).unwrap();
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.weights, g.weights);
        assert_eq!(h.kind, GraphKind::Directed);
    }

    #[test]
    fn text_rejects_trailing_tokens_like_the_stream() {
        // read_text and TextFileStream share one parser; a line with a
        // fourth token fails identically in both.
        let path = tmp("t3.txt");
        std::fs::write(&path, "0 1\n1 2 0.5 extra\n").unwrap();
        let loaded = read_text(&path, GraphKind::Undirected);
        assert!(
            matches!(loaded, Err(GraphError::Parse { line: 2, .. })),
            "{loaded:?}"
        );
        let streamed = crate::stream::TextFileStream::open(&path, 3);
        assert!(matches!(
            streamed.err(),
            Some(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn binary_round_trip() {
        let path = tmp("b1.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(h.num_nodes, g.num_nodes);
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.kind, GraphKind::Undirected);
    }

    #[test]
    fn binary_round_trip_weighted_directed() {
        let path = tmp("b2.bin");
        let mut g = EdgeList::new_directed(4);
        g.push_weighted(0, 3, 1.5);
        g.push_weighted(3, 2, 2.5);
        write_binary(&path, &g).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(h.edges, g.edges);
        assert_eq!(h.weights, g.weights);
        assert_eq!(h.kind, GraphKind::Directed);
    }

    #[test]
    fn binary_stream_matches_file() {
        let path = tmp("b3.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let mut s = BinaryFileStream::open(&path).unwrap();
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.num_edges(), 3);
        let mut seen = Vec::new();
        s.for_each_edge(&mut |u, v, w| seen.push((u, v, w)));
        assert_eq!(seen, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
    }

    #[test]
    fn binary_rejects_truncated() {
        let path = tmp("b4.bin");
        let g = sample();
        write_binary(&path, &g).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_binary(&path).is_err());
        assert!(BinaryFileStream::open(&path).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("b5.bin");
        std::fs::write(&path, [0u8; 32]).unwrap();
        assert!(read_binary(&path).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_ids() {
        // Header says 2 nodes but a record names node 9: a typed error,
        // not a later index panic in CSR construction.
        let path = tmp("b6.bin");
        let mut g = EdgeList::new_undirected(10);
        g.push(0, 9);
        write_binary(&path, &g).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_binary(&path),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn chunked_reader_reports_header_fields() {
        let path = tmp("b7.bin");
        let mut g = EdgeList::new_directed(6);
        g.push_weighted(1, 2, 0.25);
        write_binary(&path, &g).unwrap();
        let mut r = BinaryEdgeReader::open(&path).unwrap();
        assert_eq!(r.num_nodes(), 6);
        assert_eq!(r.num_edges(), 1);
        assert!(r.is_weighted());
        assert_eq!(r.kind(), GraphKind::Directed);
        assert_eq!(r.next_edge().unwrap(), Some((1, 2, 0.25)));
        assert_eq!(r.next_edge().unwrap(), None);
        assert_eq!(r.next_edge().unwrap(), None);
    }
}
