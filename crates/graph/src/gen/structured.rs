//! Structured graph models: small-world rewiring and lattices.
//!
//! Not evaluated in the paper, but standard fixtures for exercising the
//! algorithms on low-skew graphs — the regime where Algorithm 1's pass
//! bound is tight and the heavy-tail speedups of §6.3 *don't* apply.

use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;

use super::basic::circulant;

/// Watts–Strogatz small-world graph: a `k`-regular ring lattice with each
/// edge rewired independently with probability `beta` (`k` even).
///
/// `beta = 0` is the circulant lattice; `beta = 1` approaches `G(n, m)`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&beta));
    assert!(k < n, "degree must be below n");
    let mut rng = SplitMix64::new(seed);
    let base = circulant(n, k);
    let mut g = EdgeList::new_undirected(n);
    for &(u, v) in &base.edges {
        if rng.bernoulli(beta) {
            // Rewire: keep u, pick a fresh target (avoiding the self loop;
            // duplicate edges are cleaned by canonicalize below).
            let mut w = rng.range_u32(n);
            let mut guard = 0;
            while w == u {
                w = rng.range_u32(n);
                guard += 1;
                assert!(guard < 1000, "rewire loop stuck");
            }
            g.push(u, w);
        } else {
            g.push(u, v);
        }
    }
    g.canonicalize();
    g
}

/// 2-D grid graph on `rows × cols` nodes with 4-neighbor connectivity.
/// Node `(r, c)` has id `r·cols + c`. Density approaches 2 from below as
/// the grid grows; no subgraph is much denser — a worst case for "find a
/// dense core" heuristics.
pub fn grid(rows: u32, cols: u32) -> EdgeList {
    let n = rows
        .checked_mul(cols)
        .expect("grid dimensions overflow u32");
    let mut g = EdgeList::new_undirected(n);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.push(id, id + 1);
            }
            if r + 1 < rows {
                g.push(id, id + cols);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrUndirected;

    #[test]
    fn ws_beta_zero_is_lattice() {
        let g = watts_strogatz(30, 4, 0.0, 1);
        let mut lattice = circulant(30, 4);
        lattice.canonicalize(); // same canonical orientation as the WS output
        assert_eq!(g.edges, lattice.edges);
    }

    #[test]
    fn ws_rewiring_keeps_edge_count_close() {
        let g = watts_strogatz(500, 6, 0.3, 7);
        g.validate().unwrap();
        // Rewiring can create duplicates that canonicalize removes; the
        // count stays within a few percent.
        let target = 500 * 3;
        assert!(
            g.num_edges() as i64 >= target as i64 - 60,
            "{} edges",
            g.num_edges()
        );
        assert!(g.num_edges() <= target);
    }

    #[test]
    fn ws_deterministic() {
        let a = watts_strogatz(100, 4, 0.2, 9);
        let b = watts_strogatz(100, 4, 0.2, 9);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn grid_counts() {
        let g = grid(4, 5);
        assert_eq!(g.num_nodes, 20);
        // Horizontal: 4*(5-1)=16, vertical: (4-1)*5=15.
        assert_eq!(g.num_edges(), 31);
        g.validate().unwrap();
        let csr = CsrUndirected::from_edge_list(&g);
        // Corner degree 2, interior degree 4.
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(6), 4);
    }

    #[test]
    fn grid_density_below_two() {
        let g = grid(20, 20);
        let csr = CsrUndirected::from_edge_list(&g);
        assert!(csr.density() < 2.0);
        assert!(csr.density() > 1.5);
    }
}
