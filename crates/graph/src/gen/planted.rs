//! Planted dense subgraph generators.
//!
//! The quality experiments (Table 2, Figure 6.1) need graphs whose densest
//! subgraph is *known* or at least tightly lower-bounded. Planting a dense
//! community inside a sparse background gives exactly that: the planted set
//! certifies a density lower bound, and for strong plantings it is the
//! optimum.

use crate::bitset::NodeSet;
use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;

use super::random::{chung_lu, gnm, powerlaw_degree_sequence};

/// A generated graph together with the planted dense node set.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The full graph (background + planted community, shuffled labels).
    pub graph: EdgeList,
    /// The nodes of the planted community.
    pub planted: NodeSet,
    /// Density of the planted community (edges inside / size) — a lower
    /// bound for `ρ*(G)`.
    pub planted_density: f64,
}

/// Plants a `G(k, p_in)` community inside a `G(n, m)` background.
///
/// Nodes are relabeled with a random permutation so that algorithms cannot
/// exploit id locality.
pub fn planted_dense_subgraph(
    n: u32,
    background_edges: usize,
    k: u32,
    p_in: f64,
    seed: u64,
) -> PlantedGraph {
    assert!(k <= n, "planted size k = {k} exceeds n = {n}");
    let mut rng = SplitMix64::new(seed);
    let mut g = gnm(n, background_edges, rng.next_u64());

    // Plant: dense G(k, p_in) on nodes 0..k (before shuffling).
    let dense = super::random::gnp(k, p_in, rng.next_u64());
    let planted_edge_count = dense.num_edges();
    for &(u, v) in &dense.edges {
        g.push(u, v);
    }

    // Shuffle node labels.
    let mut perm: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut perm);
    g.relabel(&perm);
    g.canonicalize();

    let planted = NodeSet::from_iter(n as usize, (0..k).map(|i| perm[i as usize]));
    // Density from the planted edges alone (background edges inside the
    // community only add to it, so this remains a valid lower bound).
    let planted_density = planted_edge_count as f64 / k as f64;
    PlantedGraph {
        graph: g,
        planted,
        planted_density,
    }
}

/// Plants a clique of size `k` inside a `G(n, m)` background. The planted
/// density is exactly `(k-1)/2` from the clique edges.
pub fn planted_clique(n: u32, background_edges: usize, k: u32, seed: u64) -> PlantedGraph {
    planted_dense_subgraph(n, background_edges, k, 1.0, seed)
}

/// A power-law (Chung–Lu) background with several planted communities —
/// the stand-in shape for the paper's social-network datasets.
///
/// Returns the graph and the list of planted communities (each a
/// `NodeSet`), sorted by decreasing planted density.
pub fn powerlaw_with_communities(
    n: u32,
    alpha: f64,
    avg_degree: f64,
    max_degree: f64,
    communities: &[(u32, f64)],
    seed: u64,
) -> (EdgeList, Vec<(NodeSet, f64)>) {
    let mut rng = SplitMix64::new(seed);
    let w = powerlaw_degree_sequence(n, alpha, avg_degree, max_degree);
    let mut g = chung_lu(&w, rng.next_u64());

    // Choose disjoint random node sets for the communities.
    let total: u32 = communities.iter().map(|&(k, _)| k).sum();
    assert!(total <= n, "communities exceed n");
    let mut ids: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut ids);
    let mut cursor = 0usize;
    let mut planted = Vec::new();
    for &(k, p_in) in communities {
        let members = &ids[cursor..cursor + k as usize];
        cursor += k as usize;
        let dense = super::random::gnp(k, p_in, rng.next_u64());
        for &(a, b) in &dense.edges {
            g.push(members[a as usize], members[b as usize]);
        }
        let set = NodeSet::from_iter(n as usize, members.iter().copied());
        planted.push((set, dense.num_edges() as f64 / k as f64));
    }
    g.canonicalize();
    planted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("densities are finite"));
    (g, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrUndirected;

    #[test]
    fn planted_set_is_dense() {
        let pg = planted_dense_subgraph(500, 1000, 30, 0.8, 42);
        assert_eq!(pg.planted.len(), 30);
        let csr = CsrUndirected::from_edge_list(&pg.graph);
        let actual = csr.density_of(&pg.planted);
        // Actual density ≥ planted density (background can only add edges).
        assert!(
            actual + 1e-9 >= pg.planted_density,
            "actual {actual} < planted bound {}",
            pg.planted_density
        );
        // And clearly denser than the background average.
        assert!(actual > 2.0 * csr.density());
    }

    #[test]
    fn planted_clique_density() {
        let pg = planted_clique(200, 400, 20, 7);
        // Clique contributes exactly (k choose 2)/k = (k-1)/2.
        assert!((pg.planted_density - 9.5).abs() < 1e-9);
    }

    #[test]
    fn planted_is_deterministic() {
        let a = planted_dense_subgraph(100, 200, 10, 0.9, 3);
        let b = planted_dense_subgraph(100, 200, 10, 0.9, 3);
        assert_eq!(a.graph.edges, b.graph.edges);
        assert_eq!(a.planted.to_vec(), b.planted.to_vec());
    }

    #[test]
    fn communities_are_disjoint_and_dense() {
        let (g, comms) =
            powerlaw_with_communities(1000, 2.5, 6.0, 80.0, &[(40, 0.7), (25, 0.9)], 11);
        g.validate().unwrap();
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0].0.intersection_len(&comms[1].0), 0);
        let csr = CsrUndirected::from_edge_list(&g);
        for (set, bound) in &comms {
            let d = csr.density_of(set);
            assert!(
                d + 1e-9 >= *bound,
                "community density {d} below bound {bound}"
            );
        }
        // Sorted by decreasing density.
        assert!(comms[0].1 >= comms[1].1);
    }
}
