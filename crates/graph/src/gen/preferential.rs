//! Preferential-attachment generators.
//!
//! Two flavors:
//! * [`preferential_attachment`] — the standard Barabási–Albert process
//!   (each arriving node attaches to `m` existing nodes chosen with
//!   probability proportional to degree), a classic social-network model.
//! * [`weighted_preferential_attachment`] — the *deterministic weighted*
//!   variant from the proof of the paper's Lemma 6: each arriving node `u`
//!   connects to **every** existing node `v` with edge weight proportional
//!   to the current (weighted) degree of `v`. The resulting weighted degree
//!   sequence follows a power law with exponent `< 1`, which forces
//!   Algorithm 1 into `Ω(log n)` passes.

use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m + 1` nodes; every subsequent node attaches to `m` distinct existing
/// nodes, sampled proportionally to degree.
pub fn preferential_attachment(n: u32, m: u32, seed: u64) -> EdgeList {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need n > m");
    let mut rng = SplitMix64::new(seed);
    let mut g = EdgeList::new_undirected(n);
    // Repeated-endpoint list: sampling an element uniformly is sampling a
    // node proportionally to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n as usize) * (m as usize));
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.push(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets = Vec::with_capacity(m as usize);
    for u in (m + 1)..n {
        targets.clear();
        // Sample m distinct targets by degree; retry duplicates.
        let mut guard = 0;
        while targets.len() < m as usize {
            let t = *rng.choose(&endpoints);
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            assert!(guard < 10_000, "preferential attachment sampling stuck");
        }
        for &t in &targets {
            g.push(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    g
}

/// Deterministic weighted preferential attachment (Lemma 6 instance).
///
/// Node 0 starts with a self-weight of 1 (conceptually). When node `u ≥ 1`
/// arrives, it adds an edge to every existing node `v < u` with weight
/// `deg(v) / Σ_w deg(w)` scaled by `total_new_weight` — i.e. each arrival
/// distributes `total_new_weight` of edge mass proportionally to current
/// weighted degrees. The weighted degree sequence then follows a power law
/// with exponent `α < 1` as required by the lemma's proof.
///
/// The graph is complete, so it has `n(n-1)/2` weighted edges: keep `n`
/// modest (≤ a few thousand).
pub fn weighted_preferential_attachment(n: u32, total_new_weight: f64) -> EdgeList {
    assert!(n >= 2, "need at least two nodes");
    let mut g = EdgeList::new_undirected(n);
    let mut degree = vec![0.0f64; n as usize];
    // Seed: the first pair gets weight `total_new_weight`.
    g.push_weighted(0, 1, total_new_weight);
    degree[0] = total_new_weight;
    degree[1] = total_new_weight;
    let mut total: f64 = 2.0 * total_new_weight;
    for u in 2..n {
        let mut added = 0.0;
        for v in 0..u {
            let w = total_new_weight * degree[v as usize] / total;
            g.push_weighted(u, v, w);
            degree[v as usize] += w;
            added += w;
        }
        degree[u as usize] = added;
        total += 2.0 * added;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_edge_count() {
        let n = 500u32;
        let m = 3u32;
        let g = preferential_attachment(n, m, 5);
        g.validate().unwrap();
        // clique(m+1) + m per remaining node.
        let expected = (m * (m + 1) / 2 + (n - m - 1) * m) as usize;
        assert_eq!(g.num_edges(), expected);
        // Simple graph.
        let mut h = g.clone();
        h.canonicalize();
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn ba_has_hubs() {
        let g = preferential_attachment(2000, 2, 9);
        let deg = g.degrees_out();
        let max = deg.iter().cloned().fold(0.0, f64::max);
        let mean = deg.iter().sum::<f64>() / deg.len() as f64;
        assert!(max > 8.0 * mean, "expected a hub: max {max} vs mean {mean}");
    }

    #[test]
    fn weighted_pa_is_complete() {
        let n = 50u32;
        let g = weighted_preferential_attachment(n, 1.0);
        assert_eq!(g.num_edges(), (n as usize * (n as usize - 1)) / 2);
        assert!(g.is_weighted());
        g.validate().unwrap();
    }

    #[test]
    fn weighted_pa_degrees_follow_power_law() {
        let n = 400u32;
        let g = weighted_preferential_attachment(n, 1.0);
        let deg = g.degrees_in();
        // Early nodes accumulate much more weight than late nodes — the
        // hallmark of the power-law sequence in Lemma 6's proof.
        assert!(deg[0] > deg[(n - 1) as usize] * 5.0);
        // Degrees are non-increasing in arrival order (approximately: node
        // 0 and 1 are symmetric by construction).
        assert!((deg[0] - deg[1]).abs() / deg[0] < 0.05);
        let mid = deg[(n / 2) as usize];
        assert!(deg[0] > mid && mid > deg[(n - 1) as usize]);
    }

    #[test]
    fn weighted_pa_rich_get_richer_invariant() {
        // Total degree doubles exactly with the distributed weight.
        let g = weighted_preferential_attachment(20, 2.0);
        let total_deg: f64 = g.degrees_out().iter().sum();
        // Each of the 19 arrivals distributed weight 2.0 (counted twice in
        // the degree sum).
        assert!((total_deg - 2.0 * 2.0 * 19.0).abs() < 1e-9);
    }
}
