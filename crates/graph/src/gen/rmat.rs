//! R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos; SDM
//! 2004) — produces graphs with the skewed, community-rich structure of
//! real web and social graphs, and is the standard synthetic stand-in for
//! them (Graph500 uses it). We use it for the larger dataset stand-ins.

use crate::edgelist::{EdgeList, GraphKind};
use crate::rng::SplitMix64;

/// Quadrant probabilities of the R-MAT recursion. Must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left (both endpoints in the low half) — controls skew.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl RmatParams {
    /// The Graph500 parameterization (a=0.57, b=0.19, c=0.19, d=0.05) —
    /// heavily skewed, like real social graphs.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// A milder skew for moderate-tail graphs.
    pub fn mild() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and `num_edges` sampled
/// edges (before simplification). `kind` selects directed or undirected
/// output; undirected graphs are canonicalized (duplicates and self-loops
/// removed), so the final edge count is slightly below `num_edges`.
pub fn rmat(
    scale: u32,
    num_edges: usize,
    params: RmatParams,
    kind: GraphKind,
    seed: u64,
) -> EdgeList {
    assert!((1..=30).contains(&scale), "scale out of range");
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "R-MAT params must sum to 1 (got {sum})"
    );
    let n = 1u32 << scale;
    let mut rng = SplitMix64::new(seed);
    let mut g = match kind {
        GraphKind::Undirected => EdgeList::new_undirected(n),
        GraphKind::Directed => EdgeList::new_directed(n),
    };
    g.edges.reserve(num_edges);
    // Add a little per-level noise to the quadrant probabilities so the
    // degree distribution is smoother (standard practice).
    for _ in 0..num_edges {
        let mut u = 0u32;
        let mut v = 0u32;
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            // Perturb each quadrant by up to ±10%.
            let noise = 0.9 + 0.2 * rng.next_f64();
            let a = params.a * noise;
            let ab = a + params.b;
            let abc = ab + params.c;
            let total = abc + params.d;
            let r = r * total;
            if r < a {
                // (0,0)
            } else if r < ab {
                v |= 1;
            } else if r < abc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        g.edges.push((u, v));
    }
    g.canonicalize();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_basic_shape() {
        let g = rmat(10, 8000, RmatParams::graph500(), GraphKind::Undirected, 5);
        g.validate().unwrap();
        assert_eq!(g.num_nodes, 1024);
        // Simplification removes some duplicates but most edges survive.
        assert!(g.num_edges() > 4000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 8000);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 40_000, RmatParams::graph500(), GraphKind::Undirected, 5);
        let deg = g.degrees_out();
        let max = deg.iter().cloned().fold(0.0, f64::max);
        let mean = deg.iter().sum::<f64>() / deg.len() as f64;
        assert!(max > 10.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn rmat_directed() {
        let g = rmat(8, 2000, RmatParams::mild(), GraphKind::Directed, 5);
        assert_eq!(g.kind, GraphKind::Directed);
        g.validate().unwrap();
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(8, 1000, RmatParams::mild(), GraphKind::Undirected, 42);
        let b = rmat(8, 1000, RmatParams::mild(), GraphKind::Undirected, 42);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn rmat_rejects_bad_params() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
        };
        rmat(4, 10, p, GraphKind::Undirected, 1);
    }
}
