//! Deterministic building-block graphs with analytically known densest
//! subgraphs — the fixtures most unit tests are written against.

use crate::edgelist::EdgeList;

/// Complete graph `K_n`. Densest subgraph: the whole graph, with density
/// `(n-1)/2`.
pub fn clique(n: u32) -> EdgeList {
    let mut g = EdgeList::new_undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.push(u, v);
        }
    }
    g
}

/// Star `K_{1,n-1}` centered at node 0. Density of any subset containing
/// the center and `k` leaves is `k/(k+1) < 1`; maximum density approaches 1.
pub fn star(n: u32) -> EdgeList {
    assert!(n >= 1, "star needs at least one node");
    let mut g = EdgeList::new_undirected(n);
    for v in 1..n {
        g.push(0, v);
    }
    g
}

/// Cycle `C_n` (density of the whole graph = 1, and no subgraph is denser).
pub fn cycle(n: u32) -> EdgeList {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut g = EdgeList::new_undirected(n);
    for u in 0..n {
        g.push(u, (u + 1) % n);
    }
    g
}

/// Path `P_n` (density `(n-1)/n < 1`).
pub fn path(n: u32) -> EdgeList {
    let mut g = EdgeList::new_undirected(n);
    for u in 0..n.saturating_sub(1) {
        g.push(u, u + 1);
    }
    g
}

/// Circulant graph: node `u` is adjacent to `u ± 1, …, u ± k/2 (mod n)`,
/// producing a `k`-regular graph (`k` must be even and `< n`). Density of
/// the whole graph is `k/2`; regularity makes it the densest subgraph.
///
/// Used to build the regular layers of the paper's Lemma 5 instance.
pub fn circulant(n: u32, k: u32) -> EdgeList {
    assert!(
        k.is_multiple_of(2),
        "circulant degree must be even (got {k})"
    );
    assert!(k < n, "circulant degree {k} must be < n = {n}");
    let mut g = EdgeList::new_undirected(n);
    for u in 0..n {
        for d in 1..=(k / 2) {
            let v = (u + d) % n;
            g.push(u, v);
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` with left nodes `0..a` and right
/// nodes `a..a+b`. Undirected density of the whole graph: `ab/(a+b)`.
pub fn complete_bipartite(a: u32, b: u32) -> EdgeList {
    let mut g = EdgeList::new_undirected(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.push(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrUndirected;
    use crate::NodeSet;

    #[test]
    fn clique_counts() {
        let g = clique(6);
        assert_eq!(g.num_edges(), 15);
        let csr = CsrUndirected::from_edge_list(&g);
        assert!((csr.density() - 2.5).abs() < 1e-12);
        for u in 0..6 {
            assert_eq!(csr.degree(u), 5);
        }
    }

    #[test]
    fn star_counts() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        let csr = CsrUndirected::from_edge_list(&g);
        assert_eq!(csr.degree(0), 9);
        assert_eq!(csr.degree(5), 1);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        let csr = CsrUndirected::from_edge_list(&g);
        for u in 0..7 {
            assert_eq!(csr.degree(u), 2);
        }
        assert!((csr.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_counts() {
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(5).num_edges(), 4);
    }

    #[test]
    fn circulant_is_k_regular() {
        for (n, k) in [(10u32, 4u32), (9, 2), (16, 6)] {
            let g = circulant(n, k);
            let csr = CsrUndirected::from_edge_list(&g);
            for u in 0..n {
                assert_eq!(csr.degree(u), k as usize, "node {u} in C({n},{k})");
            }
            assert_eq!(g.num_edges(), (n * k / 2) as usize);
            // Simple graph: canonicalization must not remove anything.
            let mut h = g.clone();
            h.canonicalize();
            assert_eq!(h.num_edges(), g.num_edges());
        }
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes, 7);
        assert_eq!(g.num_edges(), 12);
        let csr = CsrUndirected::from_edge_list(&g);
        let left = NodeSet::from_iter(7, 0..3u32);
        assert_eq!(csr.induced_edge_count(&left), 0);
    }
}
