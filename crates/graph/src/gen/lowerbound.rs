//! The adversarial instances behind the paper's lower bounds (§4.1.1).
//!
//! * [`regular_union`] — Lemma 5: the disjoint union `G_1 ∪ … ∪ G_k` where
//!   `G_i` is a `2^{i-1}`-regular graph on `2^{2k+1-i}` nodes (so every
//!   layer has exactly `2^{2k-1}` edges). Algorithm 1 peels only
//!   `O(log k)` layers per pass, forcing `Ω(log n / log log n)` passes.
//! * [`weighted_powerlaw`] — Lemma 6: a weighted graph whose degree
//!   sequence follows a power law with exponent `α ∈ (0, 1)`; each pass of
//!   Algorithm 1 removes only a constant fraction of nodes, forcing
//!   `Ω(log n)` passes. (See also
//!   [`super::preferential::weighted_preferential_attachment`], the
//!   process the lemma's proof sketches.)
//! * [`disjointness_gadget`] — Lemma 7: the reduction from `q`-party
//!   set-disjointness. `n` disjoint gadgets of `q` nodes each; in a NO
//!   instance every gadget is a star (max density `1 - 1/q`), in a YES
//!   instance one gadget is a `q`-clique (density `(q-1)/2`). Any
//!   streaming algorithm distinguishing the two with approximation better
//!   than the gap certifies the communication bound.

use crate::bitset::NodeSet;
use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;

use super::basic::circulant;

/// Lemma 5 instance: union of `k` regular layers.
///
/// Layer `i ∈ {1..k}` is a `2^{i-1}`-regular circulant on `2^{2k+1-i}`
/// nodes. Total nodes: `Σ_i 2^{2k+1-i} = 2^{2k+1} - 2^{k+1} + …` ≈
/// `2^{2k}`; keep `k ≤ 10` (k = 10 → ~1M nodes, 5M edges).
///
/// Degree-1 layers need even node counts (perfect matchings), which the
/// power-of-two sizes guarantee.
pub fn regular_union(k: u32) -> EdgeList {
    assert!(
        (1..=12).contains(&k),
        "k must be in 1..=12 (graph has ~4^k nodes)"
    );
    let mut g = EdgeList::new_undirected(0);
    for i in 1..=k {
        let degree = 1u32 << (i - 1);
        let nodes = 1u64 << (2 * k + 1 - i);
        assert!(nodes <= u32::MAX as u64, "layer too large");
        let nodes = nodes as u32;
        let layer = if degree == 1 {
            // Perfect matching: 2j — 2j+1.
            let mut m = EdgeList::new_undirected(nodes);
            for j in 0..(nodes / 2) {
                m.push(2 * j, 2 * j + 1);
            }
            m
        } else {
            circulant(nodes, degree)
        };
        g.disjoint_union(&layer);
    }
    g
}

/// Lemma 6 instance: a weighted complete graph on `n` nodes whose weighted
/// degree sequence follows `deg(i) ∝ (i+1)^{-alpha}` with `alpha ∈ (0,1)`.
///
/// Edge `(i, j)` gets weight `d_i · d_j / Σ d` (Chung–Lu style), which
/// yields weighted degrees ≈ `d_i`. `n(n-1)/2` edges — keep `n ≤ a few
/// thousand`.
pub fn weighted_powerlaw(n: u32, alpha: f64, total_weight: f64) -> EdgeList {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
    assert!(n >= 2);
    let d: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum: f64 = d.iter().sum();
    let sum_sq: f64 = d.iter().map(|x| x * x).sum();
    // Σ_{i<j} d_i d_j = (sum² - Σ d_i²) / 2; scale so the total is exact.
    let scale = total_weight / ((sum * sum - sum_sq) / 2.0);
    let mut g = EdgeList::new_undirected(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = scale * d[i as usize] * d[j as usize];
            g.push_weighted(i, j, w);
        }
    }
    g
}

/// Lemma 7 gadget: `groups` disjoint gadgets of `q ≥ 2` nodes each.
///
/// * `yes_instance = false` (a NO set-disjointness instance): every gadget
///   is a star — maximum density `(q-1)/q = 1 - 1/q < 1`.
/// * `yes_instance = true`: one uniformly chosen gadget is a `q`-clique —
///   maximum density `(q-1)/2`.
///
/// Returns the graph and, for YES instances, the node set of the planted
/// clique.
pub fn disjointness_gadget(
    groups: u32,
    q: u32,
    yes_instance: bool,
    seed: u64,
) -> (EdgeList, Option<NodeSet>) {
    assert!(q >= 2, "gadgets need at least 2 nodes");
    assert!(groups >= 1);
    let n = groups as u64 * q as u64;
    assert!(n <= u32::MAX as u64);
    let n = n as u32;
    let mut rng = SplitMix64::new(seed);
    let special = if yes_instance {
        Some(rng.range_u32(groups))
    } else {
        None
    };
    let mut g = EdgeList::new_undirected(n);
    let mut planted = None;
    for group in 0..groups {
        let base = group * q;
        if Some(group) == special {
            for a in 0..q {
                for b in (a + 1)..q {
                    g.push(base + a, base + b);
                }
            }
            planted = Some(NodeSet::from_iter(n as usize, base..base + q));
        } else {
            for leaf in 1..q {
                g.push(base, base + leaf);
            }
        }
    }
    (g, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrUndirected;

    #[test]
    fn regular_union_layer_structure() {
        let k = 4u32;
        let g = regular_union(k);
        // Total nodes: sum over i of 2^{2k+1-i}.
        let expected_nodes: u64 = (1..=k).map(|i| 1u64 << (2 * k + 1 - i)).sum();
        assert_eq!(g.num_nodes as u64, expected_nodes);
        // Every layer contributes exactly 2^{2k-1} edges.
        let expected_edges = (k as u64) * (1u64 << (2 * k - 1));
        assert_eq!(g.num_edges() as u64, expected_edges);
        g.validate().unwrap();
    }

    #[test]
    fn regular_union_degrees() {
        let k = 3u32;
        let g = regular_union(k);
        let deg = g.degrees_out();
        // First layer: 2^{2k+1-1} = 2^6 = 64 nodes of degree 1.
        let ones = deg.iter().filter(|&&d| d == 1.0).count();
        assert_eq!(ones, 64);
        // Last layer: 2^{k+1} = 16 nodes of degree 2^{k-1} = 4.
        let top = deg.iter().filter(|&&d| d == 4.0).count();
        assert_eq!(top, 16);
    }

    #[test]
    fn regular_union_densest_is_top_layer() {
        // The densest layer is G_k with density 2^{k-2}.
        let k = 4u32;
        let g = regular_union(k);
        let csr = CsrUndirected::from_edge_list(&g);
        // The last 2^{k+1} = 32 nodes form the top layer.
        let n = g.num_nodes;
        let top = NodeSet::from_iter(n as usize, (n - 32)..n);
        let d = csr.density_of(&top);
        assert!((d - 4.0).abs() < 1e-9, "top layer density {d}");
        assert!(d > csr.density());
    }

    #[test]
    fn weighted_powerlaw_degree_law() {
        let n = 200u32;
        let alpha = 0.5;
        let g = weighted_powerlaw(n, alpha, 1000.0);
        assert!((g.total_weight() - 1000.0).abs() < 1e-6);
        let deg = g.degrees_out();
        // deg(i)/deg(j) ≈ ((i+1)/(j+1))^{-alpha}.
        let ratio = deg[0] / deg[99];
        let expected = (100.0f64).powf(alpha);
        assert!(
            (ratio / expected - 1.0).abs() < 0.15,
            "ratio {ratio} vs expected {expected}"
        );
    }

    #[test]
    fn disjointness_no_instance_is_sparse() {
        let (g, planted) = disjointness_gadget(50, 8, false, 3);
        assert!(planted.is_none());
        assert_eq!(g.num_edges(), 50 * 7);
        let csr = CsrUndirected::from_edge_list(&g);
        // Max density of a star forest is < 1.
        assert!(csr.density() < 1.0);
    }

    #[test]
    fn disjointness_yes_instance_has_clique() {
        let (g, planted) = disjointness_gadget(50, 8, true, 3);
        let planted = planted.unwrap();
        assert_eq!(planted.len(), 8);
        let csr = CsrUndirected::from_edge_list(&g);
        let d = csr.density_of(&planted);
        assert!((d - 3.5).abs() < 1e-9, "clique density {d}");
        assert_eq!(g.num_edges(), 49 * 7 + 28);
    }
}
