//! Synthetic graph generators.
//!
//! Three families:
//!
//! * **Deterministic building blocks** ([`basic`]) — cliques, stars,
//!   cycles, circulant regular graphs, complete bipartite graphs. Used as
//!   test fixtures with analytically known densest subgraphs.
//! * **Random models** ([`random`], [`planted`], [`preferential`],
//!   [`rmat()`], [`directed`]) — Erdős–Rényi, Chung–Lu power-law, planted
//!   dense subgraphs, preferential attachment, RMAT, and skewed directed
//!   graphs. These are the stand-ins for the paper's proprietary social
//!   networks (see DESIGN.md §4).
//! * **Adversarial instances** ([`lowerbound`]) — the constructions behind
//!   the paper's Lemma 5 (union of regular graphs forcing
//!   `Ω(log n / log log n)` passes), Lemma 6 (weighted power-law forcing
//!   `Ω(log n)` passes), and Lemma 7 (set-disjointness gadget behind the
//!   space lower bound).
//!
//! All generators take an explicit `u64` seed and are fully deterministic.

pub mod basic;
pub mod directed;
pub mod lowerbound;
pub mod planted;
pub mod preferential;
pub mod random;
pub mod rmat;
pub mod structured;

pub use basic::{circulant, clique, complete_bipartite, cycle, path, star};
pub use directed::{directed_gnp, directed_planted, skewed_celebrity};
pub use lowerbound::{disjointness_gadget, regular_union, weighted_powerlaw};
pub use planted::{
    planted_clique, planted_dense_subgraph, powerlaw_with_communities, PlantedGraph,
};
pub use preferential::{preferential_attachment, weighted_preferential_attachment};
pub use random::{chung_lu, chung_lu_powerlaw, gnm, gnp, powerlaw_degree_sequence, random_regular};
pub use rmat::{rmat, RmatParams};
pub use structured::{grid, watts_strogatz};
