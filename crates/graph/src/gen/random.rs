//! Random graph models: Erdős–Rényi (`G(n,p)`, `G(n,m)`) and the Chung–Lu
//! model with power-law expected degrees.
//!
//! Chung–Lu is the workhorse behind the paper-dataset stand-ins: social
//! networks have heavy-tailed degree sequences, and §6.3 of the paper
//! explicitly attributes the small observed pass counts to that heavy tail.

use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;
use rustc_hash::FxHashSet;

/// Erdős–Rényi `G(n, p)`: each of the `n(n-2)/2` pairs is an edge
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is proportional to the number of
/// generated edges rather than to `n²`.
pub fn gnp(n: u32, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut g = EdgeList::new_undirected(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    let mut rng = SplitMix64::new(seed);
    if p >= 1.0 {
        return super::basic::clique(n);
    }
    // Geometric skipping over the lexicographic pair order (Batagelj–Brandes).
    let log_q = (1.0 - p).ln();
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let r = rng.next_f64();
        // Number of skipped pairs ~ Geometric(p).
        let skip = ((1.0 - r).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx, n);
        g.push(u, v);
        idx += 1;
    }
    g
}

/// Maps a lexicographic pair index to `(u, v)` with `u < v < n`.
fn pair_from_index(idx: u64, n: u32) -> (u32, u32) {
    // Find u such that the pairs starting with u cover idx.
    // Pairs with first element u: (n-1-u), cumulative: u*n - u(u+1)/2.
    let nf = n as f64;
    // Initial guess from the quadratic formula, then fix up.
    let mut u = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * idx as f64).sqrt()) / 2.0)
        .floor()
        .max(0.0) as u64;
    let cum = |u: u64| u * n as u64 - u * (u + 1) / 2;
    while cum(u + 1) <= idx {
        u += 1;
    }
    while cum(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - cum(u));
    (u as u32, v as u32)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly among
/// all pairs. Panics if `m` exceeds the number of pairs.
pub fn gnm(n: u32, m: usize, seed: u64) -> EdgeList {
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    assert!(
        m as u64 <= total_pairs,
        "m = {m} exceeds the {total_pairs} available pairs"
    );
    let mut rng = SplitMix64::new(seed);
    let mut g = EdgeList::new_undirected(n);
    // For sparse requests, rejection sampling over pair indices is fast;
    // Floyd's algorithm guarantees termination regardless of density.
    let idxs = rng.sample_distinct(total_pairs, m as u64);
    for idx in idxs {
        let (u, v) = pair_from_index(idx, n);
        g.push(u, v);
    }
    g
}

/// A power-law degree sequence: `deg(i) ∝ (i+1)^{-1/(alpha-1)}`, scaled so
/// the mean is `avg_degree`, clamped to `[1, max_degree]`.
///
/// `alpha` is the exponent of the degree *distribution* `P(d) ∝ d^{-alpha}`;
/// social networks typically have `alpha ∈ [2, 3]`.
pub fn powerlaw_degree_sequence(n: u32, alpha: f64, avg_degree: f64, max_degree: f64) -> Vec<f64> {
    assert!(alpha > 1.0, "alpha must exceed 1");
    let gamma = 1.0 / (alpha - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    for x in &mut w {
        *x = (*x * scale).clamp(1.0, max_degree);
    }
    w
}

/// Chung–Lu random graph: pair `(u, v)` is an edge with probability
/// `min(1, w_u w_v / W)` where `W = Σ w`. The expected degree of `u` is
/// ≈ `w_u` when no product exceeds `W`.
///
/// Implemented with the Miller–Hagberg efficient sampler: nodes sorted by
/// weight descending, geometric skipping within each row, O(n + m) time.
pub fn chung_lu(weights: &[f64], seed: u64) -> EdgeList {
    let n = weights.len() as u32;
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .expect("weights must not be NaN")
    });
    let sorted: Vec<f64> = order.iter().map(|&i| weights[i as usize]).collect();
    let total: f64 = sorted.iter().sum();
    let mut rng = SplitMix64::new(seed);
    let mut g = EdgeList::new_undirected(n);
    if n < 2 || total <= 0.0 {
        return g;
    }
    for i in 0..(n as usize - 1) {
        let wi = sorted[i];
        if wi <= 0.0 {
            break;
        }
        let mut j = i + 1;
        // Probability cap for this row.
        let mut p = (wi * sorted[j] / total).min(1.0);
        while j < n as usize && p > 0.0 {
            if p < 1.0 {
                // Skip ~ Geometric(p).
                let r = rng.next_f64();
                let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n as usize {
                break;
            }
            let q = (wi * sorted[j] / total).min(1.0);
            // Accept with probability q/p (q <= p since sorted descending).
            if rng.next_f64() < q / p {
                g.push(order[i], order[j]);
            }
            p = q;
            j += 1;
        }
    }
    g
}

/// Convenience: Chung–Lu graph with a power-law degree sequence.
pub fn chung_lu_powerlaw(
    n: u32,
    alpha: f64,
    avg_degree: f64,
    max_degree: f64,
    seed: u64,
) -> EdgeList {
    let w = powerlaw_degree_sequence(n, alpha, avg_degree, max_degree);
    chung_lu(&w, seed)
}

/// Random `k`-regular-ish graph via a permutation-based pairing model:
/// repeatedly matches random stubs, discarding self-loops and duplicates
/// (so degrees can fall slightly below `k`). `n * k` must be even.
pub fn random_regular(n: u32, k: u32, seed: u64) -> EdgeList {
    assert!((n as u64 * k as u64).is_multiple_of(2), "n*k must be even");
    assert!(k < n, "k must be < n");
    let mut rng = SplitMix64::new(seed);
    let mut stubs: Vec<u32> = (0..n)
        .flat_map(|u| std::iter::repeat_n(u, k as usize))
        .collect();
    let mut g = EdgeList::new_undirected(n);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    // A few rounds of shuffling and pairing; leftovers are dropped.
    for _ in 0..3 {
        rng.shuffle(&mut stubs);
        let mut leftover = Vec::new();
        for pair in stubs.chunks(2) {
            if pair.len() < 2 {
                leftover.extend_from_slice(pair);
                continue;
            }
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if a == b || seen.contains(&(a, b)) {
                leftover.extend_from_slice(pair);
            } else {
                seen.insert((a, b));
                g.push(a, b);
            }
        }
        stubs = leftover;
        if stubs.len() < 2 {
            break;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_bijection() {
        let n = 37u32;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(idx, n), (u, v), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400u32;
        let p = 0.05;
        let g = gnp(n, p, 99);
        let expected = (n as f64) * (n as f64 - 1.0) / 2.0 * p;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "expected ≈{expected}, got {got}"
        );
        // No duplicates or self loops.
        let mut h = g.clone();
        h.canonicalize();
        assert_eq!(h.num_edges(), g.num_edges());
        g.validate().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn gnp_deterministic() {
        let a = gnp(100, 0.1, 7);
        let b = gnp(100, 0.1, 7);
        assert_eq!(a.edges, b.edges);
        let c = gnp(100, 0.1, 8);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn gnm_exact_count_distinct() {
        let g = gnm(50, 300, 5);
        assert_eq!(g.num_edges(), 300);
        let mut h = g.clone();
        h.canonicalize();
        assert_eq!(h.num_edges(), 300, "gnm must produce distinct edges");
        g.validate().unwrap();
    }

    #[test]
    fn gnm_full() {
        let g = gnm(10, 45, 3);
        assert_eq!(g.num_edges(), 45);
        let mut h = g;
        h.canonicalize();
        assert_eq!(h.num_edges(), 45);
    }

    #[test]
    fn powerlaw_sequence_properties() {
        let w = powerlaw_degree_sequence(1000, 2.5, 8.0, 200.0);
        assert_eq!(w.len(), 1000);
        assert!(w.iter().all(|&x| (1.0..=200.0).contains(&x)));
        // Monotone non-increasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        // Skewed: top node much larger than median.
        assert!(w[0] > 4.0 * w[500]);
    }

    #[test]
    fn chung_lu_mean_degree() {
        let n = 2000u32;
        let w = powerlaw_degree_sequence(n, 2.3, 10.0, 100.0);
        let g = chung_lu(&w, 11);
        g.validate().unwrap();
        let target: f64 = w.iter().sum::<f64>() / 2.0;
        let got = g.num_edges() as f64;
        // Within 15% of the expected edge mass (clamping shifts it a bit).
        assert!(
            (got - target).abs() < 0.15 * target,
            "expected ≈{target}, got {got}"
        );
        // Simple graph.
        let mut h = g.clone();
        h.canonicalize();
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn chung_lu_degrees_track_weights() {
        let n = 3000u32;
        let w = powerlaw_degree_sequence(n, 2.5, 12.0, 300.0);
        let g = chung_lu(&w, 21);
        let deg = g.degrees_out();
        // The heaviest node should get a much larger degree than average.
        assert!(deg[0] > 3.0 * 12.0, "hub degree {}", deg[0]);
    }

    #[test]
    fn random_regular_close_to_regular() {
        let g = random_regular(100, 6, 17);
        g.validate().unwrap();
        let deg = g.degrees_out();
        let exact = deg.iter().filter(|&&d| d == 6.0).count();
        assert!(exact > 80, "only {exact} of 100 nodes reached degree 6");
        assert!(deg.iter().all(|&d| d <= 6.0));
        let mut h = g.clone();
        h.canonicalize();
        assert_eq!(h.num_edges(), g.num_edges());
    }
}
