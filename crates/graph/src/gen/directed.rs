//! Directed random graph generators: directed Erdős–Rényi, planted dense
//! `(S, T)` pairs for the directed densest-subgraph experiments, and the
//! skewed "celebrity" model mimicking Twitter's follower graph (the paper
//! notes ~600 users followed by >30M others and attributes the shape of
//! Figure 6.6 to that skew).

use crate::bitset::NodeSet;
use crate::edgelist::EdgeList;
use crate::rng::SplitMix64;

/// Directed `G(n, p)`: every ordered pair `(u, v)`, `u ≠ v`, is an arc with
/// probability `p`.
pub fn directed_gnp(n: u32, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SplitMix64::new(seed);
    let mut g = EdgeList::new_directed(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    let total = n as u64 * (n as u64 - 1);
    if p >= 1.0 {
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.push(u, v);
                }
            }
        }
        return g;
    }
    let log_q = (1.0 - p).ln();
    let mut idx = 0u64;
    loop {
        let r = rng.next_f64();
        let skip = ((1.0 - r).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        // Ordered pair index -> (u, v) skipping the diagonal.
        let u = (idx / (n as u64 - 1)) as u32;
        let mut v = (idx % (n as u64 - 1)) as u32;
        if v >= u {
            v += 1;
        }
        g.push(u, v);
        idx += 1;
    }
    g
}

/// A directed graph with a planted dense `(S*, T*)` pair: background
/// directed `G(n, p_bg)` plus arcs from a random `S*` (size `s`) to a
/// random `T*` (size `t`) with probability `p_in`.
///
/// Returns `(graph, S*, T*)`. The planted pair certifies a directed
/// density lower bound of about `p_in · sqrt(s · t)`.
pub fn directed_planted(
    n: u32,
    p_bg: f64,
    s: u32,
    t: u32,
    p_in: f64,
    seed: u64,
) -> (EdgeList, NodeSet, NodeSet) {
    assert!(s <= n && t <= n);
    let mut rng = SplitMix64::new(seed);
    let mut g = directed_gnp(n, p_bg, rng.next_u64());
    let mut ids: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut ids);
    // S* and T* may overlap in the paper's definition; we keep them
    // disjoint for a clean certificate.
    let s_nodes = &ids[0..s as usize];
    let t_nodes = &ids[s as usize..(s + t).min(n) as usize];
    for &u in s_nodes {
        for &v in t_nodes {
            if rng.bernoulli(p_in) {
                g.push(u, v);
            }
        }
    }
    g.canonicalize();
    (
        g,
        NodeSet::from_iter(n as usize, s_nodes.iter().copied()),
        NodeSet::from_iter(n as usize, t_nodes.iter().copied()),
    )
}

/// The "celebrity" model: `celebs` nodes each followed by a
/// `follow_fraction` of the remaining population, plus a sparse directed
/// background. The optimal directed pair is highly asymmetric
/// (`S` = many followers, `T` = few celebrities), so the best `c = |S|/|T|`
/// is far from 1 — reproducing the qualitative shape of Figure 6.6.
pub fn skewed_celebrity(
    n: u32,
    celebs: u32,
    follow_fraction: f64,
    background_arcs: usize,
    seed: u64,
) -> EdgeList {
    assert!(celebs < n);
    let mut rng = SplitMix64::new(seed);
    let mut g = EdgeList::new_directed(n);
    // Celebrities occupy ids 0..celebs; everyone else follows each with
    // probability follow_fraction.
    for u in celebs..n {
        for c in 0..celebs {
            if rng.bernoulli(follow_fraction) {
                g.push(u, c);
            }
        }
    }
    // Sparse random background among everyone.
    for _ in 0..background_arcs {
        let u = rng.range_u32(n);
        let v = rng.range_u32(n);
        if u != v {
            g.push(u, v);
        }
    }
    g.canonicalize();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrDirected;

    #[test]
    fn directed_gnp_counts() {
        let n = 300u32;
        let p = 0.02;
        let g = directed_gnp(n, p, 3);
        g.validate().unwrap();
        let expected = n as f64 * (n as f64 - 1.0) * p;
        let got = g.num_edges() as f64;
        assert!((got - expected).abs() < 5.0 * expected.sqrt() + 10.0);
        // No self loops.
        assert!(g.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn directed_gnp_extremes() {
        assert_eq!(directed_gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(directed_gnp(10, 1.0, 1).num_edges(), 90);
    }

    #[test]
    fn planted_pair_is_dense() {
        let (g, s, t) = directed_planted(400, 0.005, 25, 15, 0.8, 7);
        let csr = CsrDirected::from_edge_list(&g);
        let d = csr.density_of(&s, &t);
        let bound = 0.6 * ((25.0f64 * 15.0).sqrt() * 0.8);
        assert!(d > bound, "planted density {d} too low");
        assert_eq!(s.intersection_len(&t), 0);
    }

    #[test]
    fn celebrity_in_degrees_are_skewed() {
        let g = skewed_celebrity(2000, 5, 0.5, 1000, 13);
        let din = g.degrees_in();
        let celeb_min = (0..5).map(|i| din[i]).fold(f64::INFINITY, f64::min);
        let rest_max = (5..2000).map(|i| din[i]).fold(0.0, f64::max);
        assert!(
            celeb_min > 5.0 * rest_max.max(1.0),
            "celeb min {celeb_min} vs rest max {rest_max}"
        );
    }
}
