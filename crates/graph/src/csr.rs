//! Immutable compressed-sparse-row (CSR) graph snapshots.
//!
//! The streaming algorithms never need random access to adjacency — they
//! re-read the edge stream — but the in-memory "materialized" variants, the
//! exact flow solver, and Charikar's peeling baseline all want fast
//! neighborhood iteration. CSR gives cache-friendly `&[u32]` neighbor
//! slices with one `Vec` per graph.

use crate::bitset::NodeSet;
use crate::edgelist::{EdgeList, GraphKind};
use crate::NodeId;

/// Undirected graph in CSR form. Every undirected edge `(u, v)` appears in
/// both `neighbors(u)` and `neighbors(v)`.
#[derive(Clone, Debug)]
pub struct CsrUndirected {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    /// Parallel to `neighbors`; `None` for unweighted graphs.
    weights: Option<Vec<f64>>,
    num_edges: usize,
    total_weight: f64,
}

impl CsrUndirected {
    /// Builds a CSR snapshot from an undirected edge list.
    ///
    /// Panics if the list is directed or contains out-of-range endpoints
    /// (call [`EdgeList::validate`] first for error handling).
    pub fn from_edge_list(list: &EdgeList) -> Self {
        assert_eq!(
            list.kind,
            GraphKind::Undirected,
            "CsrUndirected requires an undirected edge list"
        );
        let n = list.num_nodes as usize;
        let mut counts = vec![0usize; n + 1];
        for &(u, v) in &list.edges {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; list.edges.len() * 2];
        let weighted = list.is_weighted();
        let mut weights = if weighted {
            vec![0.0; list.edges.len() * 2]
        } else {
            Vec::new()
        };
        let mut total_weight = 0.0;
        for (i, &(u, v)) in list.edges.iter().enumerate() {
            let w = list.weight(i);
            total_weight += w;
            let cu = cursor[u as usize];
            neighbors[cu] = v;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neighbors[cv] = u;
            cursor[v as usize] += 1;
            if weighted {
                weights[cu] = w;
                weights[cv] = w;
            }
        }
        CsrUndirected {
            offsets,
            neighbors,
            weights: if weighted { Some(weights) } else { None },
            num_edges: list.edges.len(),
            total_weight,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of edge weights (`num_edges` when unweighted).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// `true` if edges carry weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Iterates `(neighbor, weight)` pairs of `u` (weight 1 if unweighted).
    pub fn neighbors_weighted(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        (lo..hi).map(move |i| {
            (
                self.neighbors[i],
                self.weights.as_ref().map_or(1.0, |w| w[i]),
            )
        })
    }

    /// Degree of `u` (number of incident edges, counting multiplicity).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Weighted degree of `u` (sum of incident edge weights).
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        match &self.weights {
            None => self.degree(u) as f64,
            Some(w) => w[self.offsets[u as usize]..self.offsets[u as usize + 1]]
                .iter()
                .sum(),
        }
    }

    /// Total weight of edges with **both** endpoints in `set`.
    pub fn induced_edge_weight(&self, set: &NodeSet) -> f64 {
        let mut twice = 0.0;
        for u in set.iter() {
            for (v, w) in self.neighbors_weighted(u) {
                if set.contains(v) {
                    twice += w;
                }
            }
        }
        twice / 2.0
    }

    /// Number of edges with both endpoints in `set`.
    pub fn induced_edge_count(&self, set: &NodeSet) -> usize {
        let mut twice = 0usize;
        for u in set.iter() {
            for &v in self.neighbors(u) {
                if set.contains(v) {
                    twice += 1;
                }
            }
        }
        twice / 2
    }

    /// Induced degree `deg_S(u)`: weight of edges from `u` into `set`.
    pub fn induced_degree(&self, u: NodeId, set: &NodeSet) -> f64 {
        self.neighbors_weighted(u)
            .filter(|&(v, _)| set.contains(v))
            .map(|(_, w)| w)
            .sum()
    }

    /// Density `ρ(S) = w(E(S)) / |S|` of the induced subgraph (0 for ∅).
    pub fn density_of(&self, set: &NodeSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        self.induced_edge_weight(set) / set.len() as f64
    }

    /// Density of the whole graph.
    pub fn density(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.total_weight / self.num_nodes() as f64
    }

    /// Extracts the subgraph induced by `set` as a new [`EdgeList`] whose
    /// nodes are relabeled to `0..set.len()`. Returns the list and the
    /// mapping `new_id -> old_id`.
    pub fn induced_subgraph(&self, set: &NodeSet) -> (EdgeList, Vec<NodeId>) {
        let old_ids: Vec<NodeId> = set.to_vec();
        let mut new_of_old = vec![u32::MAX; self.num_nodes()];
        for (new, &old) in old_ids.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        let mut out = EdgeList::new_undirected(old_ids.len() as u32);
        let weighted = self.is_weighted();
        for &u in &old_ids {
            for (v, w) in self.neighbors_weighted(u) {
                if u < v && set.contains(v) {
                    let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
                    if weighted {
                        out.push_weighted(nu, nv, w);
                    } else {
                        out.push(nu, nv);
                    }
                }
            }
        }
        (out, old_ids)
    }
}

/// Directed graph in CSR form with both out- and in-adjacency.
#[derive(Clone, Debug)]
pub struct CsrDirected {
    out_offsets: Vec<usize>,
    out_neighbors: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_neighbors: Vec<NodeId>,
    num_edges: usize,
}

impl CsrDirected {
    /// Builds a directed CSR snapshot from a directed edge list.
    ///
    /// Weights are not supported for directed graphs — the paper's directed
    /// density (Definition 2) is stated for unweighted graphs.
    pub fn from_edge_list(list: &EdgeList) -> Self {
        assert_eq!(
            list.kind,
            GraphKind::Directed,
            "CsrDirected requires a directed edge list"
        );
        assert!(
            !list.is_weighted(),
            "weighted directed graphs are not supported"
        );
        let n = list.num_nodes as usize;
        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        for &(u, v) in &list.edges {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        let mut out_neighbors = vec![0u32; list.edges.len()];
        let mut in_neighbors = vec![0u32; list.edges.len()];
        for &(u, v) in &list.edges {
            out_neighbors[out_cursor[u as usize]] = v;
            out_cursor[u as usize] += 1;
            in_neighbors[in_cursor[v as usize]] = u;
            in_cursor[v as usize] += 1;
        }
        CsrDirected {
            out_offsets,
            out_neighbors,
            in_offsets,
            in_neighbors,
            num_edges: list.edges.len(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Out-neighbors of `u` (targets of arcs `u -> ·`).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_neighbors[self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]]
    }

    /// In-neighbors of `v` (sources of arcs `· -> v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.in_neighbors[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// `|E(S, T)|` — number of arcs from `S` into `T`.
    pub fn edges_between(&self, s: &NodeSet, t: &NodeSet) -> usize {
        // Iterate from the smaller side for speed.
        if s.len() <= t.len() {
            s.iter()
                .map(|u| {
                    self.out_neighbors(u)
                        .iter()
                        .filter(|&&v| t.contains(v))
                        .count()
                })
                .sum()
        } else {
            t.iter()
                .map(|v| {
                    self.in_neighbors(v)
                        .iter()
                        .filter(|&&u| s.contains(u))
                        .count()
                })
                .sum()
        }
    }

    /// Directed density `ρ(S, T) = |E(S,T)| / sqrt(|S||T|)` (0 if either is ∅).
    pub fn density_of(&self, s: &NodeSet, t: &NodeSet) -> f64 {
        if s.is_empty() || t.is_empty() {
            return 0.0;
        }
        self.edges_between(s, t) as f64 / ((s.len() as f64) * (t.len() as f64)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> EdgeList {
        // 0-1, 1-2, 0-2 triangle; 3 attached to 0.
        let mut g = EdgeList::new_undirected(4);
        g.push(0, 1);
        g.push(1, 2);
        g.push(0, 2);
        g.push(0, 3);
        g
    }

    #[test]
    fn csr_undirected_basics() {
        let g = CsrUndirected::from_edge_list(&triangle_plus_pendant());
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3]);
        assert_eq!(g.total_weight(), 4.0);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_quantities() {
        let g = CsrUndirected::from_edge_list(&triangle_plus_pendant());
        let tri = NodeSet::from_iter(4, [0u32, 1, 2]);
        assert_eq!(g.induced_edge_count(&tri), 3);
        assert!((g.density_of(&tri) - 1.0).abs() < 1e-12);
        assert_eq!(g.induced_degree(0, &tri), 2.0);
        let all = NodeSet::full(4);
        assert_eq!(g.induced_edge_count(&all), 4);
        let empty = NodeSet::empty(4);
        assert_eq!(g.density_of(&empty), 0.0);
    }

    #[test]
    fn weighted_csr() {
        let mut list = EdgeList::new_undirected(3);
        list.push_weighted(0, 1, 2.0);
        list.push_weighted(1, 2, 3.0);
        let g = CsrUndirected::from_edge_list(&list);
        assert!(g.is_weighted());
        assert_eq!(g.weighted_degree(1), 5.0);
        assert_eq!(g.weighted_degree(0), 2.0);
        let s = NodeSet::from_iter(3, [0u32, 1]);
        assert_eq!(g.induced_edge_weight(&s), 2.0);
        assert!((g.density_of(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = CsrUndirected::from_edge_list(&triangle_plus_pendant());
        let set = NodeSet::from_iter(4, [1u32, 2, 3]);
        let (sub, old_ids) = g.induced_subgraph(&set);
        assert_eq!(old_ids, vec![1, 2, 3]);
        assert_eq!(sub.num_nodes, 3);
        // Only edge 1-2 survives (3 is only attached to 0).
        assert_eq!(sub.edges, vec![(0, 1)]);
    }

    #[test]
    fn csr_directed_basics() {
        let mut list = EdgeList::new_directed(4);
        list.push(0, 1);
        list.push(0, 2);
        list.push(1, 2);
        list.push(3, 0);
        let g = CsrDirected::from_edge_list(&list);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
    }

    #[test]
    fn directed_density() {
        let mut list = EdgeList::new_directed(4);
        // Complete bipartite S={0,1} -> T={2,3}.
        for u in 0..2 {
            for v in 2..4 {
                list.push(u, v);
            }
        }
        let g = CsrDirected::from_edge_list(&list);
        let s = NodeSet::from_iter(4, [0u32, 1]);
        let t = NodeSet::from_iter(4, [2u32, 3]);
        assert_eq!(g.edges_between(&s, &t), 4);
        assert!((g.density_of(&s, &t) - 2.0).abs() < 1e-12);
        // Swapped direction has no arcs.
        assert_eq!(g.edges_between(&t, &s), 0);
    }

    #[test]
    fn edges_between_overlapping_sets() {
        let mut list = EdgeList::new_directed(3);
        list.push(0, 1);
        list.push(1, 0);
        list.push(1, 2);
        let g = CsrDirected::from_edge_list(&list);
        let st = NodeSet::from_iter(3, [0u32, 1]);
        // S and T may overlap (paper allows S, T not disjoint).
        assert_eq!(g.edges_between(&st, &st), 2);
    }
}
