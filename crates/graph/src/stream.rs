//! The multi-pass semi-streaming model.
//!
//! In the semi-streaming model ([18] in the paper) the node set is known in
//! advance and fits in RAM, while the edges can only be read sequentially,
//! one pass at a time. An [`EdgeStream`] encapsulates exactly that: the
//! algorithm calls [`EdgeStream::for_each_edge`] once per pass and the
//! stream hands every edge to the callback in storage order. The stream
//! counts passes so experiments can report the paper's headline metric.
//!
//! Implementations:
//! * [`MemoryStream`] — edges held in RAM (fast experiments).
//! * [`TextFileStream`] — re-reads a SNAP-style text edge list from disk on
//!   every pass (true out-of-core streaming).
//! * [`BinaryFileStream`] — re-reads the compact binary format of
//!   [`crate::io`].

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

use crate::edgelist::EdgeList;
use crate::{GraphError, Result};

/// A multi-pass stream of (optionally weighted) edges.
///
/// For undirected graphs an edge `(u, v, w)` is an unordered pair reported
/// once in arbitrary orientation; for directed graphs it is the arc
/// `u -> v`. Whether the stream is to be interpreted as directed is up to
/// the consuming algorithm (matching the paper, where the input format is
/// the same and only the algorithm differs).
pub trait EdgeStream {
    /// Number of nodes `n`; node ids in the stream are `< n`.
    fn num_nodes(&self) -> u32;

    /// Makes one full pass over the edges, invoking `f(u, v, w)` per edge.
    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64));

    /// Number of passes made so far.
    fn passes(&self) -> u64;
}

/// In-memory edge stream over an [`EdgeList`].
#[derive(Clone, Debug)]
pub struct MemoryStream {
    list: EdgeList,
    passes: u64,
}

impl MemoryStream {
    /// Wraps an edge list. The list is moved; clone it if still needed.
    pub fn new(list: EdgeList) -> Self {
        MemoryStream { list, passes: 0 }
    }

    /// Read-only access to the underlying list.
    pub fn edge_list(&self) -> &EdgeList {
        &self.list
    }

    /// Consumes the stream, returning the underlying list.
    pub fn into_edge_list(self) -> EdgeList {
        self.list
    }
}

impl EdgeStream for MemoryStream {
    fn num_nodes(&self) -> u32 {
        self.list.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        self.passes += 1;
        match &self.list.weights {
            None => {
                for &(u, v) in &self.list.edges {
                    f(u, v, 1.0);
                }
            }
            Some(ws) => {
                for (&(u, v), &w) in self.list.edges.iter().zip(ws) {
                    f(u, v, w);
                }
            }
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }
}

/// Streams a SNAP-style whitespace-separated text edge list from disk,
/// re-opening the file on every pass.
///
/// Lines starting with `#` are comments; each data line is `u v` or
/// `u v w`. Malformed lines abort the pass with a panic carrying the line
/// number — a streaming pass has no way to return mid-iteration errors, so
/// the file is validated once at construction instead.
pub struct TextFileStream {
    path: PathBuf,
    num_nodes: u32,
    passes: u64,
}

impl TextFileStream {
    /// Opens (and fully validates) the file. `num_nodes` must upper-bound
    /// every node id in the file.
    pub fn open<P: AsRef<Path>>(path: P, num_nodes: u32) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        // Validation pass: parse every line once so later passes cannot fail.
        let file = File::open(&path)?;
        let reader = BufReader::new(file);
        let mut line_no = 0u64;
        for line in reader.lines() {
            line_no += 1;
            let line = line?;
            if let Some((u, v, _)) = parse_edge_line(&line, line_no)? {
                if u >= num_nodes || v >= num_nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: u.max(v) as u64,
                        num_nodes: num_nodes as u64,
                    });
                }
            }
        }
        Ok(TextFileStream {
            path,
            num_nodes,
            passes: 0,
        })
    }
}

/// Parses one line of a text edge list. Returns `None` for blank/comment
/// lines, `Some((u, v, w))` otherwise.
fn parse_edge_line(line: &str, line_no: u64) -> Result<Option<(u32, u32, f64)>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32> {
        tok.ok_or_else(|| GraphError::Parse {
            line: line_no,
            msg: format!("missing {what}"),
        })?
        .parse::<u32>()
        .map_err(|e| GraphError::Parse {
            line: line_no,
            msg: format!("bad {what}: {e}"),
        })
    };
    let u = parse_u32(it.next(), "source id")?;
    let v = parse_u32(it.next(), "target id")?;
    let w = match it.next() {
        None => 1.0,
        Some(tok) => tok.parse::<f64>().map_err(|e| GraphError::Parse {
            line: line_no,
            msg: format!("bad weight: {e}"),
        })?,
    };
    if it.next().is_some() {
        return Err(GraphError::Parse {
            line: line_no,
            msg: "trailing tokens".to_string(),
        });
    }
    Ok(Some((u, v, w)))
}

impl EdgeStream for TextFileStream {
    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        self.passes += 1;
        let file = File::open(&self.path).expect("edge file disappeared between passes");
        let reader = BufReader::new(file);
        let mut line_no = 0u64;
        for line in reader.lines() {
            line_no += 1;
            let line = line.expect("i/o error mid-pass");
            if let Some((u, v, w)) =
                parse_edge_line(&line, line_no).expect("file validated at open; parse cannot fail")
            {
                f(u, v, w);
            }
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }
}

/// Streams the compact binary edge format of [`crate::io::write_binary`].
///
/// Layout: 16-byte header (`magic, flags, num_nodes, num_edges`) followed
/// by `num_edges` records of `u: u32, v: u32` (+ `w: f64` when weighted),
/// all little-endian.
pub struct BinaryFileStream {
    path: PathBuf,
    num_nodes: u32,
    num_edges: u64,
    weighted: bool,
    passes: u64,
}

/// Magic number of the binary edge format (`"DSG1"`).
pub const BINARY_MAGIC: u32 = 0x4453_4731;

impl BinaryFileStream {
    /// Opens a binary edge file, validating the header and length.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let mut header = [0u8; 16];
        file.read_exact(&mut header)
            .map_err(|_| GraphError::Format("binary edge file shorter than header".into()))?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != BINARY_MAGIC {
            return Err(GraphError::Format(format!(
                "bad magic 0x{magic:08x} (expected 0x{BINARY_MAGIC:08x})"
            )));
        }
        let flags = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let weighted = flags & 1 != 0;
        let num_nodes = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let num_edges_lo = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let num_edges = num_edges_lo as u64;
        let record = if weighted { 16 } else { 8 };
        let expected = 16 + num_edges * record;
        let actual = file.metadata()?.len();
        if actual != expected {
            return Err(GraphError::Format(format!(
                "binary edge file length {actual} != expected {expected}"
            )));
        }
        Ok(BinaryFileStream {
            path,
            num_nodes,
            num_edges,
            weighted,
            passes: 0,
        })
    }

    /// Number of edges recorded in the header.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Whether records carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }
}

impl EdgeStream for BinaryFileStream {
    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        self.passes += 1;
        let file = File::open(&self.path).expect("edge file disappeared between passes");
        let mut reader = BufReader::with_capacity(1 << 20, file);
        let mut header = [0u8; 16];
        reader
            .read_exact(&mut header)
            .expect("header validated at open");
        if self.weighted {
            let mut rec = [0u8; 16];
            for _ in 0..self.num_edges {
                reader
                    .read_exact(&mut rec)
                    .expect("length validated at open");
                let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                let w = f64::from_le_bytes(rec[8..16].try_into().unwrap());
                f(u, v, w);
            }
        } else {
            let mut rec = [0u8; 8];
            for _ in 0..self.num_edges {
                reader
                    .read_exact(&mut rec)
                    .expect("length validated at open");
                let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                f(u, v, 1.0);
            }
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn collect(stream: &mut dyn EdgeStream) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        stream.for_each_edge(&mut |u, v, w| out.push((u, v, w)));
        out
    }

    #[test]
    fn memory_stream_counts_passes() {
        let mut list = EdgeList::new_undirected(3);
        list.push(0, 1);
        list.push(1, 2);
        let mut s = MemoryStream::new(list);
        assert_eq!(s.passes(), 0);
        let edges = collect(&mut s);
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(s.passes(), 1);
        collect(&mut s);
        assert_eq!(s.passes(), 2);
    }

    #[test]
    fn memory_stream_weighted() {
        let mut list = EdgeList::new_undirected(2);
        list.push_weighted(0, 1, 2.5);
        let mut s = MemoryStream::new(list);
        assert_eq!(collect(&mut s), vec![(0, 1, 2.5)]);
    }

    #[test]
    fn parse_edge_line_variants() {
        assert_eq!(parse_edge_line("", 1).unwrap(), None);
        assert_eq!(parse_edge_line("# comment", 1).unwrap(), None);
        assert_eq!(parse_edge_line("3 4", 1).unwrap(), Some((3, 4, 1.0)));
        assert_eq!(parse_edge_line("3\t4\t2.5", 1).unwrap(), Some((3, 4, 2.5)));
        assert!(parse_edge_line("3", 1).is_err());
        assert!(parse_edge_line("a b", 1).is_err());
        assert!(parse_edge_line("1 2 3 4", 1).is_err());
    }

    #[test]
    fn text_file_stream_round_trip() {
        let dir = std::env::temp_dir().join("dsg_graph_test_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "# header\n0 1\n1 2 3.5\n\n2 0\n").unwrap();
        let mut s = TextFileStream::open(&path, 3).unwrap();
        let edges = collect(&mut s);
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 3.5), (2, 0, 1.0)]);
        // Second pass sees the same data.
        assert_eq!(collect(&mut s), edges);
        assert_eq!(s.passes(), 2);
    }

    #[test]
    fn text_file_stream_rejects_out_of_range() {
        let dir = std::env::temp_dir().join("dsg_graph_test_text2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "0 7\n").unwrap();
        assert!(TextFileStream::open(&path, 3).is_err());
    }

    #[test]
    fn text_file_stream_rejects_garbage() {
        let dir = std::env::temp_dir().join("dsg_graph_test_text3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        assert!(matches!(
            TextFileStream::open(&path, 3),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }
}
