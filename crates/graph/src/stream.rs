//! The multi-pass semi-streaming model.
//!
//! In the semi-streaming model (\[18\] in the paper) the node set is known in
//! advance and fits in RAM, while the edges can only be read sequentially,
//! one pass at a time. An [`EdgeStream`] encapsulates exactly that: the
//! algorithm calls [`EdgeStream::for_each_edge`] once per pass and the
//! stream hands every edge to the callback in storage order. The stream
//! counts passes so experiments can report the paper's headline metric.
//!
//! Implementations:
//! * [`MemoryStream`] — edges held in RAM (fast experiments).
//! * [`TextFileStream`] — re-reads a SNAP-style text edge list from disk on
//!   every pass (true out-of-core streaming).
//! * [`BinaryFileStream`] — re-reads the compact binary format of
//!   [`crate::io`] through the chunked [`crate::io::BinaryEdgeReader`].
//!
//! ## Failure model of the file streams
//!
//! A file stream validates its file when opened, but the file lives
//! outside the process: it can be truncated, rewritten, or deleted
//! between (or during) passes. Such drift is detected — by re-parsing,
//! id bounds checks, and an edge-count + content checksum comparison at
//! pass end — and surfaces through [`EdgeStream::take_error`] instead of
//! an unwinding panic. A failed pass is **not** counted in
//! [`EdgeStream::passes`], and once a pass has failed the stream feeds no
//! further edges until the error is taken; any results computed across a
//! failed pass must be discarded (see `dsg-core`'s `try_` entry points).

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::edgelist::EdgeList;
use crate::io::BinaryEdgeReader;
use crate::{GraphError, Result};

/// A multi-pass stream of (optionally weighted) edges.
///
/// For undirected graphs an edge `(u, v, w)` is an unordered pair reported
/// once in arbitrary orientation; for directed graphs it is the arc
/// `u -> v`. Whether the stream is to be interpreted as directed is up to
/// the consuming algorithm (matching the paper, where the input format is
/// the same and only the algorithm differs).
pub trait EdgeStream {
    /// Number of nodes `n`; node ids in the stream are `< n`.
    fn num_nodes(&self) -> u32;

    /// Makes one full pass over the edges, invoking `f(u, v, w)` per edge.
    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64));

    /// Number of *successful* passes made so far (failed passes of file
    /// streams are excluded).
    fn passes(&self) -> u64;

    /// Takes the stream's deferred error, if the last pass failed.
    ///
    /// File streams cannot return mid-iteration errors from
    /// [`EdgeStream::for_each_edge`], so an I/O failure or a file
    /// modified between passes parks the error here: the failed pass
    /// delivers a truncated (possibly empty) edge sequence, is not
    /// counted in [`EdgeStream::passes`], and the stream stays inert
    /// until the error is taken. Always-valid streams return `None`.
    fn take_error(&mut self) -> Option<GraphError> {
        None
    }
}

/// In-memory edge stream over an [`EdgeList`].
#[derive(Clone, Debug)]
pub struct MemoryStream {
    list: EdgeList,
    passes: u64,
}

impl MemoryStream {
    /// Wraps an edge list. The list is moved; clone it if still needed.
    pub fn new(list: EdgeList) -> Self {
        MemoryStream { list, passes: 0 }
    }

    /// Read-only access to the underlying list.
    pub fn edge_list(&self) -> &EdgeList {
        &self.list
    }

    /// Consumes the stream, returning the underlying list.
    pub fn into_edge_list(self) -> EdgeList {
        self.list
    }
}

impl EdgeStream for MemoryStream {
    fn num_nodes(&self) -> u32 {
        self.list.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        self.passes += 1;
        match &self.list.weights {
            None => {
                for &(u, v) in &self.list.edges {
                    f(u, v, 1.0);
                }
            }
            Some(ws) => {
                for (&(u, v), &w) in self.list.edges.iter().zip(ws) {
                    f(u, v, w);
                }
            }
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }
}

/// Parses one line of a text edge list: `u v [w]`, `#` comments, no
/// trailing tokens. Returns `None` for blank/comment lines, otherwise
/// `Some((u, v, w))` where `w` is `None` when the line had no weight
/// column.
///
/// This is the **only** text-edge grammar in the crate: both
/// [`crate::io::read_text`] and [`TextFileStream`] parse through it, so
/// a file loads in memory if and only if it also streams.
pub fn parse_edge_line(line: &str, line_no: u64) -> Result<Option<(u32, u32, Option<f64>)>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32> {
        tok.ok_or_else(|| GraphError::Parse {
            line: line_no,
            msg: format!("missing {what}"),
        })?
        .parse::<u32>()
        .map_err(|e| GraphError::Parse {
            line: line_no,
            msg: format!("bad {what}: {e}"),
        })
    };
    let u = parse_u32(it.next(), "source id")?;
    let v = parse_u32(it.next(), "target id")?;
    let w = match it.next() {
        None => None,
        Some(tok) => Some(tok.parse::<f64>().map_err(|e| GraphError::Parse {
            line: line_no,
            msg: format!("bad weight: {e}"),
        })?),
    };
    if it.next().is_some() {
        return Err(GraphError::Parse {
            line: line_no,
            msg: "trailing tokens".to_string(),
        });
    }
    Ok(Some((u, v, w)))
}

/// FNV-1a content fingerprint over the parsed edge records of one pass,
/// used to detect files rewritten between passes even when the edge
/// count is unchanged.
struct EdgeChecksum(u64);

impl EdgeChecksum {
    fn new() -> Self {
        EdgeChecksum(0xcbf2_9ce4_8422_2325)
    }

    fn record(&mut self, u: u32, v: u32, w: f64) {
        for b in u
            .to_le_bytes()
            .into_iter()
            .chain(v.to_le_bytes())
            .chain(w.to_bits().to_le_bytes())
        {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn drift_error(path: &Path, detail: impl std::fmt::Display) -> GraphError {
    GraphError::Format(format!(
        "edge file {} changed while streaming: {detail} (the pass was aborted and not counted; \
         results computed from it are invalid)",
        path.display()
    ))
}

/// Streams a SNAP-style whitespace-separated text edge list from disk,
/// re-opening the file on every pass.
///
/// Lines starting with `#` are comments; each data line is `u v` or
/// `u v w` (the grammar of [`parse_edge_line`], shared with
/// [`crate::io::read_text`]). The file is fully validated at
/// construction; a file modified afterwards (TOCTOU drift) is detected
/// mid- or end-of-pass and surfaces through [`EdgeStream::take_error`] —
/// see the [module docs](self) for the failure model.
pub struct TextFileStream {
    path: PathBuf,
    num_nodes: u32,
    num_edges: u64,
    checksum: u64,
    passes: u64,
    error: Option<GraphError>,
}

/// What one validation scan of a text edge file found.
struct TextScan {
    max_id: u32,
    num_edges: u64,
    checksum: u64,
}

fn scan_text(path: &Path) -> Result<TextScan> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut line_no = 0u64;
    let mut scan = TextScan {
        max_id: 0,
        num_edges: 0,
        checksum: 0,
    };
    let mut checksum = EdgeChecksum::new();
    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        if let Some((u, v, w)) = parse_edge_line(&line, line_no)? {
            scan.max_id = scan.max_id.max(u).max(v);
            scan.num_edges += 1;
            checksum.record(u, v, w.unwrap_or(1.0));
        }
    }
    scan.checksum = checksum.finish();
    Ok(scan)
}

impl TextFileStream {
    /// Opens (and fully validates) the file. `num_nodes` must upper-bound
    /// every node id in the file.
    pub fn open<P: AsRef<Path>>(path: P, num_nodes: u32) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let scan = scan_text(&path)?;
        if scan.num_edges > 0 && scan.max_id >= num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: scan.max_id as u64,
                num_nodes: num_nodes as u64,
            });
        }
        Ok(TextFileStream {
            path,
            num_nodes,
            num_edges: scan.num_edges,
            checksum: scan.checksum,
            passes: 0,
            error: None,
        })
    }

    /// Opens (and fully validates) the file, inferring the node count as
    /// `max id + 1` from the validation scan — the out-of-core CLI path,
    /// which must never materialize the edge list.
    pub fn open_auto<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let scan = scan_text(&path)?;
        if scan.num_edges > 0 && scan.max_id == u32::MAX {
            // `max_id + 1` would overflow the u32 node-count space.
            return Err(GraphError::TooLarge {
                what: "node id",
                value: scan.max_id as u64,
                max: u32::MAX as u64 - 1,
            });
        }
        Ok(TextFileStream {
            path,
            num_nodes: if scan.num_edges == 0 {
                0
            } else {
                scan.max_id + 1
            },
            num_edges: scan.num_edges,
            checksum: scan.checksum,
            passes: 0,
            error: None,
        })
    }

    /// Number of edges counted by the validation scan.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn pass_once(&self, f: &mut dyn FnMut(u32, u32, f64)) -> Result<()> {
        let file = File::open(&self.path)
            .map_err(|e| drift_error(&self.path, format_args!("cannot reopen: {e}")))?;
        let reader = BufReader::new(file);
        let mut line_no = 0u64;
        let mut seen = 0u64;
        let mut checksum = EdgeChecksum::new();
        for line in reader.lines() {
            line_no += 1;
            let line =
                line.map_err(|e| drift_error(&self.path, format_args!("i/o error mid-pass: {e}")))?;
            if let Some((u, v, w)) = parse_edge_line(&line, line_no)
                .map_err(|e| drift_error(&self.path, format_args!("no longer parses ({e})")))?
            {
                if u >= self.num_nodes || v >= self.num_nodes {
                    return Err(drift_error(
                        &self.path,
                        format_args!(
                            "node id {} out of range (num_nodes = {})",
                            u.max(v),
                            self.num_nodes
                        ),
                    ));
                }
                let w = w.unwrap_or(1.0);
                seen += 1;
                checksum.record(u, v, w);
                f(u, v, w);
            }
        }
        if seen != self.num_edges {
            return Err(drift_error(
                &self.path,
                format_args!("edge count drifted from {} to {seen}", self.num_edges),
            ));
        }
        if checksum.finish() != self.checksum {
            return Err(drift_error(&self.path, "edge content drifted"));
        }
        Ok(())
    }
}

impl EdgeStream for TextFileStream {
    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        if self.error.is_some() {
            return;
        }
        match self.pass_once(f) {
            Ok(()) => self.passes += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }

    fn take_error(&mut self) -> Option<GraphError> {
        self.error.take()
    }
}

/// Streams the compact binary edge format of [`crate::io::write_binary`].
///
/// Layout: 16-byte header (`magic, flags, num_nodes, num_edges`) followed
/// by `num_edges` records of `u: u32, v: u32` (+ `w: f64` when weighted),
/// all little-endian. Every pass re-reads the file through the chunked
/// [`BinaryEdgeReader`] (fixed-size read buffer). Files truncated,
/// rewritten, or deleted after `open` surface through
/// [`EdgeStream::take_error`] — see the [module docs](self).
pub struct BinaryFileStream {
    path: PathBuf,
    num_nodes: u32,
    num_edges: u64,
    weighted: bool,
    /// Content fingerprint of the validation scan at open; every pass
    /// must reproduce it.
    checksum: u64,
    passes: u64,
    error: Option<GraphError>,
}

/// Magic number of the binary edge format (`"DSG1"`).
pub const BINARY_MAGIC: u32 = 0x4453_4731;

impl BinaryFileStream {
    /// Opens a binary edge file and fully validates it: header, length,
    /// node-id bounds of every record, and a content fingerprint that
    /// every later pass is checked against (so a file rewritten even
    /// before the first pass completes is caught). A corrupt file fails
    /// here with a typed error rather than being misreported as drift.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut reader = BinaryEdgeReader::open(&path)?;
        let mut checksum = EdgeChecksum::new();
        while let Some((u, v, w)) = reader.next_edge()? {
            checksum.record(u, v, w);
        }
        Ok(BinaryFileStream {
            path,
            num_nodes: reader.num_nodes(),
            num_edges: reader.num_edges(),
            weighted: reader.is_weighted(),
            checksum: checksum.finish(),
            passes: 0,
            error: None,
        })
    }

    /// Number of edges recorded in the header.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Whether records carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    fn pass_once(&mut self, f: &mut dyn FnMut(u32, u32, f64)) -> Result<()> {
        let mut reader = BinaryEdgeReader::open(&self.path)
            .map_err(|e| drift_error(&self.path, format_args!("cannot reopen: {e}")))?;
        if reader.num_nodes() != self.num_nodes
            || reader.num_edges() != self.num_edges
            || reader.is_weighted() != self.weighted
        {
            return Err(drift_error(&self.path, "header drifted"));
        }
        let mut checksum = EdgeChecksum::new();
        loop {
            match reader.next_edge() {
                Ok(Some((u, v, w))) => {
                    checksum.record(u, v, w);
                    f(u, v, w);
                }
                Ok(None) => break,
                Err(e) => return Err(drift_error(&self.path, e)),
            }
        }
        if checksum.finish() != self.checksum {
            return Err(drift_error(&self.path, "edge content drifted"));
        }
        Ok(())
    }
}

impl EdgeStream for BinaryFileStream {
    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(u32, u32, f64)) {
        if self.error.is_some() {
            return;
        }
        match self.pass_once(f) {
            Ok(()) => self.passes += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn passes(&self) -> u64 {
        self.passes
    }

    fn take_error(&mut self) -> Option<GraphError> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::io::write_binary;

    fn collect(stream: &mut dyn EdgeStream) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        stream.for_each_edge(&mut |u, v, w| out.push((u, v, w)));
        out
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsg_graph_test_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_stream_counts_passes() {
        let mut list = EdgeList::new_undirected(3);
        list.push(0, 1);
        list.push(1, 2);
        let mut s = MemoryStream::new(list);
        assert_eq!(s.passes(), 0);
        let edges = collect(&mut s);
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(s.passes(), 1);
        collect(&mut s);
        assert_eq!(s.passes(), 2);
        assert!(s.take_error().is_none());
    }

    #[test]
    fn memory_stream_weighted() {
        let mut list = EdgeList::new_undirected(2);
        list.push_weighted(0, 1, 2.5);
        let mut s = MemoryStream::new(list);
        assert_eq!(collect(&mut s), vec![(0, 1, 2.5)]);
    }

    #[test]
    fn parse_edge_line_variants() {
        assert_eq!(parse_edge_line("", 1).unwrap(), None);
        assert_eq!(parse_edge_line("# comment", 1).unwrap(), None);
        assert_eq!(parse_edge_line("3 4", 1).unwrap(), Some((3, 4, None)));
        assert_eq!(
            parse_edge_line("3\t4\t2.5", 1).unwrap(),
            Some((3, 4, Some(2.5)))
        );
        assert!(parse_edge_line("3", 1).is_err());
        assert!(parse_edge_line("a b", 1).is_err());
        assert!(parse_edge_line("1 2 3 4", 1).is_err());
    }

    #[test]
    fn text_file_stream_round_trip() {
        let path = tmp_dir("text").join("edges.txt");
        std::fs::write(&path, "# header\n0 1\n1 2 3.5\n\n2 0\n").unwrap();
        let mut s = TextFileStream::open(&path, 3).unwrap();
        assert_eq!(s.num_edges(), 3);
        let edges = collect(&mut s);
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 3.5), (2, 0, 1.0)]);
        // Second pass sees the same data.
        assert_eq!(collect(&mut s), edges);
        assert_eq!(s.passes(), 2);
        assert!(s.take_error().is_none());
    }

    #[test]
    fn text_file_stream_open_auto_infers_node_count() {
        let path = tmp_dir("text_auto").join("edges.txt");
        std::fs::write(&path, "0 1\n5 2\n").unwrap();
        let s = TextFileStream::open_auto(&path).unwrap();
        assert_eq!(s.num_nodes(), 6);
        assert_eq!(s.num_edges(), 2);

        let empty = tmp_dir("text_auto").join("empty.txt");
        std::fs::write(&empty, "# nothing\n").unwrap();
        assert_eq!(TextFileStream::open_auto(&empty).unwrap().num_nodes(), 0);

        // `u32::MAX` as a node id would overflow `max id + 1`: a typed
        // error, not an overflow panic (or a wrapped num_nodes of 0).
        let huge = tmp_dir("text_auto").join("huge.txt");
        std::fs::write(&huge, format!("0 {}\n", u32::MAX)).unwrap();
        assert!(matches!(
            TextFileStream::open_auto(&huge),
            Err(GraphError::TooLarge { .. })
        ));
    }

    #[test]
    fn text_file_stream_rejects_out_of_range() {
        let path = tmp_dir("text2").join("edges.txt");
        std::fs::write(&path, "0 7\n").unwrap();
        assert!(TextFileStream::open(&path, 3).is_err());
    }

    #[test]
    fn text_file_stream_rejects_garbage() {
        let path = tmp_dir("text3").join("edges.txt");
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        assert!(matches!(
            TextFileStream::open(&path, 3),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn text_file_stream_detects_drift_between_passes() {
        let path = tmp_dir("text_drift").join("edges.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let mut s = TextFileStream::open(&path, 3).unwrap();
        assert_eq!(collect(&mut s).len(), 2);
        assert_eq!(s.passes(), 1);

        // Same edge count, different content: caught by the checksum.
        std::fs::write(&path, "0 1\n0 2\n").unwrap();
        collect(&mut s);
        assert_eq!(s.passes(), 1, "aborted pass must not be counted");
        let err = s.take_error().expect("drift must surface an error");
        assert!(err.to_string().contains("changed while streaming"), "{err}");

        // After taking the error the stream recovers against the new file
        // state only if it still matches the validated shape — here it
        // does not (checksum differs), so the next pass errors again.
        collect(&mut s);
        assert_eq!(s.passes(), 1);
        assert!(s.take_error().is_some());
    }

    #[test]
    fn text_file_stream_detects_deletion_and_garbage_mid_run() {
        let path = tmp_dir("text_drift2").join("edges.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let mut s = TextFileStream::open(&path, 2).unwrap();
        std::fs::write(&path, "junk line\n").unwrap();
        collect(&mut s);
        assert_eq!(s.passes(), 0);
        assert!(s.take_error().unwrap().to_string().contains("parses"));

        std::fs::remove_file(&path).unwrap();
        collect(&mut s);
        assert!(s
            .take_error()
            .unwrap()
            .to_string()
            .contains("cannot reopen"));
    }

    #[test]
    fn text_file_stream_detects_out_of_range_drift() {
        // A rewritten file whose ids exceed the validated bound must not
        // reach the callback with an out-of-range id (downstream degree
        // arrays are sized to num_nodes).
        let path = tmp_dir("text_drift3").join("edges.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let mut s = TextFileStream::open(&path, 2).unwrap();
        std::fs::write(&path, "0 9\n").unwrap();
        let mut max_seen = 0u32;
        s.for_each_edge(&mut |u, v, _| max_seen = max_seen.max(u).max(v));
        assert!(max_seen < 2, "out-of-range id leaked to the callback");
        assert!(s.take_error().is_some());
    }

    #[test]
    fn binary_file_stream_checksums_at_open() {
        // The baseline fingerprint comes from the validation scan at
        // open, so a rewrite landing before the first pass completes is
        // already drift — no one-pass blind window.
        let dir = tmp_dir("bin_open");
        let path = dir.join("edges.bin");
        let mut g = EdgeList::new_undirected(4);
        g.push(0, 1);
        g.push(2, 3);
        write_binary(&path, &g).unwrap();
        let mut s = BinaryFileStream::open(&path).unwrap();
        let mut h = EdgeList::new_undirected(4);
        h.push(0, 1);
        h.push(1, 3);
        write_binary(&path, &h).unwrap();
        collect(&mut s);
        assert_eq!(s.passes(), 0, "first pass saw rewritten content");
        assert!(s.take_error().is_some());
    }

    #[test]
    fn binary_file_stream_rejects_corrupt_ids_at_open() {
        // A file whose records were always out of range fails open with
        // a typed error — it is corruption, not drift.
        let dir = tmp_dir("bin_corrupt");
        let path = dir.join("edges.bin");
        let mut g = EdgeList::new_undirected(10);
        g.push(0, 9);
        write_binary(&path, &g).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            BinaryFileStream::open(&path),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn binary_file_stream_detects_drift() {
        let dir = tmp_dir("bin_drift");
        let path = dir.join("edges.bin");
        let mut g = EdgeList::new_undirected(4);
        g.push(0, 1);
        g.push(2, 3);
        write_binary(&path, &g).unwrap();
        let mut s = BinaryFileStream::open(&path).unwrap();
        assert_eq!(collect(&mut s).len(), 2);
        assert_eq!(s.passes(), 1);

        // Rewrite with the same record count but different content.
        let mut h = EdgeList::new_undirected(4);
        h.push(0, 1);
        h.push(1, 3);
        write_binary(&path, &h).unwrap();
        collect(&mut s);
        assert_eq!(s.passes(), 1);
        assert!(s.take_error().is_some());

        // Truncation is caught by the reopen length check.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        collect(&mut s);
        assert_eq!(s.passes(), 1);
        assert!(s
            .take_error()
            .unwrap()
            .to_string()
            .contains("changed while streaming"));
    }
}
