//! Mutable edge-list representation used by builders, generators, and I/O.

use crate::{GraphError, NodeId, Result};

/// Whether an [`EdgeList`] represents an undirected or a directed graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Edges `(u, v)` are unordered pairs; each pair is stored once.
    Undirected,
    /// Edges `(u, v)` are ordered arcs from `u` to `v`.
    Directed,
}

/// A graph as a flat list of (optionally weighted) edges.
///
/// This is the interchange format of the repository: generators produce it,
/// I/O reads and writes it, CSR snapshots and edge streams are built from
/// it. Node ids are dense in `0..num_nodes`.
#[derive(Clone, Debug)]
pub struct EdgeList {
    /// Number of nodes; all edge endpoints are `< num_nodes`.
    pub num_nodes: u32,
    /// The edges. For [`GraphKind::Undirected`] each unordered pair appears
    /// once (in either orientation).
    pub edges: Vec<(NodeId, NodeId)>,
    /// Optional per-edge weights, parallel to `edges`. `None` means every
    /// edge has weight 1.
    pub weights: Option<Vec<f64>>,
    /// Directedness.
    pub kind: GraphKind,
}

impl EdgeList {
    /// Creates an empty undirected graph on `num_nodes` nodes.
    pub fn new_undirected(num_nodes: u32) -> Self {
        EdgeList {
            num_nodes,
            edges: Vec::new(),
            weights: None,
            kind: GraphKind::Undirected,
        }
    }

    /// Creates an empty directed graph on `num_nodes` nodes.
    pub fn new_directed(num_nodes: u32) -> Self {
        EdgeList {
            num_nodes,
            edges: Vec::new(),
            weights: None,
            kind: GraphKind::Directed,
        }
    }

    /// Number of edges (arcs for directed graphs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph carries per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Appends an unweighted edge. Panics if the list is weighted (mixing
    /// weighted and unweighted pushes would silently misalign the arrays).
    pub fn push(&mut self, u: NodeId, v: NodeId) {
        assert!(
            self.weights.is_none(),
            "push() on a weighted EdgeList; use push_weighted()"
        );
        self.edges.push((u, v));
    }

    /// Appends a weighted edge, promoting the list to weighted on first use
    /// (existing edges get weight 1).
    pub fn push_weighted(&mut self, u: NodeId, v: NodeId, w: f64) {
        let weights = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.edges.len()]);
        weights.push(w);
        self.edges.push((u, v));
    }

    /// Weight of edge index `idx` (1 for unweighted lists).
    #[inline]
    pub fn weight(&self, idx: usize) -> f64 {
        self.weights.as_ref().map_or(1.0, |w| w[idx])
    }

    /// Total edge weight (`num_edges` when unweighted).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.edges.len() as f64,
        }
    }

    /// Iterates `(u, v, w)` triples.
    pub fn iter_weighted(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(move |(i, &(u, v))| (u, v, self.weight(i)))
    }

    /// Checks that every endpoint is `< num_nodes`.
    pub fn validate(&self) -> Result<()> {
        for &(u, v) in &self.edges {
            if u >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u as u64,
                    num_nodes: self.num_nodes as u64,
                });
            }
            if v >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: v as u64,
                    num_nodes: self.num_nodes as u64,
                });
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.edges.len() {
                return Err(GraphError::Format(format!(
                    "weights length {} != edges length {}",
                    w.len(),
                    self.edges.len()
                )));
            }
        }
        Ok(())
    }

    /// Canonicalizes the list: drops self-loops, orients undirected edges as
    /// `(min, max)`, sorts, and merges duplicates (summing weights for
    /// weighted lists, dropping duplicates for unweighted ones).
    ///
    /// The densest-subgraph density `ρ(S) = |E(S)|/|S|` is defined on simple
    /// graphs; generators call this to guarantee simplicity.
    pub fn canonicalize(&mut self) {
        let weighted = self.weights.is_some();
        let mut triples: Vec<(NodeId, NodeId, f64)> = self
            .iter_weighted()
            .filter(|&(u, v, _)| u != v)
            .map(|(u, v, w)| {
                if self.kind == GraphKind::Undirected && u > v {
                    (v, u, w)
                } else {
                    (u, v, w)
                }
            })
            .collect();
        triples.sort_unstable_by_key(|&(u, v, _)| (u, v));

        let mut edges = Vec::with_capacity(triples.len());
        let mut weights: Vec<f64> = Vec::with_capacity(if weighted { triples.len() } else { 0 });
        for (u, v, w) in triples {
            if edges.last() == Some(&(u, v)) {
                if weighted {
                    // Merge parallel weighted edges by summing.
                    if let Some(last) = weights.last_mut() {
                        *last += w;
                    }
                }
                // Unweighted duplicates are simply dropped.
            } else {
                edges.push((u, v));
                if weighted {
                    weights.push(w);
                }
            }
        }
        self.edges = edges;
        self.weights = if weighted { Some(weights) } else { None };
    }

    /// Degree of every node. For directed graphs this is the out-degree; see
    /// [`EdgeList::degrees_in`] for in-degrees.
    pub fn degrees_out(&self) -> Vec<f64> {
        let mut deg = vec![0.0; self.num_nodes as usize];
        for (u, v, w) in self.iter_weighted() {
            match self.kind {
                GraphKind::Undirected => {
                    deg[u as usize] += w;
                    deg[v as usize] += w;
                }
                GraphKind::Directed => {
                    deg[u as usize] += w;
                    let _ = v;
                }
            }
        }
        deg
    }

    /// In-degree of every node (equals [`EdgeList::degrees_out`] for
    /// undirected graphs).
    pub fn degrees_in(&self) -> Vec<f64> {
        match self.kind {
            GraphKind::Undirected => self.degrees_out(),
            GraphKind::Directed => {
                let mut deg = vec![0.0; self.num_nodes as usize];
                for (_, v, w) in self.iter_weighted() {
                    deg[v as usize] += w;
                }
                deg
            }
        }
    }

    /// Relabels nodes with a permutation `perm` (node `i` becomes
    /// `perm[i]`). Useful for randomizing generator artifacts.
    pub fn relabel(&mut self, perm: &[u32]) {
        assert_eq!(
            perm.len(),
            self.num_nodes as usize,
            "permutation size mismatch"
        );
        for (u, v) in &mut self.edges {
            *u = perm[*u as usize];
            *v = perm[*v as usize];
        }
    }

    /// Merges `other` into `self`, offsetting `other`'s node ids by
    /// `self.num_nodes`. Both lists must have the same [`GraphKind`].
    /// Produces the disjoint union of the two graphs.
    pub fn disjoint_union(&mut self, other: &EdgeList) {
        assert_eq!(
            self.kind, other.kind,
            "cannot union directed with undirected"
        );
        let offset = self.num_nodes;
        if self.weights.is_some() || other.weights.is_some() {
            let w0 = self
                .weights
                .get_or_insert_with(|| vec![1.0; self.edges.len()]);
            match &other.weights {
                Some(w1) => w0.extend_from_slice(w1),
                None => w0.extend(std::iter::repeat_n(1.0, other.edges.len())),
            }
        }
        self.edges
            .extend(other.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
        self.num_nodes += other.num_nodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut g = EdgeList::new_undirected(4);
        g.push(0, 1);
        g.push(1, 2);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_weighted());
        assert_eq!(g.total_weight(), 2.0);
        g.validate().unwrap();
    }

    #[test]
    fn weighted_promotion_backfills_ones() {
        let mut g = EdgeList::new_undirected(3);
        g.push(0, 1);
        g.push_weighted(1, 2, 2.5);
        assert!(g.is_weighted());
        assert_eq!(g.weight(0), 1.0);
        assert_eq!(g.weight(1), 2.5);
        assert!((g.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut g = EdgeList::new_undirected(2);
        g.push(0, 5);
        assert!(matches!(
            g.validate(),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn canonicalize_undirected() {
        let mut g = EdgeList::new_undirected(4);
        g.push(1, 0);
        g.push(0, 1); // duplicate in other orientation
        g.push(2, 2); // self loop
        g.push(3, 2);
        g.canonicalize();
        assert_eq!(g.edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn canonicalize_directed_keeps_orientation() {
        let mut g = EdgeList::new_directed(3);
        g.push(1, 0);
        g.push(0, 1);
        g.push(0, 1);
        g.canonicalize();
        assert_eq!(g.edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn canonicalize_merges_weights() {
        let mut g = EdgeList::new_undirected(3);
        g.push_weighted(0, 1, 1.0);
        g.push_weighted(1, 0, 2.0);
        g.canonicalize();
        assert_eq!(g.edges, vec![(0, 1)]);
        assert_eq!(g.weights.as_ref().unwrap(), &vec![3.0]);
    }

    #[test]
    fn degrees_undirected() {
        let mut g = EdgeList::new_undirected(4);
        g.push(0, 1);
        g.push(0, 2);
        g.push(0, 3);
        let d = g.degrees_out();
        assert_eq!(d, vec![3.0, 1.0, 1.0, 1.0]);
        assert_eq!(g.degrees_in(), d);
    }

    #[test]
    fn degrees_directed() {
        let mut g = EdgeList::new_directed(3);
        g.push(0, 1);
        g.push(0, 2);
        g.push(1, 2);
        assert_eq!(g.degrees_out(), vec![2.0, 1.0, 0.0]);
        assert_eq!(g.degrees_in(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn disjoint_union_offsets() {
        let mut a = EdgeList::new_undirected(2);
        a.push(0, 1);
        let mut b = EdgeList::new_undirected(3);
        b.push(0, 2);
        a.disjoint_union(&b);
        assert_eq!(a.num_nodes, 5);
        assert_eq!(a.edges, vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn disjoint_union_mixed_weights() {
        let mut a = EdgeList::new_undirected(2);
        a.push(0, 1);
        let mut b = EdgeList::new_undirected(2);
        b.push_weighted(0, 1, 4.0);
        a.disjoint_union(&b);
        assert_eq!(a.weights.as_ref().unwrap(), &vec![1.0, 4.0]);
    }

    #[test]
    fn relabel_applies_permutation() {
        let mut g = EdgeList::new_undirected(3);
        g.push(0, 1);
        g.relabel(&[2, 0, 1]);
        assert_eq!(g.edges, vec![(2, 0)]);
    }
}
