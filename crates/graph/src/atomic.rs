//! Atomic views over degree vectors and node sets — the shared-memory
//! primitives behind the parallel peeling backend in `dsg-core`.
//!
//! The parallel `(1+ε)`-threshold pass is a bulk, order-independent
//! operation (that is the whole point of Algorithm 1), so worker threads
//! only ever need two concurrent operations:
//!
//! * decrementing a neighbor's degree counter when a frontier node is
//!   removed ([`AtomicF64`]), and
//! * clearing liveness bits of the removal frontier ([`AtomicSetView`]).
//!
//! Both views alias memory that the rest of the pass owns exclusively
//! (`Vec<f64>` degrees, [`NodeSet`] words), so no data is copied in or
//! out: a `&mut` borrow is temporarily reinterpreted as a shared atomic
//! slice for the duration of the scoped-thread region.
//!
//! Determinism note: all degree values in the unweighted algorithms are
//! integer-valued `f64`s, for which atomic add/sub is exact regardless of
//! the order threads apply them — parallel passes produce bit-identical
//! results to serial ones. Weighted degrees are not order-independent
//! under `+`, so the weighted parallel path recomputes degrees
//! chunk-by-chunk (each node summed sequentially by one thread) instead
//! of pushing concurrent updates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bitset::NodeSet;

/// An `f64` counter supporting lock-free add/sub via compare-and-swap on
/// the underlying bits.
#[repr(transparent)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a counter holding `value`.
    pub fn new(value: f64) -> Self {
        AtomicF64(AtomicU64::new(value.to_bits()))
    }

    /// Current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Overwrites the value.
    #[inline]
    pub fn store(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed)
    }

    /// Atomically adds `delta` (CAS loop); returns the previous value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically subtracts `delta`; returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, delta: f64) -> f64 {
        self.fetch_add(-delta)
    }
}

/// Reinterprets an exclusively borrowed `f64` slice as a shared slice of
/// atomic counters for the duration of the borrow.
///
/// One of the two sanctioned `unsafe` sites in the workspace (the crate
/// root is `#![deny(unsafe_code)]`): a transmute between layouts proven
/// identical, justified in the safety comment below.
#[allow(unsafe_code)]
pub fn f64_slice_as_atomic(slice: &mut [f64]) -> &[AtomicF64] {
    // Safety: `AtomicF64` is `repr(transparent)` over `AtomicU64`, which
    // has the same size and bit validity as `u64`/`f64`. The exclusive
    // borrow guarantees no non-atomic access can race with the atomic
    // view. `AtomicU64` additionally requires 8-byte alignment, which
    // `f64` already has on every 64-bit target this workspace supports.
    assert!(std::mem::align_of::<f64>() >= std::mem::align_of::<AtomicF64>());
    unsafe { &*(slice as *mut [f64] as *const [AtomicF64]) }
}

/// A shared, thread-safe view of a [`NodeSet`] supporting concurrent
/// membership tests and removals.
///
/// The view does not maintain the set's cached cardinality; call
/// [`NodeSet::recount`] after the parallel region.
pub struct AtomicSetView<'a> {
    words: &'a [AtomicU64],
    capacity: usize,
}

impl<'a> AtomicSetView<'a> {
    /// Wraps an exclusively borrowed set.
    ///
    /// The second sanctioned `unsafe` site in this crate — the same
    /// `repr(transparent)` reinterpretation as [`f64_slice_as_atomic`].
    #[allow(unsafe_code)]
    pub fn new(set: &'a mut NodeSet) -> Self {
        let capacity = set.capacity();
        let words = set.words_mut();
        // Safety: same layout/alignment argument as [`f64_slice_as_atomic`].
        let words = unsafe { &*(words as *mut [u64] as *const [AtomicU64]) };
        AtomicSetView { words, capacity }
    }

    /// Membership test (racy with concurrent removals of the same id —
    /// callers partition the frontier so each id is cleared exactly once).
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(i < self.capacity);
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&self, i: u32) {
        let i = i as usize;
        debug_assert!(i < self.capacity);
        self.words[i / 64].fetch_and(!(1u64 << (i % 64)), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_f64_add_sub() {
        let a = AtomicF64::new(3.0);
        assert_eq!(a.fetch_add(2.0), 3.0);
        assert_eq!(a.load(), 5.0);
        a.fetch_sub(1.0);
        assert_eq!(a.load(), 4.0);
        a.store(0.5);
        assert_eq!(a.load(), 0.5);
    }

    #[test]
    fn atomic_view_over_slice() {
        let mut v = vec![1.0f64, 2.0, 3.0];
        {
            let view = f64_slice_as_atomic(&mut v);
            view[1].fetch_sub(1.0);
            view[2].fetch_add(4.0);
        }
        assert_eq!(v, vec![1.0, 1.0, 7.0]);
    }

    #[test]
    fn concurrent_integer_adds_are_exact() {
        let mut v = vec![0.0f64];
        {
            let view = f64_slice_as_atomic(&mut v);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let view = &*view;
                    scope.spawn(move || {
                        for _ in 0..1000 {
                            view[0].fetch_add(1.0);
                        }
                    });
                }
            });
        }
        assert_eq!(v[0], 4000.0);
    }

    #[test]
    fn atomic_set_view_remove() {
        let mut s = NodeSet::full(130);
        {
            let view = AtomicSetView::new(&mut s);
            assert!(view.contains(0));
            view.remove(0);
            view.remove(64);
            view.remove(129);
            assert!(!view.contains(64));
        }
        s.recount();
        assert_eq!(s.len(), 127);
        assert!(!s.contains(0));
        assert!(!s.contains(64));
        assert!(!s.contains(129));
        assert!(s.contains(1));
    }

    #[test]
    fn parallel_frontier_clear() {
        let mut s = NodeSet::full(1000);
        let frontier: Vec<u32> = (0..1000).step_by(3).collect();
        let expected = 1000 - frontier.len();
        {
            let view = AtomicSetView::new(&mut s);
            std::thread::scope(|scope| {
                for chunk in frontier.chunks(64) {
                    let view = &view;
                    scope.spawn(move || {
                        for &u in chunk {
                            view.remove(u);
                        }
                    });
                }
            });
        }
        s.recount();
        assert_eq!(s.len(), expected);
    }
}
