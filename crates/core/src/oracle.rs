//! Degree oracles — the abstraction behind §5.1 of the paper.
//!
//! Per pass, the streaming algorithm only needs each live node's induced
//! degree. The exact oracle keeps `n` counters (`O(n)` words — matching
//! the space bound of Lemma 7 up to the liveness bits); the Count-Sketch
//! oracle in the `dsg-sketch` crate keeps `t·b ≪ n` counters at the price
//! of probabilistic estimates. Algorithm 1 is generic over this trait, so
//! both run through identical control flow — exactly the comparison of
//! Table 4.

/// A per-pass degree accumulator.
///
/// Protocol per pass: [`DegreeOracle::reset`], then one
/// [`DegreeOracle::record`] call per live edge, then any number of
/// [`DegreeOracle::degree`] queries.
pub trait DegreeOracle {
    /// Clears all counters for a new pass.
    fn reset(&mut self);

    /// Records a live edge `(u, v)` of weight `w`, incrementing the degree
    /// of both endpoints.
    fn record(&mut self, u: u32, v: u32, w: f64);

    /// Returns the (possibly estimated) accumulated degree of `u`.
    fn degree(&self, u: u32) -> f64;

    /// Number of machine words of counter state (used for the memory row
    /// of Table 4).
    fn memory_words(&self) -> usize;
}

/// The exact oracle: one `f64` counter per node.
#[derive(Clone, Debug)]
pub struct ExactDegreeOracle {
    degrees: Vec<f64>,
}

impl ExactDegreeOracle {
    /// Creates an oracle for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        ExactDegreeOracle {
            degrees: vec![0.0; num_nodes as usize],
        }
    }

    /// Read-only view of the degree vector.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }
}

impl DegreeOracle for ExactDegreeOracle {
    fn reset(&mut self) {
        self.degrees.fill(0.0);
    }

    #[inline]
    fn record(&mut self, u: u32, v: u32, w: f64) {
        self.degrees[u as usize] += w;
        self.degrees[v as usize] += w;
    }

    #[inline]
    fn degree(&self, u: u32) -> f64 {
        self.degrees[u as usize]
    }

    fn memory_words(&self) -> usize {
        self.degrees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_oracle_accumulates() {
        let mut o = ExactDegreeOracle::new(4);
        o.record(0, 1, 1.0);
        o.record(0, 2, 2.0);
        assert_eq!(o.degree(0), 3.0);
        assert_eq!(o.degree(1), 1.0);
        assert_eq!(o.degree(2), 2.0);
        assert_eq!(o.degree(3), 0.0);
        assert_eq!(o.memory_words(), 4);
    }

    #[test]
    fn exact_oracle_reset() {
        let mut o = ExactDegreeOracle::new(2);
        o.record(0, 1, 5.0);
        o.reset();
        assert_eq!(o.degree(0), 0.0);
        assert_eq!(o.degree(1), 0.0);
    }
}
