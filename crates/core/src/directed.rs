//! **Algorithm 3** — the `(2+2ε)`-approximation for directed graphs, and
//! the `δ`-grid sweep over the size ratio `c`.
//!
//! For directed graphs the density is `ρ(S,T) = |E(S,T)|/sqrt(|S||T|)`
//! over two (not necessarily disjoint) node sets. The algorithm assumes
//! the ratio `c = |S*|/|T*|` of the optimal pair is known; per pass it
//! removes either the nodes of `S` whose out-degree into `T` is at most
//! `(1+ε)·|E(S,T)|/|S|`, or symmetrically the low in-degree nodes of `T` —
//! choosing the side by comparing the current `|S|/|T|` against `c` (the
//! paper's simplification, §4.3, which is faster than the max-degree rule
//! because only one side's removal set is needed per pass).
//!
//! In practice `c` is swept over powers of a resolution `δ > 1`
//! ([`sweep_c`]); the paper notes this costs at most an extra factor `δ`
//! in the approximation.
//!
//! All variants run through the shared [peeling kernel](crate::kernel) as
//! two-sided states: the
//! [`DirectedSizesPolicy`] (or the
//! naive [`DirectedNaivePolicy`]
//! ablation) over a streaming, decremental-CSR, or parallel-CSR
//! [`DegreeStore`](crate::kernel::DegreeStore).

use dsg_graph::stream::EdgeStream;
use dsg_graph::NodeSet;

use crate::kernel::{
    CsrDirectedStore, DirectedNaivePolicy, DirectedSizesPolicy, KernelRun,
    ParallelCsrDirectedStore, PeelingKernel, StreamingDirectedStore,
};
use crate::result::DirectedPassStats;

/// The outcome of one directed run at a fixed ratio `c`.
#[derive(Clone, Debug)]
pub struct DirectedRun {
    /// The best source-side set `S̃`.
    pub best_s: NodeSet,
    /// The best target-side set `T̃`.
    pub best_t: NodeSet,
    /// `ρ(S̃, T̃)`.
    pub best_density: f64,
    /// Number of passes over the edge stream.
    pub passes: u32,
    /// The ratio `c` this run assumed.
    pub c: f64,
    /// Per-pass trace (drives Figure 6.5).
    pub trace: Vec<DirectedPassStats>,
}

impl DirectedRun {
    fn from_kernel(run: KernelRun, c: f64) -> Self {
        let trace = run
            .trace
            .iter()
            .map(|r| DirectedPassStats {
                pass: r.pass,
                s_size: r.side_sizes[0],
                t_size: r.side_sizes[1],
                edges: r.total_weight as usize,
                density: r.density,
                removed_from_s: r.side == 0,
                removed: r.removed,
            })
            .collect();
        let mut sides = run.best_sides.into_iter();
        DirectedRun {
            best_s: sides.next().expect("side S"),
            best_t: sides.next().expect("side T"),
            best_density: run.best_density,
            passes: run.passes,
            c,
            trace,
        }
    }
}

/// Runs Algorithm 3 at a fixed ratio `c` over a directed edge stream
/// (`(u, v, w)` is the arc `u -> v`; `w` generalizes edge multiplicity and
/// is 1 for the paper's unweighted setting).
pub fn approx_densest_directed<S: EdgeStream + ?Sized>(
    stream: &mut S,
    c: f64,
    epsilon: f64,
) -> DirectedRun {
    let mut policy = DirectedSizesPolicy::new(c, epsilon);
    let mut store = StreamingDirectedStore::new(stream);
    DirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy), c)
}

/// The *naive* side-selection variant that §4.3 describes and rejects:
/// compute **both** removal candidate sets every pass, compare the
/// maximum out-degree `E(i*, T)` over `A(S)` with the maximum in-degree
/// `E(S, j*)` over `B(T)`, and remove `A(S)` iff
/// `E(S, j*) ≥ c · E(i*, T)`.
///
/// Same `(2+2ε)` guarantee, but each pass pays for two candidate sets —
/// the paper's argument for the sizes-based rule of
/// [`approx_densest_directed`]. Kept as an ablation.
pub fn approx_densest_directed_naive<S: EdgeStream + ?Sized>(
    stream: &mut S,
    c: f64,
    epsilon: f64,
) -> DirectedRun {
    let mut policy = DirectedNaivePolicy::new(c, epsilon);
    let mut store = StreamingDirectedStore::new(stream);
    DirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy), c)
}

/// In-memory Algorithm 3 over a directed CSR snapshot with decremental
/// degree maintenance — produces exactly the same run as
/// [`approx_densest_directed`] on a stream of the same graph, in
/// `O(m + n·passes)` total instead of one full edge scan per pass.
pub fn approx_densest_directed_csr(
    g: &dsg_graph::CsrDirected,
    c: f64,
    epsilon: f64,
) -> DirectedRun {
    let mut policy = DirectedSizesPolicy::new(c, epsilon);
    let mut store = CsrDirectedStore::new(g);
    DirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy), c)
}

/// Multi-threaded in-memory Algorithm 3 with `threads` workers per pass.
///
/// Directed graphs are unweighted, so every degree counter is
/// integer-valued and the parallel run is bit-identical to
/// [`approx_densest_directed_csr`] at every thread count.
pub fn approx_densest_directed_csr_parallel(
    g: &dsg_graph::CsrDirected,
    c: f64,
    epsilon: f64,
    threads: usize,
) -> DirectedRun {
    let mut policy = DirectedSizesPolicy::new(c, epsilon);
    let mut store = ParallelCsrDirectedStore::new(g, threads);
    DirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy), c)
}

/// Two-level sweep (extension beyond the paper): a coarse δ grid followed
/// by a fine re-sweep of the interval `[best_c/δ, best_c·δ]` at resolution
/// `δ^(1/4)`. The paper bounds the grid cost at a factor δ; refining
/// around the winner recovers most of that factor for 8 extra runs.
pub fn sweep_c_refined_csr(g: &dsg_graph::CsrDirected, delta: f64, epsilon: f64) -> SweepResult {
    let coarse = sweep_c_csr(g, delta, epsilon);
    let fine_step = delta.powf(0.25);
    let center = coarse.best.c;
    let mut best = coarse.best.clone();
    let mut per_c = coarse.per_c.clone();
    for i in -4i32..=4 {
        if i == 0 {
            continue; // center already measured by the coarse sweep
        }
        let c = center * fine_step.powi(i);
        let run = approx_densest_directed_csr(g, c, epsilon);
        per_c.push((c, run.best_density, run.passes));
        if run.best_density > best.best_density {
            best = run;
        }
    }
    per_c.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ratios"));
    SweepResult { best, per_c }
}

/// CSR version of [`sweep_c`].
pub fn sweep_c_csr(g: &dsg_graph::CsrDirected, delta: f64, epsilon: f64) -> SweepResult {
    sweep_grid(g.num_nodes(), delta, |c| {
        approx_densest_directed_csr(g, c, epsilon)
    })
}

/// Multi-threaded CSR sweep: every per-`c` run uses the parallel backend.
/// Bit-identical to [`sweep_c_csr`] at every thread count.
pub fn sweep_c_csr_parallel(
    g: &dsg_graph::CsrDirected,
    delta: f64,
    epsilon: f64,
    threads: usize,
) -> SweepResult {
    sweep_grid(g.num_nodes(), delta, |c| {
        approx_densest_directed_csr_parallel(g, c, epsilon, threads)
    })
}

/// [`sweep_c_csr`] with a per-ratio
/// [`PeelTrace`](crate::kernel::PeelTrace) capture — the seed state of
/// incremental re-peeling ([`crate::incremental`]). Returns the sweep
/// plus `(c, trace)` pairs in grid order.
pub fn sweep_c_csr_traced(
    g: &dsg_graph::CsrDirected,
    delta: f64,
    epsilon: f64,
) -> (SweepResult, Vec<(f64, crate::kernel::PeelTrace)>) {
    let mut traces = Vec::new();
    let sweep = sweep_grid(g.num_nodes(), delta, |c| {
        let mut store = CsrDirectedStore::new(g);
        let mut policy = DirectedSizesPolicy::new(c, epsilon);
        let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
        traces.push((c, trace));
        DirectedRun::from_kernel(run, c)
    });
    (sweep, traces)
}

/// [`sweep_c_csr_parallel`] with a per-ratio
/// [`PeelTrace`](crate::kernel::PeelTrace) capture.
pub fn sweep_c_csr_parallel_traced(
    g: &dsg_graph::CsrDirected,
    delta: f64,
    epsilon: f64,
    threads: usize,
) -> (SweepResult, Vec<(f64, crate::kernel::PeelTrace)>) {
    let mut traces = Vec::new();
    let sweep = sweep_grid(g.num_nodes(), delta, |c| {
        let mut store = ParallelCsrDirectedStore::new(g, threads);
        let mut policy = DirectedSizesPolicy::new(c, epsilon);
        let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
        traces.push((c, trace));
        DirectedRun::from_kernel(run, c)
    });
    (sweep, traces)
}

/// The outcome of a sweep over `c`.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The best run across all tried ratios.
    pub best: DirectedRun,
    /// `(c, density, passes)` per tried ratio, in increasing `c` order —
    /// the series of Figures 6.4 and 6.6.
    pub per_c: Vec<(f64, f64, u32)>,
}

/// Shared δ-grid driver: tries `c = δ^i` for `i ∈ [-levels, levels]`
/// covering `[1/n, n]` and keeps the densest run.
fn sweep_grid(
    num_nodes: usize,
    delta: f64,
    mut run_at: impl FnMut(f64) -> DirectedRun,
) -> SweepResult {
    assert!(delta > 1.0, "resolution delta must exceed 1");
    let n = num_nodes.max(2) as f64;
    let levels = (n.ln() / delta.ln()).ceil() as i32;
    let mut best: Option<DirectedRun> = None;
    let mut per_c = Vec::with_capacity((2 * levels + 1) as usize);
    for i in -levels..=levels {
        let c = delta.powi(i);
        let run = run_at(c);
        per_c.push((c, run.best_density, run.passes));
        let replace = match &best {
            None => true,
            Some(b) => run.best_density > b.best_density,
        };
        if replace {
            best = Some(run);
        }
    }
    SweepResult {
        best: best.expect("at least one ratio is always tried"),
        per_c,
    }
}

/// Sweeps `c` over powers of `delta` covering `[1/n, n]` and returns the
/// best run (§4.3: "choose a resolution δ > 1 and try c at different
/// powers of δ"; the approximation degrades by at most a factor `δ`).
pub fn sweep_c<S: EdgeStream + ?Sized>(stream: &mut S, delta: f64, epsilon: f64) -> SweepResult {
    let num_nodes = stream.num_nodes() as usize;
    sweep_grid(num_nodes, delta, |c| {
        approx_densest_directed(stream, c, epsilon)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::EdgeList;

    fn run(list: &EdgeList, c: f64, eps: f64) -> DirectedRun {
        let mut s = MemoryStream::new(list.clone());
        approx_densest_directed(&mut s, c, eps)
    }

    #[test]
    fn complete_bipartite_exact_at_right_c() {
        // All arcs from {0..4} to {5, 6}: optimum ρ = 10/sqrt(10), c = 5/2.
        let mut g = EdgeList::new_directed(7);
        for u in 0..5 {
            for v in 5..7 {
                g.push(u, v);
            }
        }
        let r = run(&g, 2.5, 0.0);
        let opt = 10.0 / 10.0f64.sqrt();
        assert!(
            r.best_density + 1e-9 >= opt / 2.0,
            "density {} below bound",
            r.best_density
        );
        // The first pass already sees S=T=V whose density is below opt;
        // peeling should recover something close to the planted bipartite.
        assert!(r.best_density <= opt + 1e-9);
    }

    #[test]
    fn guarantee_vs_brute_force() {
        use dsg_graph::CsrDirected;
        for seed in 0..6 {
            let list = gen::directed_gnp(10, 0.3, seed);
            if list.num_edges() == 0 {
                continue;
            }
            let csr = CsrDirected::from_edge_list(&list);
            let (_, _, opt) = dsg_flow::brute_force_densest_directed(&csr);
            let mut stream = MemoryStream::new(list.clone());
            let sweep = sweep_c(&mut stream, 1.5, 0.1);
            // δ·(2+2ε) overall guarantee.
            let bound = opt / (1.5 * (2.0 + 2.0 * 0.1));
            assert!(
                sweep.best.best_density + 1e-9 >= bound,
                "seed {seed}: {} < {bound} (opt {opt})",
                sweep.best.best_density
            );
            assert!(sweep.best.best_density <= opt + 1e-9);
        }
    }

    #[test]
    fn celebrity_graph_finds_asymmetric_pair() {
        // Followers -> celebrities: the optimal pair is highly asymmetric
        // (S = many followers, T = few celebrities, density ≈ 31), which
        // the sweep must recover regardless of which grid point wins.
        let g = gen::skewed_celebrity(400, 4, 0.8, 200, 5);
        let mut stream = MemoryStream::new(g);
        let sweep = sweep_c(&mut stream, 2.0, 1.0);
        assert!(
            sweep.best.best_s.len() > 10 * sweep.best.best_t.len().max(1),
            "expected |S| ≫ |T|, got {} vs {}",
            sweep.best.best_s.len(),
            sweep.best.best_t.len()
        );
        // ≈ 0.8 * 396 * 4 / sqrt(396 * 4) ≈ 31.8; within the (2+2ε)δ factor.
        assert!(
            sweep.best.best_density > 31.8 / 8.0,
            "density {}",
            sweep.best.best_density
        );
    }

    #[test]
    fn planted_directed_pair_recovered_approximately() {
        let (g, s_star, t_star) = gen::directed_planted(300, 0.004, 30, 10, 0.9, 11);
        let mut stream = MemoryStream::new(g);
        let sweep = sweep_c(&mut stream, 2.0, 0.5);
        let planted_density_lb = 0.8 * 0.9 * (30.0f64 * 10.0).sqrt();
        assert!(
            sweep.best.best_density >= planted_density_lb / (2.0 * (2.0 + 1.0)),
            "density {}",
            sweep.best.best_density
        );
        // Best S should overlap the planted S heavily.
        let overlap = sweep.best.best_s.intersection_len(&s_star);
        assert!(overlap >= 20, "S overlap only {overlap}");
        let overlap_t = sweep.best.best_t.intersection_len(&t_star);
        assert!(overlap_t >= 7, "T overlap only {overlap_t}");
    }

    #[test]
    fn passes_bounded() {
        let g = gen::rmat(
            10,
            8000,
            gen::RmatParams::graph500(),
            dsg_graph::GraphKind::Directed,
            3,
        );
        let r = run(&g, 1.0, 1.0);
        // O(log_{1+eps} n) for each side: generous bound 2*log2(1024)+4.
        assert!(r.passes <= 24, "{} passes", r.passes);
    }

    #[test]
    fn alternation_matches_c() {
        // With c = 1 removal alternates to keep |S| ≈ |T|.
        let g = gen::directed_gnp(100, 0.05, 7);
        let r = run(&g, 1.0, 0.5);
        let from_s: usize = r.trace.iter().filter(|p| p.removed_from_s).count();
        let from_t = r.trace.len() - from_s;
        assert!(
            from_s > 0 && from_t > 0,
            "both sides must shrink (S:{from_s} T:{from_t})"
        );
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::new_directed(5);
        let r = run(&g, 1.0, 0.5);
        assert_eq!(r.best_density, 0.0);
        // One pass: density 0, everything at threshold 0 is removed.
        assert_eq!(r.passes, 1);
    }

    #[test]
    fn trace_sides_shrink() {
        let g = gen::directed_gnp(200, 0.03, 13);
        let r = run(&g, 1.0, 1.0);
        for w in r.trace.windows(2) {
            if w[0].removed_from_s {
                assert_eq!(w[1].s_size, w[0].s_size - w[0].removed);
                assert_eq!(w[1].t_size, w[0].t_size);
            } else {
                assert_eq!(w[1].t_size, w[0].t_size - w[0].removed);
                assert_eq!(w[1].s_size, w[0].s_size);
            }
        }
    }

    #[test]
    fn csr_matches_stream_exactly() {
        use dsg_graph::CsrDirected;
        for seed in 0..4 {
            let list = gen::directed_gnp(150, 0.03, seed);
            let csr = CsrDirected::from_edge_list(&list);
            for (c, eps) in [(1.0, 0.0), (0.5, 0.5), (4.0, 1.5)] {
                let mut stream = MemoryStream::new(list.clone());
                let a = approx_densest_directed(&mut stream, c, eps);
                let b = approx_densest_directed_csr(&csr, c, eps);
                assert_eq!(a.passes, b.passes, "seed {seed} c {c} eps {eps}");
                assert!((a.best_density - b.best_density).abs() < 1e-9);
                assert_eq!(a.best_s.to_vec(), b.best_s.to_vec());
                assert_eq!(a.best_t.to_vec(), b.best_t.to_vec());
                for (x, y) in a.trace.iter().zip(&b.trace) {
                    assert_eq!(x.s_size, y.s_size);
                    assert_eq!(x.t_size, y.t_size);
                    assert_eq!(x.edges, y.edges);
                    assert_eq!(x.removed, y.removed);
                    assert_eq!(x.removed_from_s, y.removed_from_s);
                }
            }
        }
    }

    #[test]
    fn parallel_csr_is_bit_identical() {
        use dsg_graph::CsrDirected;
        for seed in 0..3 {
            let list = gen::directed_gnp(160, 0.03, seed);
            let csr = CsrDirected::from_edge_list(&list);
            for (c, eps) in [(1.0, 0.0), (0.5, 0.5), (4.0, 1.5)] {
                let serial = approx_densest_directed_csr(&csr, c, eps);
                for threads in [1, 2, 4, 6] {
                    let par = approx_densest_directed_csr_parallel(&csr, c, eps, threads);
                    assert_eq!(serial.passes, par.passes, "seed {seed} c {c} t {threads}");
                    assert_eq!(serial.best_density.to_bits(), par.best_density.to_bits());
                    assert_eq!(serial.best_s.to_vec(), par.best_s.to_vec());
                    assert_eq!(serial.best_t.to_vec(), par.best_t.to_vec());
                    assert_eq!(serial.trace, par.trace);
                }
            }
        }
    }

    #[test]
    fn refined_sweep_never_worse_than_coarse() {
        use dsg_graph::CsrDirected;
        for seed in 0..4 {
            let list = gen::directed_gnp(80, 0.06, seed);
            let csr = CsrDirected::from_edge_list(&list);
            let coarse = sweep_c_csr(&csr, 4.0, 0.5);
            let refined = sweep_c_refined_csr(&csr, 4.0, 0.5);
            assert!(refined.best.best_density + 1e-12 >= coarse.best.best_density);
            // 8 extra ratios measured.
            assert_eq!(refined.per_c.len(), coarse.per_c.len() + 8);
            // Ratios stay sorted.
            assert!(refined.per_c.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn sweep_csr_matches_sweep_stream() {
        use dsg_graph::CsrDirected;
        let list = gen::directed_gnp(100, 0.04, 8);
        let csr = CsrDirected::from_edge_list(&list);
        let mut stream = MemoryStream::new(list);
        let a = sweep_c(&mut stream, 2.0, 1.0);
        let b = sweep_c_csr(&csr, 2.0, 1.0);
        assert_eq!(a.per_c.len(), b.per_c.len());
        for (x, y) in a.per_c.iter().zip(&b.per_c) {
            assert!((x.0 - y.0).abs() < 1e-12);
            assert!((x.1 - y.1).abs() < 1e-9);
            assert_eq!(x.2, y.2);
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        use dsg_graph::CsrDirected;
        let list = gen::directed_gnp(90, 0.05, 4);
        let csr = CsrDirected::from_edge_list(&list);
        let a = sweep_c_csr(&csr, 2.0, 0.5);
        let b = sweep_c_csr_parallel(&csr, 2.0, 0.5, 4);
        assert_eq!(a.per_c.len(), b.per_c.len());
        for (x, y) in a.per_c.iter().zip(&b.per_c) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
            assert_eq!(x.2, y.2);
        }
        assert_eq!(a.best.best_s.to_vec(), b.best.best_s.to_vec());
    }

    #[test]
    fn naive_rule_satisfies_same_guarantee() {
        use dsg_graph::CsrDirected;
        for seed in 0..5 {
            let list = gen::directed_gnp(10, 0.3, seed);
            if list.num_edges() == 0 {
                continue;
            }
            let csr = CsrDirected::from_edge_list(&list);
            let (_, _, opt) = dsg_flow::brute_force_densest_directed(&csr);
            // Try the naive variant across a small c grid.
            let mut best = 0.0f64;
            for i in -4..=4 {
                let c = 1.5f64.powi(i);
                let mut stream = MemoryStream::new(list.clone());
                let run = approx_densest_directed_naive(&mut stream, c, 0.1);
                best = best.max(run.best_density);
                // Certificate consistency.
                let recomputed = csr.density_of(&run.best_s, &run.best_t);
                assert!((recomputed - run.best_density).abs() < 1e-9);
            }
            assert!(
                best + 1e-9 >= opt / (1.5 * (2.0 + 0.2)),
                "seed {seed}: naive rule found {best} vs opt {opt}"
            );
        }
    }

    #[test]
    fn naive_and_sizes_rules_find_comparable_density() {
        let g = gen::skewed_celebrity(300, 4, 0.7, 400, 3);
        let mut s1 = MemoryStream::new(g.clone());
        let sizes = approx_densest_directed(&mut s1, 8.0, 0.5);
        let mut s2 = MemoryStream::new(g);
        let naive = approx_densest_directed_naive(&mut s2, 8.0, 0.5);
        // Same guarantee; in practice both land near the celebrity core.
        let ratio = sizes.best_density / naive.best_density;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "sizes {} vs naive {}",
            sizes.best_density,
            naive.best_density
        );
    }

    #[test]
    fn sweep_reports_all_ratios() {
        let g = gen::directed_gnp(64, 0.05, 3);
        let mut stream = MemoryStream::new(g);
        let sweep = sweep_c(&mut stream, 2.0, 1.0);
        // Levels = ceil(ln 64 / ln 2) = 6 -> 13 ratios.
        assert_eq!(sweep.per_c.len(), 13);
        // Ratios increasing.
        assert!(sweep.per_c.windows(2).all(|w| w[0].0 < w[1].0));
        // Best density equals the max of the series.
        let max = sweep
            .per_c
            .iter()
            .map(|&(_, d, _)| d)
            .fold(0.0f64, f64::max);
        assert!((sweep.best.best_density - max).abs() < 1e-12);
    }
}
