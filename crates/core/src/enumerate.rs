//! Iterative enumeration of node-disjoint dense subgraphs.
//!
//! §6 of the paper: *"It is easy to adapt our algorithm to iteratively
//! enumerate node-disjoint (approximately) densest subgraphs in the
//! graph, with the guarantee that at each step of the enumeration, the
//! algorithm will produce an approximate solution on the residual
//! graph."* This module is that adaptation — the community-mining
//! workflow of the paper's application (1).

use dsg_graph::{CsrUndirected, NodeSet};

use crate::undirected::approx_densest_csr;

/// One extracted dense community.
#[derive(Clone, Debug)]
pub struct Community {
    /// Node set in the *original* graph's id space.
    pub nodes: NodeSet,
    /// Density of the community in the residual graph it was extracted
    /// from (a (2+2ε)-approximation of that residual's optimum).
    pub density: f64,
    /// Extraction round (1-based).
    pub round: u32,
}

/// Options for the enumeration loop.
#[derive(Clone, Copy, Debug)]
pub struct EnumerateOptions {
    /// Approximation parameter ε of each extraction.
    pub epsilon: f64,
    /// Stop once the extracted density falls below this value.
    pub min_density: f64,
    /// Stop after this many communities.
    pub max_communities: usize,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            epsilon: 0.5,
            min_density: 1.0,
            max_communities: 16,
        }
    }
}

/// Extracts node-disjoint dense subgraphs greedily: find an approximately
/// densest set, remove it, recurse on the residual graph.
///
/// Each returned community's density is a `(2+2ε)`-approximation to the
/// optimum of the residual graph it was found in (not of the original
/// graph — the residual optimum shrinks as earlier communities are
/// removed, which is the guarantee the paper states).
pub fn enumerate_dense_subgraphs(g: &CsrUndirected, opts: EnumerateOptions) -> Vec<Community> {
    assert!(opts.epsilon >= 0.0);
    let n = g.num_nodes();
    let mut communities = Vec::new();
    // Current residual graph and the map from residual ids to original.
    let mut current = g.clone();
    let mut id_map: Vec<u32> = (0..n as u32).collect();

    for round in 1..=opts.max_communities as u32 {
        if current.num_edges() == 0 {
            break;
        }
        let run = approx_densest_csr(&current, opts.epsilon);
        if run.best_density < opts.min_density || run.best_set.is_empty() {
            break;
        }
        let original = NodeSet::from_iter(n, run.best_set.iter().map(|u| id_map[u as usize]));
        communities.push(Community {
            nodes: original,
            density: run.best_density,
            round,
        });

        // Residual graph: everything except the extracted set.
        let mut residual = NodeSet::full(current.num_nodes());
        residual.difference_with(&run.best_set);
        if residual.is_empty() {
            break;
        }
        let (sub, old_ids) = current.induced_subgraph(&residual);
        id_map = old_ids.iter().map(|&u| id_map[u as usize]).collect();
        current = CsrUndirected::from_edge_list(&sub);
    }
    communities
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    #[test]
    fn two_planted_cliques_found_in_density_order() {
        // K12 (density 5.5) and K8 (density 3.5) in a sparse background.
        // A small ε keeps the removal threshold tight enough that the two
        // cliques are peeled in separate passes (at ε = 0.25 the threshold
        // 2(1+ε)ρ jumps past both at once and they merge into one
        // community — correct but coarser).
        let mut g = gen::clique(12);
        g.disjoint_union(&gen::clique(8));
        g.disjoint_union(&gen::gnp(300, 0.005, 3));
        let csr = CsrUndirected::from_edge_list(&g);
        let comms = enumerate_dense_subgraphs(
            &csr,
            EnumerateOptions {
                epsilon: 0.05,
                min_density: 1.5,
                max_communities: 10,
            },
        );
        assert!(comms.len() >= 2, "found {} communities", comms.len());
        // First community: the K12.
        assert_eq!(comms[0].nodes.to_vec(), (0..12).collect::<Vec<_>>());
        assert!((comms[0].density - 5.5).abs() < 1e-9);
        // Second: the K8.
        assert_eq!(comms[1].nodes.to_vec(), (12..20).collect::<Vec<_>>());
        assert!((comms[1].density - 3.5).abs() < 1e-9);
    }

    #[test]
    fn communities_are_disjoint() {
        let (list, _) = gen::powerlaw_with_communities(
            1200,
            2.4,
            6.0,
            100.0,
            &[(30, 0.8), (40, 0.6), (50, 0.4)],
            9,
        );
        let csr = CsrUndirected::from_edge_list(&list);
        let comms = enumerate_dense_subgraphs(&csr, EnumerateOptions::default());
        assert!(!comms.is_empty());
        for i in 0..comms.len() {
            for j in (i + 1)..comms.len() {
                assert_eq!(
                    comms[i].nodes.intersection_len(&comms[j].nodes),
                    0,
                    "communities {i} and {j} overlap"
                );
            }
        }
        // Rounds are sequential.
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.round, i as u32 + 1);
        }
    }

    #[test]
    fn respects_min_density_and_max_count() {
        let g = gen::gnp(200, 0.03, 5);
        let csr = CsrUndirected::from_edge_list(&g);
        let comms = enumerate_dense_subgraphs(
            &csr,
            EnumerateOptions {
                epsilon: 0.5,
                min_density: 1_000.0, // impossible
                max_communities: 10,
            },
        );
        assert!(comms.is_empty());

        let comms = enumerate_dense_subgraphs(
            &csr,
            EnumerateOptions {
                epsilon: 0.5,
                min_density: 0.1,
                max_communities: 2,
            },
        );
        assert!(comms.len() <= 2);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let csr = CsrUndirected::from_edge_list(&dsg_graph::EdgeList::new_undirected(10));
        assert!(enumerate_dense_subgraphs(&csr, EnumerateOptions::default()).is_empty());
    }
}
