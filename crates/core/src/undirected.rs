//! **Algorithm 1** — the `(2+2ε)`-approximation for undirected graphs.
//!
//! ```text
//! S̃, S ← V
//! while S ≠ ∅:
//!     A(S) ← { i ∈ S : deg_S(i) ≤ 2(1+ε)·ρ(S) }
//!     S ← S \ A(S)
//!     if ρ(S) > ρ(S̃): S̃ ← S
//! return S̃
//! ```
//!
//! Guarantees (Lemmas 3 and 4 of the paper): `ρ(S̃) ≥ ρ*(G)/(2+2ε)` and at
//! most `O(log_{1+ε} n)` iterations, each of which is a single pass over
//! the edge stream using `O(n)` memory (the liveness bits plus the degree
//! counters of the [`DegreeOracle`]).
//!
//! Two implementations:
//! * [`approx_densest`] / [`approx_densest_with_oracle`] — the streaming
//!   form: one pass per iteration recomputes live degrees from scratch.
//! * [`approx_densest_csr`] — the in-memory form: degrees are maintained
//!   decrementally while peeling, which is asymptotically cheaper
//!   (`O(m + n)` total) and produces the **identical** sequence of sets.
//!
//! Note on `ε = 0`: the paper remarks termination is not guaranteed; with
//! our (paper-faithful) non-strict `≤` comparison the minimum-degree node
//! always satisfies `deg ≤ 2ρ(S)`, so at least one node is removed per
//! pass and `ε = 0` terminates (in up to `n` passes) with Charikar-quality
//! output. The sketched oracle can over-estimate every degree; the
//! implementation then falls back to removing the minimum-estimate node to
//! preserve termination.

use dsg_graph::stream::EdgeStream;
use dsg_graph::{density, CsrUndirected, NodeSet};

use crate::oracle::{DegreeOracle, ExactDegreeOracle};
use crate::result::{PassStats, UndirectedRun};

/// Runs Algorithm 1 over an edge stream with exact degree counters.
///
/// `epsilon ≥ 0`; larger values reduce passes at the cost of the
/// `(2+2ε)` approximation factor.
///
/// ```
/// use dsg_graph::gen;
/// use dsg_graph::stream::MemoryStream;
/// use dsg_core::undirected::approx_densest;
///
/// // K8 (density 3.5) plus a long path.
/// let mut g = gen::clique(8);
/// g.disjoint_union(&gen::path(100));
/// let mut stream = MemoryStream::new(g);
/// let run = approx_densest(&mut stream, 0.5);
/// assert_eq!(run.best_set.len(), 8);
/// assert!((run.best_density - 3.5).abs() < 1e-9);
/// ```
pub fn approx_densest<S: EdgeStream + ?Sized>(stream: &mut S, epsilon: f64) -> UndirectedRun {
    let mut oracle = ExactDegreeOracle::new(stream.num_nodes());
    approx_densest_with_oracle(stream, epsilon, &mut oracle)
}

/// Runs Algorithm 1 over an edge stream with a caller-supplied degree
/// oracle (exact or sketched — §5.1 of the paper).
///
/// The density `ρ(S)` is always computed from the *exact* live edge count
/// (a single counter); only the per-node degrees go through the oracle.
pub fn approx_densest_with_oracle<S, O>(stream: &mut S, epsilon: f64, oracle: &mut O) -> UndirectedRun
where
    S: EdgeStream + ?Sized,
    O: DegreeOracle + ?Sized,
{
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = stream.num_nodes();
    let mut alive = NodeSet::full(n as usize);
    let mut best_set = alive.clone();
    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut trace = Vec::new();
    let mut pass = 0u32;
    let mut removal_buf: Vec<u32> = Vec::new();

    while !alive.is_empty() {
        pass += 1;
        // One streaming pass: live-edge weight (exact) + live degrees.
        oracle.reset();
        let mut total_w = 0.0f64;
        {
            let alive_ref = &alive;
            let oracle_ref = &mut *oracle;
            let total_ref = &mut total_w;
            stream.for_each_edge(&mut |u, v, w| {
                if u != v && alive_ref.contains(u) && alive_ref.contains(v) {
                    oracle_ref.record(u, v, w);
                    *total_ref += w;
                }
            });
        }
        let rho = density::undirected(total_w, alive.len());
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_set = alive.clone();
            best_pass = pass;
        }
        let threshold = density::undirected_threshold(rho, epsilon);

        removal_buf.clear();
        for u in alive.iter() {
            if oracle.degree(u) <= threshold {
                removal_buf.push(u);
            }
        }
        if removal_buf.is_empty() {
            // Only reachable with biased (over-estimating, e.g. Count-Min)
            // sketched degrees. Force geometric progress with Algorithm
            // 2's rule: evict the ε/(1+ε)·|S| smallest-estimate nodes
            // (at least one), which preserves the O(log_{1+ε} n) pass
            // bound no matter how biased the oracle is.
            let mut by_estimate: Vec<(f64, u32)> =
                alive.iter().map(|u| (oracle.degree(u), u)).collect();
            by_estimate.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("degree estimates are never NaN")
                    .then(a.1.cmp(&b.1))
            });
            let target = ((epsilon / (1.0 + epsilon)) * alive.len() as f64).ceil() as usize;
            let target = target.clamp(1, alive.len());
            removal_buf.extend(by_estimate[..target].iter().map(|&(_, u)| u));
        }
        trace.push(PassStats {
            pass,
            nodes: alive.len(),
            edge_weight: total_w,
            density: rho,
            threshold,
            removed: removal_buf.len(),
        });
        for &u in &removal_buf {
            alive.remove(u);
        }
    }

    UndirectedRun {
        best_set,
        best_density,
        best_pass,
        passes: pass,
        trace,
    }
}

/// Runs Algorithm 1 on an in-memory CSR graph with decremental degree
/// maintenance.
///
/// Produces exactly the same sequence of sets (hence the same result and
/// trace) as [`approx_densest`] on a stream of the same graph, but in
/// `O(m + n)` total work instead of one full edge scan per pass.
pub fn approx_densest_csr(g: &CsrUndirected, epsilon: f64) -> UndirectedRun {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = g.num_nodes();
    let mut alive = NodeSet::full(n);
    let mut deg: Vec<f64> = (0..n as u32).map(|u| g.weighted_degree(u)).collect();
    // Self-loops are excluded from the induced-degree semantics of the
    // streaming variant; subtract them up front.
    let mut total_w = 0.0f64;
    for u in 0..n as u32 {
        for (v, w) in g.neighbors_weighted(u) {
            if v == u {
                deg[u as usize] -= w;
            } else {
                total_w += w;
            }
        }
    }
    total_w /= 2.0;

    let mut best_set = alive.clone();
    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut trace = Vec::new();
    let mut pass = 0u32;
    let mut in_removal = vec![false; n];
    let mut removal_buf: Vec<u32> = Vec::new();

    while !alive.is_empty() {
        pass += 1;
        let mut rho = density::undirected(total_w, alive.len());
        let mut threshold = density::undirected_threshold(rho, epsilon);

        removal_buf.clear();
        for u in alive.iter() {
            if deg[u as usize] <= threshold {
                removal_buf.push(u);
                in_removal[u as usize] = true;
            }
        }
        if removal_buf.is_empty() {
            // Only reachable through floating-point drift of the
            // decrementally maintained degrees (weighted graphs): rebuild
            // the exact state — which is what the streaming variant holds
            // every pass — and retry.
            total_w = 0.0;
            for u in alive.iter() {
                let mut d = 0.0;
                for (v, w) in g.neighbors_weighted(u) {
                    if v != u && alive.contains(v) {
                        d += w;
                        total_w += w;
                    }
                }
                deg[u as usize] = d;
            }
            total_w /= 2.0;
            rho = density::undirected(total_w, alive.len());
            threshold = density::undirected_threshold(rho, epsilon);
            for u in alive.iter() {
                if deg[u as usize] <= threshold {
                    removal_buf.push(u);
                    in_removal[u as usize] = true;
                }
            }
        }
        assert!(!removal_buf.is_empty(), "exact degrees always remove ≥ 1 node");
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_set = alive.clone();
            best_pass = pass;
        }
        trace.push(PassStats {
            pass,
            nodes: alive.len(),
            edge_weight: total_w,
            density: rho,
            threshold,
            removed: removal_buf.len(),
        });

        // Decrement neighbor degrees and the live edge weight.
        for &u in &removal_buf {
            for (v, w) in g.neighbors_weighted(u) {
                if v != u && alive.contains(v) {
                    if in_removal[v as usize] {
                        // Intra-batch edge: visited from both sides.
                        total_w -= w * 0.5;
                    } else {
                        total_w -= w;
                        deg[v as usize] -= w;
                    }
                }
            }
        }
        for &u in &removal_buf {
            alive.remove(u);
            deg[u as usize] = 0.0;
            in_removal[u as usize] = false;
        }
        // Guard against floating-point drift on weighted graphs.
        if total_w < 0.0 {
            total_w = 0.0;
        }
    }

    UndirectedRun {
        best_set,
        best_density,
        best_pass,
        passes: pass,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::EdgeList;

    fn run_stream(list: &EdgeList, eps: f64) -> UndirectedRun {
        let mut s = MemoryStream::new(list.clone());
        approx_densest(&mut s, eps)
    }

    #[test]
    fn clique_found_immediately() {
        let run = run_stream(&gen::clique(10), 0.5);
        assert!((run.best_density - 4.5).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 10);
        assert_eq!(run.best_pass, 1);
    }

    #[test]
    fn planted_clique_within_guarantee() {
        let pg = gen::planted_clique(300, 600, 20, 5);
        for eps in [0.0, 0.1, 0.5, 1.0, 2.0] {
            let run = run_stream(&pg.graph, eps);
            let bound = pg.planted_density / (2.0 + 2.0 * eps);
            assert!(
                run.best_density + 1e-9 >= bound,
                "eps {eps}: density {} below bound {bound}",
                run.best_density
            );
        }
    }

    #[test]
    fn pass_bound_holds() {
        // Lemma 4: at most ceil(log_{1+eps} n) + 1 passes.
        let pg = gen::planted_dense_subgraph(500, 2000, 25, 0.7, 9);
        for eps in [0.5, 1.0, 2.0] {
            let run = run_stream(&pg.graph, eps);
            let bound = ((500.0f64).ln() / (1.0 + eps).ln()).ceil() as u32 + 2;
            assert!(
                run.passes <= bound,
                "eps {eps}: {} passes > bound {bound}",
                run.passes
            );
        }
    }

    #[test]
    fn stream_and_csr_agree_exactly() {
        for seed in 0..5 {
            let list = gen::gnp(120, 0.08, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for eps in [0.0, 0.3, 1.0] {
                let a = run_stream(&list, eps);
                let b = approx_densest_csr(&csr, eps);
                assert_eq!(a.passes, b.passes, "seed {seed} eps {eps}");
                assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
                assert!((a.best_density - b.best_density).abs() < 1e-9);
                assert_eq!(a.trace.len(), b.trace.len());
                for (x, y) in a.trace.iter().zip(&b.trace) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.removed, y.removed);
                    assert!((x.density - y.density).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn weighted_stream_and_csr_agree() {
        let list = gen::weighted_powerlaw(60, 0.5, 500.0);
        let csr = CsrUndirected::from_edge_list(&list);
        let a = run_stream(&list, 1.0);
        let b = approx_densest_csr(&csr, 1.0);
        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-6);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let run = run_stream(&EdgeList::new_undirected(0), 0.5);
        assert_eq!(run.best_density, 0.0);
        assert_eq!(run.passes, 0);

        // Isolated nodes: density 0, one pass removes everything.
        let run = run_stream(&EdgeList::new_undirected(7), 0.5);
        assert_eq!(run.best_density, 0.0);
        assert_eq!(run.passes, 1);
        assert_eq!(run.trace[0].removed, 7);
    }

    #[test]
    fn single_edge() {
        let mut g = EdgeList::new_undirected(2);
        g.push(0, 1);
        let run = run_stream(&g, 0.5);
        assert!((run.best_density - 0.5).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        // The run on a graph with a self-loop must be identical to the run
        // on the same graph without it.
        let mut with_loop = EdgeList::new_undirected(3);
        with_loop.push(0, 0);
        with_loop.push(0, 1);
        let mut without_loop = EdgeList::new_undirected(3);
        without_loop.push(0, 1);
        let a = run_stream(&with_loop, 0.5);
        let b = run_stream(&without_loop, 0.5);
        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-12);
        assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
        // The self-loop contributes nothing to ρ(V) = 1/3.
        assert!((a.trace[0].density - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_terminates_on_regular_graph() {
        // On a regular graph every node's degree equals 2ρ, so the first
        // pass removes everything; best set is the full graph.
        let run = run_stream(&gen::circulant(50, 6), 0.0);
        assert_eq!(run.passes, 1);
        assert!((run.best_density - 3.0).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 50);
    }

    #[test]
    fn larger_epsilon_fewer_passes() {
        let pg = gen::planted_dense_subgraph(2000, 10_000, 50, 0.5, 13);
        let p0 = run_stream(&pg.graph, 0.1).passes;
        let p2 = run_stream(&pg.graph, 2.0).passes;
        assert!(p2 < p0, "eps 2.0 gave {p2} passes vs {p0} for eps 0.1");
    }

    #[test]
    fn trace_is_monotone_in_nodes() {
        let pg = gen::planted_dense_subgraph(400, 1500, 20, 0.8, 3);
        let run = run_stream(&pg.graph, 0.5);
        for w in run.trace.windows(2) {
            assert!(w[1].nodes < w[0].nodes, "node count must strictly shrink");
            assert_eq!(w[1].nodes, w[0].nodes - w[0].removed);
        }
        // Total removals equal n.
        let total: usize = run.trace.iter().map(|p| p.removed).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn best_pass_recorded() {
        // Two cliques joined by nothing: the bigger clique only becomes the
        // current set after sparse nodes are gone; best_pass tracks that.
        let mut g = gen::clique(12);
        g.disjoint_union(&gen::path(100));
        let run = run_stream(&g, 0.5);
        assert!((run.best_density - 5.5).abs() < 1e-9);
        assert!(run.best_pass >= 1);
        assert_eq!(run.best_set.len(), 12);
    }

    #[test]
    fn stream_pass_count_matches_reported() {
        let pg = gen::planted_dense_subgraph(300, 900, 15, 0.9, 1);
        let mut s = MemoryStream::new(pg.graph);
        let run = approx_densest(&mut s, 1.0);
        assert_eq!(s.passes(), run.passes as u64);
    }
}
