//! **Algorithm 1** — the `(2+2ε)`-approximation for undirected graphs.
//!
//! ```text
//! S̃, S ← V
//! while S ≠ ∅:
//!     A(S) ← { i ∈ S : deg_S(i) ≤ 2(1+ε)·ρ(S) }
//!     S ← S \ A(S)
//!     if ρ(S) > ρ(S̃): S̃ ← S
//! return S̃
//! ```
//!
//! Guarantees (Lemmas 3 and 4 of the paper): `ρ(S̃) ≥ ρ*(G)/(2+2ε)` and at
//! most `O(log_{1+ε} n)` iterations, each of which is a single pass over
//! the edge stream using `O(n)` memory (the liveness bits plus the degree
//! counters of the [`DegreeOracle`]).
//!
//! All variants are instantiations of the shared
//! [peeling kernel](crate::kernel) with the
//! [`ThresholdPolicy`] removal rule; they
//! differ only in the [`DegreeStore`](crate::kernel::DegreeStore) backend:
//!
//! * [`approx_densest`] / [`approx_densest_with_oracle`] — the streaming
//!   form: one pass per iteration recomputes live degrees from scratch.
//! * [`approx_densest_csr`] — the in-memory form: degrees are maintained
//!   decrementally while peeling, which is asymptotically cheaper
//!   (`O(m + n)` total) and produces the **identical** sequence of sets.
//! * [`approx_densest_csr_parallel`] — the multi-threaded in-memory form:
//!   chunked degree recomputation and removal-frontier application,
//!   deterministic at every thread count and bit-identical to the serial
//!   backends on unweighted graphs.
//!
//! Note on `ε = 0`: the paper remarks termination is not guaranteed; with
//! our (paper-faithful) non-strict `≤` comparison the minimum-degree node
//! always satisfies `deg ≤ 2ρ(S)`, so at least one node is removed per
//! pass and `ε = 0` terminates (in up to `n` passes) with Charikar-quality
//! output. The sketched oracle can over-estimate every degree; the
//! implementation then falls back to removing the minimum-estimate node to
//! preserve termination.

use dsg_graph::stream::EdgeStream;
use dsg_graph::CsrUndirected;

use crate::kernel::{
    CsrUndirectedStore, ParallelCsrUndirectedStore, PeelingKernel, StreamingUndirectedStore,
    ThresholdPolicy,
};
use crate::oracle::{DegreeOracle, ExactDegreeOracle};
use crate::result::UndirectedRun;

/// Runs Algorithm 1 over an edge stream with exact degree counters.
///
/// `epsilon ≥ 0`; larger values reduce passes at the cost of the
/// `(2+2ε)` approximation factor.
///
/// ```
/// use dsg_graph::gen;
/// use dsg_graph::stream::MemoryStream;
/// use dsg_core::undirected::approx_densest;
///
/// // K8 (density 3.5) plus a long path.
/// let mut g = gen::clique(8);
/// g.disjoint_union(&gen::path(100));
/// let mut stream = MemoryStream::new(g);
/// let run = approx_densest(&mut stream, 0.5);
/// assert_eq!(run.best_set.len(), 8);
/// assert!((run.best_density - 3.5).abs() < 1e-9);
/// ```
pub fn approx_densest<S: EdgeStream + ?Sized>(stream: &mut S, epsilon: f64) -> UndirectedRun {
    let mut oracle = ExactDegreeOracle::new(stream.num_nodes());
    approx_densest_with_oracle(stream, epsilon, &mut oracle)
}

/// Fallible form of [`approx_densest`] for file-backed streams.
///
/// A `TextFileStream`/`BinaryFileStream` whose file fails mid-run (I/O
/// error, or the file was modified between passes) aborts the failing
/// pass and parks the error on the stream
/// ([`EdgeStream::take_error`]); the run that was computed across it is
/// garbage. This wrapper checks the stream after the run and returns the
/// error instead of the invalid result. On always-valid streams
/// (`MemoryStream`) it never fails.
pub fn try_approx_densest<S: EdgeStream + ?Sized>(
    stream: &mut S,
    epsilon: f64,
) -> dsg_graph::Result<UndirectedRun> {
    let mut oracle = ExactDegreeOracle::new(stream.num_nodes());
    try_approx_densest_with_oracle(stream, epsilon, &mut oracle)
}

/// Fallible form of [`approx_densest_with_oracle`] — see
/// [`try_approx_densest`].
pub fn try_approx_densest_with_oracle<S, O>(
    stream: &mut S,
    epsilon: f64,
    oracle: &mut O,
) -> dsg_graph::Result<UndirectedRun>
where
    S: EdgeStream + ?Sized,
    O: DegreeOracle + ?Sized,
{
    let run = approx_densest_with_oracle(stream, epsilon, oracle);
    match stream.take_error() {
        Some(e) => Err(e),
        None => Ok(run),
    }
}

/// Runs Algorithm 1 over an edge stream with a caller-supplied degree
/// oracle (exact or sketched — §5.1 of the paper).
///
/// The density `ρ(S)` is always computed from the *exact* live edge count
/// (a single counter); only the per-node degrees go through the oracle.
pub fn approx_densest_with_oracle<S, O>(
    stream: &mut S,
    epsilon: f64,
    oracle: &mut O,
) -> UndirectedRun
where
    S: EdgeStream + ?Sized,
    O: DegreeOracle + ?Sized,
{
    let mut store = StreamingUndirectedStore::new(stream, oracle);
    let mut policy = ThresholdPolicy::new(epsilon);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// Runs Algorithm 1 on an in-memory CSR graph with decremental degree
/// maintenance.
///
/// Produces exactly the same sequence of sets (hence the same result and
/// trace) as [`approx_densest`] on a stream of the same graph, but in
/// `O(m + n)` total work instead of one full edge scan per pass.
pub fn approx_densest_csr(g: &CsrUndirected, epsilon: f64) -> UndirectedRun {
    let mut store = CsrUndirectedStore::new(g);
    let mut policy = ThresholdPolicy::new(epsilon);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// Runs Algorithm 1 on an in-memory CSR graph with `threads` worker
/// threads per pass.
///
/// Deterministic: the run is identical at every thread count, and
/// bit-identical to [`approx_densest_csr`] on unweighted graphs (on
/// weighted graphs degrees are recomputed per pass instead of maintained
/// decrementally, so traces agree only up to floating-point rounding).
pub fn approx_densest_csr_parallel(
    g: &CsrUndirected,
    epsilon: f64,
    threads: usize,
) -> UndirectedRun {
    let mut store = ParallelCsrUndirectedStore::new(g, threads);
    let mut policy = ThresholdPolicy::new(epsilon);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// [`approx_densest_csr`] with a [`PeelTrace`](crate::kernel::PeelTrace)
/// capture — the seed state of incremental re-peeling
/// ([`crate::incremental`]).
pub fn approx_densest_csr_traced(
    g: &CsrUndirected,
    epsilon: f64,
) -> (UndirectedRun, crate::kernel::PeelTrace) {
    let mut store = CsrUndirectedStore::new(g);
    let mut policy = ThresholdPolicy::new(epsilon);
    let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
    (UndirectedRun::from_kernel(run), trace)
}

/// [`approx_densest_csr_parallel`] with a
/// [`PeelTrace`](crate::kernel::PeelTrace) capture. The trace is
/// bit-identical to the serial one on unweighted graphs, like the run
/// itself.
pub fn approx_densest_csr_parallel_traced(
    g: &CsrUndirected,
    epsilon: f64,
    threads: usize,
) -> (UndirectedRun, crate::kernel::PeelTrace) {
    let mut store = ParallelCsrUndirectedStore::new(g, threads);
    let mut policy = ThresholdPolicy::new(epsilon);
    let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
    (UndirectedRun::from_kernel(run), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::EdgeList;

    fn run_stream(list: &EdgeList, eps: f64) -> UndirectedRun {
        let mut s = MemoryStream::new(list.clone());
        approx_densest(&mut s, eps)
    }

    #[test]
    fn clique_found_immediately() {
        let run = run_stream(&gen::clique(10), 0.5);
        assert!((run.best_density - 4.5).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 10);
        assert_eq!(run.best_pass, 1);
    }

    #[test]
    fn planted_clique_within_guarantee() {
        let pg = gen::planted_clique(300, 600, 20, 5);
        for eps in [0.0, 0.1, 0.5, 1.0, 2.0] {
            let run = run_stream(&pg.graph, eps);
            let bound = pg.planted_density / (2.0 + 2.0 * eps);
            assert!(
                run.best_density + 1e-9 >= bound,
                "eps {eps}: density {} below bound {bound}",
                run.best_density
            );
        }
    }

    #[test]
    fn pass_bound_holds() {
        // Lemma 4: at most ceil(log_{1+eps} n) + 1 passes.
        let pg = gen::planted_dense_subgraph(500, 2000, 25, 0.7, 9);
        for eps in [0.5, 1.0, 2.0] {
            let run = run_stream(&pg.graph, eps);
            let bound = ((500.0f64).ln() / (1.0 + eps).ln()).ceil() as u32 + 2;
            assert!(
                run.passes <= bound,
                "eps {eps}: {} passes > bound {bound}",
                run.passes
            );
        }
    }

    #[test]
    fn stream_and_csr_agree_exactly() {
        for seed in 0..5 {
            let list = gen::gnp(120, 0.08, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for eps in [0.0, 0.3, 1.0] {
                let a = run_stream(&list, eps);
                let b = approx_densest_csr(&csr, eps);
                assert_eq!(a.passes, b.passes, "seed {seed} eps {eps}");
                assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
                assert!((a.best_density - b.best_density).abs() < 1e-9);
                assert_eq!(a.trace.len(), b.trace.len());
                for (x, y) in a.trace.iter().zip(&b.trace) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.removed, y.removed);
                    assert!((x.density - y.density).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_csr_is_bit_identical_on_unweighted() {
        for seed in 0..3 {
            let list = gen::gnp(150, 0.07, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for eps in [0.0, 0.5, 1.5] {
                let serial = approx_densest_csr(&csr, eps);
                for threads in [1, 2, 4, 7] {
                    let par = approx_densest_csr_parallel(&csr, eps, threads);
                    assert_eq!(
                        serial.passes, par.passes,
                        "seed {seed} eps {eps} t {threads}"
                    );
                    assert_eq!(serial.best_pass, par.best_pass);
                    assert_eq!(serial.best_set.to_vec(), par.best_set.to_vec());
                    assert_eq!(serial.best_density.to_bits(), par.best_density.to_bits());
                    assert_eq!(serial.trace, par.trace);
                }
            }
        }
    }

    #[test]
    fn parallel_csr_weighted_matches_within_rounding() {
        let list = gen::weighted_powerlaw(80, 0.5, 700.0);
        let csr = CsrUndirected::from_edge_list(&list);
        let serial = approx_densest_csr(&csr, 0.8);
        for threads in [1, 3, 5] {
            let par = approx_densest_csr_parallel(&csr, 0.8, threads);
            assert_eq!(serial.passes, par.passes, "threads {threads}");
            assert_eq!(serial.best_set.to_vec(), par.best_set.to_vec());
            assert!((serial.best_density - par.best_density).abs() < 1e-9);
        }
        // Thread-count invariance is exact even for weighted graphs.
        let a = approx_densest_csr_parallel(&csr, 0.8, 2);
        let b = approx_densest_csr_parallel(&csr, 0.8, 6);
        assert_eq!(a.best_density.to_bits(), b.best_density.to_bits());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn weighted_stream_and_csr_agree() {
        let list = gen::weighted_powerlaw(60, 0.5, 500.0);
        let csr = CsrUndirected::from_edge_list(&list);
        let a = run_stream(&list, 1.0);
        let b = approx_densest_csr(&csr, 1.0);
        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-6);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let run = run_stream(&EdgeList::new_undirected(0), 0.5);
        assert_eq!(run.best_density, 0.0);
        assert_eq!(run.passes, 0);

        // Isolated nodes: density 0, one pass removes everything.
        let run = run_stream(&EdgeList::new_undirected(7), 0.5);
        assert_eq!(run.best_density, 0.0);
        assert_eq!(run.passes, 1);
        assert_eq!(run.trace[0].removed, 7);
    }

    #[test]
    fn single_edge() {
        let mut g = EdgeList::new_undirected(2);
        g.push(0, 1);
        let run = run_stream(&g, 0.5);
        assert!((run.best_density - 0.5).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        // The run on a graph with a self-loop must be identical to the run
        // on the same graph without it.
        let mut with_loop = EdgeList::new_undirected(3);
        with_loop.push(0, 0);
        with_loop.push(0, 1);
        let mut without_loop = EdgeList::new_undirected(3);
        without_loop.push(0, 1);
        let a = run_stream(&with_loop, 0.5);
        let b = run_stream(&without_loop, 0.5);
        assert_eq!(a.passes, b.passes);
        assert!((a.best_density - b.best_density).abs() < 1e-12);
        assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
        // The self-loop contributes nothing to ρ(V) = 1/3.
        assert!((a.trace[0].density - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_terminates_on_regular_graph() {
        // On a regular graph every node's degree equals 2ρ, so the first
        // pass removes everything; best set is the full graph.
        let run = run_stream(&gen::circulant(50, 6), 0.0);
        assert_eq!(run.passes, 1);
        assert!((run.best_density - 3.0).abs() < 1e-12);
        assert_eq!(run.best_set.len(), 50);
    }

    #[test]
    fn larger_epsilon_fewer_passes() {
        let pg = gen::planted_dense_subgraph(2000, 10_000, 50, 0.5, 13);
        let p0 = run_stream(&pg.graph, 0.1).passes;
        let p2 = run_stream(&pg.graph, 2.0).passes;
        assert!(p2 < p0, "eps 2.0 gave {p2} passes vs {p0} for eps 0.1");
    }

    #[test]
    fn trace_is_monotone_in_nodes() {
        let pg = gen::planted_dense_subgraph(400, 1500, 20, 0.8, 3);
        let run = run_stream(&pg.graph, 0.5);
        for w in run.trace.windows(2) {
            assert!(w[1].nodes < w[0].nodes, "node count must strictly shrink");
            assert_eq!(w[1].nodes, w[0].nodes - w[0].removed);
        }
        // Total removals equal n.
        let total: usize = run.trace.iter().map(|p| p.removed).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn best_pass_recorded() {
        // Two cliques joined by nothing: the bigger clique only becomes the
        // current set after sparse nodes are gone; best_pass tracks that.
        let mut g = gen::clique(12);
        g.disjoint_union(&gen::path(100));
        let run = run_stream(&g, 0.5);
        assert!((run.best_density - 5.5).abs() < 1e-9);
        assert!(run.best_pass >= 1);
        assert_eq!(run.best_set.len(), 12);
    }

    #[test]
    fn stream_pass_count_matches_reported() {
        let pg = gen::planted_dense_subgraph(300, 900, 15, 0.9, 1);
        let mut s = MemoryStream::new(pg.graph);
        let run = approx_densest(&mut s, 1.0);
        assert_eq!(s.passes(), run.passes as u64);
    }
}
