//! Result and per-pass trace types shared by all algorithms.
//!
//! Every run records a [`PassStats`] per pass; the experiment harness uses
//! these traces to regenerate the paper's Figures 6.2 (density vs. pass),
//! 6.3 (remaining nodes/edges vs. pass), and 6.5 (directed |S|, |T|,
//! |E(S,T)| vs. pass).

use dsg_graph::NodeSet;

/// Statistics captured at one pass of an undirected run, *before* the
/// pass's removals are applied.
#[derive(Clone, Debug, PartialEq)]
pub struct PassStats {
    /// 1-based pass index.
    pub pass: u32,
    /// `|S|` at the start of the pass.
    pub nodes: usize,
    /// `w(E(S))` at the start of the pass (edge count if unweighted).
    pub edge_weight: f64,
    /// `ρ(S)` at the start of the pass.
    pub density: f64,
    /// Removal threshold used this pass (`2(1+ε)ρ(S)`).
    pub threshold: f64,
    /// Number of nodes removed by this pass.
    pub removed: usize,
}

/// The outcome of an undirected run (Algorithms 1 and 2, and the sketched
/// variant).
#[derive(Clone, Debug)]
pub struct UndirectedRun {
    /// The best (densest) intermediate subgraph `S̃`.
    pub best_set: NodeSet,
    /// `ρ(S̃)`.
    pub best_density: f64,
    /// Pass at which the best set was observed (1-based; pass 1 is the
    /// full node set).
    pub best_pass: u32,
    /// Number of passes over the edge stream.
    pub passes: u32,
    /// Per-pass trace.
    pub trace: Vec<PassStats>,
}

impl UndirectedRun {
    /// Assembles the public run shape from a kernel run over a one-sided
    /// (undirected) state.
    pub(crate) fn from_kernel(run: crate::kernel::KernelRun) -> Self {
        UndirectedRun {
            best_density: run.best_density,
            best_pass: run.best_pass,
            passes: run.passes,
            trace: run
                .trace
                .iter()
                .map(|r| PassStats {
                    pass: r.pass,
                    nodes: r.side_sizes[0],
                    edge_weight: r.total_weight,
                    density: r.density,
                    threshold: r.threshold,
                    removed: r.removed,
                })
                .collect(),
            best_set: run.best_sides.into_iter().next().expect("one side"),
        }
    }

    /// Densities per pass, normalized by the best density — the series of
    /// Figure 6.2.
    pub fn relative_density_series(&self) -> Vec<f64> {
        if self.best_density <= 0.0 {
            return self.trace.iter().map(|_| 0.0).collect();
        }
        self.trace
            .iter()
            .map(|p| p.density / self.best_density)
            .collect()
    }
}

/// Statistics captured at one pass of a directed run (Algorithm 3),
/// *before* the pass's removals.
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedPassStats {
    /// 1-based pass index.
    pub pass: u32,
    /// `|S|` at the start of the pass.
    pub s_size: usize,
    /// `|T|` at the start of the pass.
    pub t_size: usize,
    /// `|E(S, T)|` at the start of the pass.
    pub edges: usize,
    /// `ρ(S, T)` at the start of the pass.
    pub density: f64,
    /// `true` if this pass removed from `S`, `false` if from `T`.
    pub removed_from_s: bool,
    /// Number of nodes removed by this pass.
    pub removed: usize,
}

/// Peak resident bytes of a semi-streaming run over `n` nodes: the
/// liveness bitset, the `f64` degree view, the degree-oracle counters
/// (`oracle_words` = `n` for the exact oracle, `t·b` for a sketch), and
/// the `(side, node)` removal log from which the best set is rebuilt.
///
/// This — not the edge count — is what the out-of-core path holds in
/// memory; the `densest --stream` CLI and the `repro outofcore`
/// experiment both report it from this one definition.
pub fn streaming_state_bytes(n: u64, oracle_words: u64) -> u64 {
    n.div_ceil(64) * 8 + 8 * n + 8 * oracle_words + 8 * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_series_normalizes() {
        let run = UndirectedRun {
            best_set: NodeSet::empty(4),
            best_density: 2.0,
            best_pass: 2,
            passes: 2,
            trace: vec![
                PassStats {
                    pass: 1,
                    nodes: 4,
                    edge_weight: 4.0,
                    density: 1.0,
                    threshold: 2.0,
                    removed: 2,
                },
                PassStats {
                    pass: 2,
                    nodes: 2,
                    edge_weight: 4.0,
                    density: 2.0,
                    threshold: 4.0,
                    removed: 2,
                },
            ],
        };
        assert_eq!(run.relative_density_series(), vec![0.5, 1.0]);
    }

    #[test]
    fn relative_series_zero_density() {
        let run = UndirectedRun {
            best_set: NodeSet::empty(1),
            best_density: 0.0,
            best_pass: 1,
            passes: 1,
            trace: vec![PassStats {
                pass: 1,
                nodes: 1,
                edge_weight: 0.0,
                density: 0.0,
                threshold: 0.0,
                removed: 1,
            }],
        };
        assert_eq!(run.relative_density_series(), vec![0.0]);
    }
}
