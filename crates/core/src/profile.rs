//! Density profiles along a peeling order.
//!
//! Charikar's analysis shows *some* prefix of the min-degree peeling
//! order is a 2-approximation; the full density-vs-prefix curve (the
//! "peeling profile") is a compact summary of a graph's density
//! landscape — where the dense cores sit and how sharply density decays.
//! Useful for picking ε and `min_density` thresholds, and for the
//! community-structure diagnostics the paper's applications (community
//! mining, spam detection) care about.

use dsg_graph::CsrUndirected;

use crate::charikar::charikar_peel;

/// The density profile of a graph along Charikar's peeling order.
#[derive(Clone, Debug)]
pub struct PeelingProfile {
    /// `densities[i]` = density of the graph after peeling `i` nodes
    /// (index 0 is the full graph; length `n`, the last entry being a
    /// single node with density 0).
    pub densities: Vec<f64>,
    /// Prefix index attaining the maximum density.
    pub best_prefix: usize,
    /// The maximum density (Charikar's 2-approximation value).
    pub best_density: f64,
}

/// Computes the density of every suffix of the peeling order in one
/// O(m + n) sweep (on top of the peel itself).
pub fn peeling_profile(g: &CsrUndirected) -> PeelingProfile {
    let n = g.num_nodes();
    if n == 0 {
        return PeelingProfile {
            densities: Vec::new(),
            best_prefix: 0,
            best_density: 0.0,
        };
    }
    let peel = charikar_peel(g);
    // Replay the peeling, tracking the remaining edge weight.
    let mut alive = vec![true; n];
    let mut remaining_w = 0.0f64;
    for u in 0..n as u32 {
        for (v, w) in g.neighbors_weighted(u) {
            if v != u {
                remaining_w += w;
            }
        }
    }
    remaining_w /= 2.0;

    let mut densities = Vec::with_capacity(n);
    let mut best_prefix = 0usize;
    let mut best_density = remaining_w / n as f64;
    for (i, &u) in peel.peel_order.iter().enumerate() {
        let remaining_nodes = n - i;
        let d = remaining_w / remaining_nodes as f64;
        densities.push(d);
        if d > best_density {
            best_density = d;
            best_prefix = i;
        }
        // Peel u.
        alive[u as usize] = false;
        for (v, w) in g.neighbors_weighted(u) {
            if v != u && alive[v as usize] {
                remaining_w -= w;
            }
        }
    }
    PeelingProfile {
        densities,
        best_prefix,
        best_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    #[test]
    fn profile_of_clique_decreases() {
        let g = CsrUndirected::from_edge_list(&gen::clique(8));
        let p = peeling_profile(&g);
        assert_eq!(p.densities.len(), 8);
        // Full clique is the best prefix.
        assert_eq!(p.best_prefix, 0);
        assert!((p.best_density - 3.5).abs() < 1e-12);
        // Densities of K8, K7, K6, ... strictly decrease.
        for w in p.densities.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn profile_peak_matches_charikar() {
        let pg = gen::planted_dense_subgraph(300, 900, 20, 0.8, 5);
        let g = CsrUndirected::from_edge_list(&pg.graph);
        let p = peeling_profile(&g);
        let peel = charikar_peel(&g);
        assert!((p.best_density - peel.best_density).abs() < 1e-9);
        // The peak density appears in the profile at the best prefix.
        assert!((p.densities[p.best_prefix] - p.best_density).abs() < 1e-12);
    }

    #[test]
    fn profile_rises_to_planted_core() {
        // Sparse background peels away first, so density rises before
        // the peak — the unimodal shape of Figure 6.2.
        let pg = gen::planted_clique(400, 800, 15, 9);
        let g = CsrUndirected::from_edge_list(&pg.graph);
        let p = peeling_profile(&g);
        assert!(p.best_prefix > 0, "background must peel before the core");
        assert!(p.densities[0] < p.best_density);
        assert!((p.best_density - 7.0).abs() < 1.0);
    }

    #[test]
    fn empty_graph_profile() {
        let g = CsrUndirected::from_edge_list(&dsg_graph::EdgeList::new_undirected(0));
        let p = peeling_profile(&g);
        assert!(p.densities.is_empty());
        assert_eq!(p.best_density, 0.0);
    }
}
