//! The removal policies: one per algorithm of the paper (plus the
//! rejected naive directed rule, kept as an ablation).

use dsg_graph::density;

use super::{DegreeStore, KernelState, RemovalPolicy, Selection};

/// Algorithm 1's rule: remove every node whose induced degree is at most
/// `2(1+ε)·ρ(S)`.
///
/// The fallback (reachable only with biased, e.g. Count-Min, degree
/// estimates) evicts the `ε/(1+ε)·|S|` smallest-estimate nodes — at
/// least one — which preserves the `O(log_{1+ε} n)` pass bound no matter
/// how biased the oracle is.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdPolicy {
    epsilon: f64,
}

impl ThresholdPolicy {
    /// Creates the policy; `epsilon ≥ 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        ThresholdPolicy { epsilon }
    }
}

impl RemovalPolicy for ThresholdPolicy {
    fn finished(&self, state: &KernelState) -> bool {
        state.sides[0].alive.is_empty()
    }

    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection {
        let side = &state.sides[0];
        let rho = density::undirected(state.total_weight, side.alive.len());
        let threshold = density::undirected_threshold(rho, self.epsilon);
        for u in side.alive.iter() {
            if side.deg[u as usize] <= threshold {
                buf.push(u);
            }
        }
        Selection {
            side: 0,
            density: rho,
            threshold,
            successor: None,
        }
    }

    fn fallback<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) {
        let side = &state.sides[0];
        let mut by_estimate: Vec<(f64, u32)> = side
            .alive
            .iter()
            .map(|u| (side.deg[u as usize], u))
            .collect();
        by_estimate.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("degree estimates are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let target =
            ((self.epsilon / (1.0 + self.epsilon)) * side.alive.len() as f64).ceil() as usize;
        let target = target.clamp(1, side.alive.len());
        buf.extend(by_estimate[..target].iter().map(|&(_, u)| u));
    }
}

/// Algorithm 2's rule: of the nodes at or below the `2(1+ε)·ρ(S)`
/// threshold, remove only the `ε/(1+ε)·|S|` smallest-degree ones (ties
/// by id), stopping once `|S| < k`.
#[derive(Clone, Debug)]
pub struct KFloorPolicy {
    k: usize,
    epsilon: f64,
    candidates: Vec<(f64, u32)>,
}

impl KFloorPolicy {
    /// Creates the policy; `epsilon > 0` (with `ε = 0` the prescribed
    /// removal count is zero and the algorithm cannot progress).
    pub fn new(k: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "Algorithm 2 requires epsilon > 0");
        KFloorPolicy {
            k,
            epsilon,
            candidates: Vec::new(),
        }
    }
}

impl RemovalPolicy for KFloorPolicy {
    fn finished(&self, state: &KernelState) -> bool {
        state.sides[0].alive.len() < self.k
    }

    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection {
        let side = &state.sides[0];
        let rho = density::undirected(state.total_weight, side.alive.len());
        let threshold = density::undirected_threshold(rho, self.epsilon);

        // A~(S): all nodes at or below the threshold.
        self.candidates.clear();
        for u in side.alive.iter() {
            let d = side.deg[u as usize];
            if d <= threshold {
                self.candidates.push((d, u));
            }
        }
        // |A(S)| = ε/(1+ε)·|S|, rounded up so progress is guaranteed.
        // Lemma 4's counting argument gives |A~| > ε/(1+ε)·|S| with exact
        // degrees, so the clamp only matters under estimation error.
        let target =
            ((self.epsilon / (1.0 + self.epsilon)) * side.alive.len() as f64).ceil() as usize;
        let target = target.clamp(1, self.candidates.len().max(1));
        self.candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("degrees are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let removed = target.min(self.candidates.len());
        buf.extend(self.candidates[..removed].iter().map(|&(_, u)| u));
        Selection {
            side: 0,
            density: rho,
            threshold,
            successor: self.candidates.get(removed).copied(),
        }
    }
}

/// Charikar's rule: remove the single minimum-degree node per pass
/// (extracted through [`DegreeStore::extract_min`], so priority-structure
/// backends keep the peel `O(m + n)` overall).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinNodePolicy;

impl RemovalPolicy for MinNodePolicy {
    fn finished(&self, state: &KernelState) -> bool {
        state.sides[0].alive.is_empty()
    }

    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection {
        let rho = density::undirected(state.total_weight, state.sides[0].alive.len());
        let u = store
            .extract_min(state, 0)
            .expect("a live minimum exists while the side is non-empty");
        buf.push(u);
        Selection {
            side: 0,
            density: rho,
            // The minimum degree is the natural "threshold" of this rule.
            threshold: state.sides[0].deg[u as usize],
            successor: None,
        }
    }
}

/// Algorithm 3's size-based rule (§4.3): remove from `S` when
/// `|S|/|T| ≥ c` (nodes with out-degree into `T` at most
/// `(1+ε)·|E(S,T)|/|S|`), symmetrically from `T` otherwise.
#[derive(Clone, Copy, Debug)]
pub struct DirectedSizesPolicy {
    c: f64,
    epsilon: f64,
}

impl DirectedSizesPolicy {
    /// Creates the policy; `c > 0`, `epsilon ≥ 0`.
    pub fn new(c: f64, epsilon: f64) -> Self {
        assert!(c > 0.0, "ratio c must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        DirectedSizesPolicy { c, epsilon }
    }
}

impl RemovalPolicy for DirectedSizesPolicy {
    fn finished(&self, state: &KernelState) -> bool {
        state.sides[0].alive.is_empty() || state.sides[1].alive.is_empty()
    }

    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection {
        let (s_len, t_len) = (state.sides[0].alive.len(), state.sides[1].alive.len());
        let rho = density::directed(state.total_weight, s_len, t_len);
        let from_s = s_len as f64 / t_len as f64 >= self.c;
        let side = usize::from(!from_s);
        let side_len = if from_s { s_len } else { t_len };
        let threshold = density::directed_threshold(state.total_weight, side_len, self.epsilon);
        let sd = &state.sides[side];
        for u in sd.alive.iter() {
            if sd.deg[u as usize] <= threshold {
                buf.push(u);
            }
        }
        Selection {
            side,
            density: rho,
            threshold,
            successor: None,
        }
    }
}

/// The naive side-selection rule that §4.3 describes and rejects: compute
/// **both** candidate sets each pass, compare the maximum out-degree over
/// `A(S)` with the maximum in-degree over `B(T)`, and remove `A(S)` iff
/// `E(S, j*) ≥ c·E(i*, T)`. Same `(2+2ε)` guarantee, twice the selection
/// work — kept as an ablation.
#[derive(Clone, Debug)]
pub struct DirectedNaivePolicy {
    c: f64,
    epsilon: f64,
    b_set: Vec<u32>,
}

impl DirectedNaivePolicy {
    /// Creates the policy; `c > 0`, `epsilon ≥ 0`.
    pub fn new(c: f64, epsilon: f64) -> Self {
        assert!(c > 0.0, "ratio c must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        DirectedNaivePolicy {
            c,
            epsilon,
            b_set: Vec::new(),
        }
    }
}

impl RemovalPolicy for DirectedNaivePolicy {
    fn finished(&self, state: &KernelState) -> bool {
        state.sides[0].alive.is_empty() || state.sides[1].alive.is_empty()
    }

    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection {
        let (s_side, t_side) = (&state.sides[0], &state.sides[1]);
        let (s_len, t_len) = (s_side.alive.len(), t_side.alive.len());
        let rho = density::directed(state.total_weight, s_len, t_len);

        // Both candidate sets — the cost the size-based rule avoids.
        let s_threshold = density::directed_threshold(state.total_weight, s_len, self.epsilon);
        let t_threshold = density::directed_threshold(state.total_weight, t_len, self.epsilon);
        buf.extend(
            s_side
                .alive
                .iter()
                .filter(|&u| s_side.deg[u as usize] <= s_threshold),
        );
        self.b_set.clear();
        self.b_set.extend(
            t_side
                .alive
                .iter()
                .filter(|&v| t_side.deg[v as usize] <= t_threshold),
        );
        let max_out_a = buf
            .iter()
            .map(|&u| s_side.deg[u as usize])
            .fold(0.0f64, f64::max);
        let max_in_b = self
            .b_set
            .iter()
            .map(|&v| t_side.deg[v as usize])
            .fold(0.0f64, f64::max);

        // E(S, j*) / E(i*, T) ≥ c -> remove A(S); cross-multiplied to
        // avoid dividing by a zero max out-degree.
        if max_in_b >= self.c * max_out_a {
            Selection {
                side: 0,
                density: rho,
                threshold: s_threshold,
                successor: None,
            }
        } else {
            std::mem::swap(buf, &mut self.b_set);
            Selection {
                side: 1,
                density: rho,
                threshold: t_threshold,
                successor: None,
            }
        }
    }
}
