//! Streaming degree stores: one pass over the edge stream per kernel
//! pass, `O(n)` memory — the paper's semi-streaming cost model.

use dsg_graph::stream::EdgeStream;

use crate::oracle::DegreeOracle;

use super::{DegreeStore, KernelState};

/// Undirected streaming backend: each pass recomputes the live degrees
/// through a [`DegreeOracle`] (exact or sketched — §5.1) and the live
/// edge weight exactly (a single counter).
pub struct StreamingUndirectedStore<'a, S: EdgeStream + ?Sized, O: DegreeOracle + ?Sized> {
    stream: &'a mut S,
    oracle: &'a mut O,
}

impl<'a, S: EdgeStream + ?Sized, O: DegreeOracle + ?Sized> StreamingUndirectedStore<'a, S, O> {
    /// Wraps a stream and a degree oracle.
    pub fn new(stream: &'a mut S, oracle: &'a mut O) -> Self {
        StreamingUndirectedStore { stream, oracle }
    }
}

impl<S: EdgeStream + ?Sized, O: DegreeOracle + ?Sized> DegreeStore
    for StreamingUndirectedStore<'_, S, O>
{
    fn init(&mut self) -> KernelState {
        KernelState::full(self.stream.num_nodes() as usize, 1)
    }

    fn begin_pass(&mut self, state: &mut KernelState) {
        self.oracle.reset();
        let side = &mut state.sides[0];
        let alive = &side.alive;
        let mut total_w = 0.0f64;
        {
            let oracle = &mut *self.oracle;
            let total = &mut total_w;
            self.stream.for_each_edge(&mut |u, v, w| {
                if u != v && alive.contains(u) && alive.contains(v) {
                    oracle.record(u, v, w);
                    *total += w;
                }
            });
        }
        // Materialize the oracle's view for the policy. Dead entries are
        // left stale; policies only read live nodes.
        for u in side.alive.iter() {
            side.deg[u as usize] = self.oracle.degree(u);
        }
        state.total_weight = total_w;
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let alive = &mut state.sides[side].alive;
        for &u in removed {
            alive.remove(u);
        }
    }
}

/// Directed streaming backend: each pass recomputes out-degrees of `S`
/// into `T`, in-degrees of `T` from `S`, and the live arc count.
pub struct StreamingDirectedStore<'a, S: EdgeStream + ?Sized> {
    stream: &'a mut S,
}

impl<'a, S: EdgeStream + ?Sized> StreamingDirectedStore<'a, S> {
    /// Wraps a directed edge stream (`(u, v, w)` is the arc `u -> v`).
    pub fn new(stream: &'a mut S) -> Self {
        StreamingDirectedStore { stream }
    }
}

impl<S: EdgeStream + ?Sized> DegreeStore for StreamingDirectedStore<'_, S> {
    fn init(&mut self) -> KernelState {
        KernelState::full(self.stream.num_nodes() as usize, 2)
    }

    fn begin_pass(&mut self, state: &mut KernelState) {
        let (s_side, rest) = state.sides.split_first_mut().expect("two sides");
        let t_side = &mut rest[0];
        s_side.deg.fill(0.0);
        t_side.deg.fill(0.0);
        let (s_alive, t_alive) = (&s_side.alive, &t_side.alive);
        let (out_deg, in_deg) = (&mut s_side.deg, &mut t_side.deg);
        let mut edges = 0.0f64;
        {
            let e = &mut edges;
            self.stream.for_each_edge(&mut |u, v, w| {
                if s_alive.contains(u) && t_alive.contains(v) {
                    out_deg[u as usize] += w;
                    in_deg[v as usize] += w;
                    *e += w;
                }
            });
        }
        state.total_weight = edges;
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let alive = &mut state.sides[side].alive;
        for &u in removed {
            alive.remove(u);
        }
    }
}
