//! Serial in-memory degree stores over CSR snapshots, with decremental
//! degree maintenance — `O(m + n·passes)` total instead of one full edge
//! scan per pass, producing exactly the same run as the streaming
//! backends on the same graph.

use dsg_graph::{CsrDirected, CsrUndirected};

use super::{DegreeStore, KernelState};

/// Undirected decremental CSR backend.
pub struct CsrUndirectedStore<'g> {
    g: &'g CsrUndirected,
    in_removal: Vec<bool>,
}

impl<'g> CsrUndirectedStore<'g> {
    /// Wraps a CSR snapshot.
    pub fn new(g: &'g CsrUndirected) -> Self {
        CsrUndirectedStore {
            g,
            in_removal: vec![false; g.num_nodes()],
        }
    }
}

impl DegreeStore for CsrUndirectedStore<'_> {
    fn init(&mut self) -> KernelState {
        let n = self.g.num_nodes();
        let mut state = KernelState::full(n, 1);
        let side = &mut state.sides[0];
        for u in 0..n as u32 {
            side.deg[u as usize] = self.g.weighted_degree(u);
        }
        // Self-loops are excluded from the induced-degree semantics of
        // the streaming variant; subtract them up front.
        let mut total_w = 0.0f64;
        for u in 0..n as u32 {
            for (v, w) in self.g.neighbors_weighted(u) {
                if v == u {
                    side.deg[u as usize] -= w;
                } else {
                    total_w += w;
                }
            }
        }
        state.total_weight = total_w / 2.0;
        state
    }

    fn begin_pass(&mut self, _state: &mut KernelState) {
        // Degrees are maintained decrementally in `apply_removals`.
    }

    fn rebuild(&mut self, state: &mut KernelState) -> bool {
        // Reachable only through floating-point drift of the decremental
        // degrees (weighted graphs): restore the exact state a streaming
        // pass would hold.
        let side = &mut state.sides[0];
        let mut total_w = 0.0f64;
        for u in side.alive.iter() {
            let mut d = 0.0;
            for (v, w) in self.g.neighbors_weighted(u) {
                if v != u && side.alive.contains(v) {
                    d += w;
                    total_w += w;
                }
            }
            side.deg[u as usize] = d;
        }
        state.total_weight = total_w / 2.0;
        true
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let side = &mut state.sides[side];
        for &u in removed {
            self.in_removal[u as usize] = true;
        }
        // Decrement neighbor degrees and the live edge weight.
        for &u in removed {
            for (v, w) in self.g.neighbors_weighted(u) {
                if v != u && side.alive.contains(v) {
                    if self.in_removal[v as usize] {
                        // Intra-batch edge: visited from both sides.
                        state.total_weight -= w * 0.5;
                    } else {
                        state.total_weight -= w;
                        side.deg[v as usize] -= w;
                    }
                }
            }
        }
        for &u in removed {
            side.alive.remove(u);
            side.deg[u as usize] = 0.0;
            self.in_removal[u as usize] = false;
        }
        // Guard against floating-point drift on weighted graphs.
        if state.total_weight < 0.0 {
            state.total_weight = 0.0;
        }
    }
}

/// Directed decremental CSR backend (side 0 = `S` with out-degrees into
/// `T`, side 1 = `T` with in-degrees from `S`).
pub struct CsrDirectedStore<'g> {
    g: &'g CsrDirected,
}

impl<'g> CsrDirectedStore<'g> {
    /// Wraps a directed CSR snapshot.
    pub fn new(g: &'g CsrDirected) -> Self {
        CsrDirectedStore { g }
    }
}

impl DegreeStore for CsrDirectedStore<'_> {
    fn init(&mut self) -> KernelState {
        let n = self.g.num_nodes();
        let mut state = KernelState::full(n, 2);
        for u in 0..n as u32 {
            state.sides[0].deg[u as usize] = self.g.out_degree(u) as f64;
            state.sides[1].deg[u as usize] = self.g.in_degree(u) as f64;
        }
        state.total_weight = self.g.num_edges() as f64;
        state
    }

    fn begin_pass(&mut self, _state: &mut KernelState) {
        // Degrees are maintained decrementally in `apply_removals`.
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let (s_side, rest) = state.sides.split_first_mut().expect("two sides");
        let t_side = &mut rest[0];
        if side == 0 {
            for &u in removed {
                s_side.alive.remove(u);
                for &v in self.g.out_neighbors(u) {
                    if t_side.alive.contains(v) {
                        state.total_weight -= 1.0;
                        t_side.deg[v as usize] -= 1.0;
                    }
                }
                s_side.deg[u as usize] = 0.0;
            }
        } else {
            for &v in removed {
                t_side.alive.remove(v);
                for &u in self.g.in_neighbors(v) {
                    if s_side.alive.contains(u) {
                        state.total_weight -= 1.0;
                        s_side.deg[u as usize] -= 1.0;
                    }
                }
                t_side.deg[v as usize] = 0.0;
            }
        }
    }
}
