//! Priority-structure stores for one-node-per-pass (Charikar) peeling:
//! a bucket queue for unweighted graphs (`O(m + n)` total) and a lazy
//! binary heap for weighted ones (`O((m + n) log n)`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsg_graph::CsrUndirected;

use super::{DegreeStore, KernelState};

/// Unweighted bucket-queue backend. [`DegreeStore::extract_min`] pops the
/// minimum-degree live node with lazy deletion of stale entries.
pub struct BucketQueueStore<'g> {
    g: &'g CsrUndirected,
    /// Integer degrees excluding self-loops (the bucket keys).
    deg: Vec<usize>,
    /// `buckets[d]` = nodes with current degree `d` (lazily cleaned).
    buckets: Vec<Vec<u32>>,
    /// Lowest possibly-non-empty bucket.
    cursor: usize,
}

impl<'g> BucketQueueStore<'g> {
    /// Builds the bucket queue; `g` must be unweighted.
    pub fn new(g: &'g CsrUndirected) -> Self {
        assert!(
            !g.is_weighted(),
            "BucketQueueStore requires an unweighted graph"
        );
        let n = g.num_nodes();
        // Degrees excluding self-loops (they do not contribute to induced
        // simple-graph density).
        let deg: Vec<usize> = (0..n as u32)
            .map(|u| g.neighbors(u).iter().filter(|&&v| v != u).count())
            .collect();
        let max_deg = deg.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
        for (u, &d) in deg.iter().enumerate() {
            buckets[d].push(u as u32);
        }
        BucketQueueStore {
            g,
            deg,
            buckets,
            cursor: 0,
        }
    }
}

impl DegreeStore for BucketQueueStore<'_> {
    fn init(&mut self) -> KernelState {
        let n = self.g.num_nodes();
        let mut state = KernelState::full(n, 1);
        for u in 0..n {
            state.sides[0].deg[u] = self.deg[u] as f64;
        }
        state.total_weight = (self.deg.iter().sum::<usize>() / 2) as f64;
        state
    }

    fn begin_pass(&mut self, _state: &mut KernelState) {}

    fn extract_min(&mut self, state: &KernelState, side: usize) -> Option<u32> {
        let alive = &state.sides[side].alive;
        if alive.is_empty() {
            return None;
        }
        loop {
            while self.cursor < self.buckets.len() && self.buckets[self.cursor].is_empty() {
                self.cursor += 1;
            }
            debug_assert!(self.cursor < self.buckets.len(), "no live node found");
            let cand = self.buckets[self.cursor].pop().expect("bucket non-empty");
            if alive.contains(cand) && self.deg[cand as usize] == self.cursor {
                return Some(cand);
            }
        }
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let side = &mut state.sides[side];
        for &u in removed {
            side.alive.remove(u);
            state.total_weight -= self.deg[u as usize] as f64;
            for &v in self.g.neighbors(u) {
                if v != u && side.alive.contains(v) {
                    let d = self.deg[v as usize] - 1;
                    self.deg[v as usize] = d;
                    side.deg[v as usize] = d as f64;
                    self.buckets[d].push(v);
                    // A neighbor's degree dropped below the cursor.
                    if d < self.cursor {
                        self.cursor = d;
                    }
                }
            }
            side.deg[u as usize] = 0.0;
        }
    }
}

/// Weighted lazy-heap backend: entries whose version is stale (the node's
/// degree changed since the entry was pushed) are skipped on pop.
pub struct LazyHeapStore<'g> {
    g: &'g CsrUndirected,
    version: Vec<u32>,
    heap: BinaryHeap<Reverse<(OrderedF64, u32, u32)>>,
}

impl<'g> LazyHeapStore<'g> {
    /// Builds the lazy heap over `g`'s self-loop-free weighted degrees.
    pub fn new(g: &'g CsrUndirected) -> Self {
        LazyHeapStore {
            g,
            version: vec![0u32; g.num_nodes()],
            heap: BinaryHeap::new(),
        }
    }
}

impl DegreeStore for LazyHeapStore<'_> {
    fn init(&mut self) -> KernelState {
        let n = self.g.num_nodes();
        let mut state = KernelState::full(n, 1);
        let side = &mut state.sides[0];
        let mut total_w = 0.0f64;
        for u in 0..n as u32 {
            for (v, w) in self.g.neighbors_weighted(u) {
                if v != u {
                    side.deg[u as usize] += w;
                    total_w += w;
                }
            }
        }
        state.total_weight = total_w / 2.0;
        self.version.fill(0);
        self.heap = (0..n as u32)
            .map(|u| Reverse((OrderedF64(side.deg[u as usize]), 0, u)))
            .collect();
        state
    }

    fn begin_pass(&mut self, _state: &mut KernelState) {}

    fn extract_min(&mut self, state: &KernelState, side: usize) -> Option<u32> {
        let alive = &state.sides[side].alive;
        if alive.is_empty() {
            return None;
        }
        loop {
            let Reverse((_, ver, cand)) = self.heap.pop().expect("heap non-empty");
            if alive.contains(cand) && ver == self.version[cand as usize] {
                return Some(cand);
            }
        }
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let side = &mut state.sides[side];
        for &u in removed {
            side.alive.remove(u);
            state.total_weight -= side.deg[u as usize];
            for (v, w) in self.g.neighbors_weighted(u) {
                if v != u && side.alive.contains(v) {
                    side.deg[v as usize] -= w;
                    self.version[v as usize] += 1;
                    self.heap.push(Reverse((
                        OrderedF64(side.deg[v as usize]),
                        self.version[v as usize],
                        v,
                    )));
                }
            }
            side.deg[u as usize] = 0.0;
        }
    }
}

/// Total-order wrapper for f64 heap keys (degrees are never NaN).
#[derive(Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("degree keys must not be NaN")
    }
}
