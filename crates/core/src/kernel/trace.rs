//! Per-pass peel traces — the seed state of incremental re-peeling.
//!
//! A [`PeelTrace`] records, for one finished peeling run, *when* every
//! node was removed (its round), *at what degree* it was removed, and a
//! handful of per-pass aggregate bounds. Together these let the
//! incremental simulator (`crate::incremental`) replay an edge delta
//! against the recorded run touching only the nodes the delta can reach:
//! the aggregates give `O(1)` per-pass proofs that every untouched
//! ("frozen") node keeps its recorded round, and the per-node data gives
//! the exact fallback scan when an aggregate proof fails.
//!
//! Capture is optional (see [`super::peel_traced`]) and costs one extra
//! scan of the live side per pass plus `O(n)` memory per side.

use super::{KernelState, Selection};

/// Round at which a node was never removed.
pub const NEVER_REMOVED: u32 = u32::MAX;

/// Maximum number of non-candidate `(degree, id)` pairs recorded per pass
/// in [`PeelTrace::frontier`].
pub const FRONTIER_LEN: usize = 8;

#[inline]
fn pair_lt(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Aggregate record of one pass, kept alongside the kernel's
/// [`super::PassRecord`] but extended with the bounds the incremental
/// simulator consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePass {
    /// Side the removals applied to.
    pub side: u8,
    /// `[|S|, |T|]` at the start of the pass (`[|S|, 0]` when one-sided).
    pub alive: [u32; 2],
    /// Live edge weight at the start of the pass.
    pub total_weight: f64,
    /// Density at the start of the pass.
    pub density: f64,
    /// Removal threshold of the pass.
    pub threshold: f64,
    /// Number of nodes removed.
    pub removed: u32,
    /// Maximum removal degree over this pass's removals. A simulated
    /// threshold at or above it proves every recorded removal still
    /// qualifies without touching individual nodes.
    pub max_removal_deg: f64,
    /// Minimum degree over live *non-candidate* nodes (degree strictly
    /// above the threshold) on the chosen side; `+inf` when every live
    /// node was a candidate. A simulated threshold strictly below it
    /// proves no recorded survivor newly crosses.
    pub min_noncand_deg: f64,
    /// The policy's surviving-candidate lower bound (see
    /// [`Selection::successor`]).
    pub successor: Option<(f64, u32)>,
}

/// The full trace of one peeling run.
#[derive(Clone, Debug)]
pub struct PeelTrace {
    /// Node-id capacity of the traced run.
    pub n: u32,
    /// Per side, per node: the 1-based pass that removed it, or
    /// [`NEVER_REMOVED`].
    pub rounds: Vec<Vec<u32>>,
    /// Per side, per node: the degree the node had when it was removed
    /// (unspecified for never-removed nodes).
    pub removal_deg: Vec<Vec<f64>>,
    /// Aggregate pass records, in pass order.
    pub passes: Vec<TracePass>,
    /// Per pass: the smallest live non-candidate `(degree, id)` pairs on
    /// the pass's chosen side, ascending by `(degree, id)`, at most
    /// [`FRONTIER_LEN`] of them. When a simulated threshold reaches one
    /// of these, the simulator promotes the node into the affected set
    /// instead of falling back — its identity and degree are exact.
    pub frontier: Vec<Vec<(f64, u32)>>,
    /// Per pass: whether the matching [`Self::frontier`] list holds
    /// *every* live non-candidate of the pass. `false` means the list
    /// was cut and unlisted non-candidates sort strictly above its last
    /// entry.
    pub frontier_complete: Vec<bool>,
}

impl PeelTrace {
    /// Number of peeling sides (1 undirected, 2 directed).
    pub fn sides(&self) -> usize {
        self.rounds.len()
    }

    pub(crate) fn start(n: usize, sides: usize) -> Self {
        PeelTrace {
            n: n as u32,
            rounds: vec![vec![NEVER_REMOVED; n]; sides],
            removal_deg: vec![vec![0.0; n]; sides],
            passes: Vec::new(),
            frontier: Vec::new(),
            frontier_complete: Vec::new(),
        }
    }

    pub(crate) fn record_pass(&mut self, state: &KernelState, sel: &Selection, buf: &[u32]) {
        let sd = &state.sides[sel.side];
        let mut max_removal = f64::NEG_INFINITY;
        for &u in buf {
            let d = sd.deg[u as usize];
            self.rounds[sel.side][u as usize] = state.pass;
            self.removal_deg[sel.side][u as usize] = d;
            if d > max_removal {
                max_removal = d;
            }
        }
        // The smallest non-candidate pairs (degree strictly above the
        // threshold). Scanned before removals, so candidates filter out
        // and survivors keep their start-of-pass degree.
        let mut frontier: Vec<(f64, u32)> = Vec::with_capacity(FRONTIER_LEN + 1);
        let mut noncand = 0usize;
        for u in sd.alive.iter() {
            let d = sd.deg[u as usize];
            if d > sel.threshold {
                noncand += 1;
                let pr = (d, u);
                if frontier.len() < FRONTIER_LEN
                    || pair_lt(pr, *frontier.last().expect("frontier is non-empty"))
                {
                    let pos = frontier.partition_point(|&q| pair_lt(q, pr));
                    frontier.insert(pos, pr);
                    frontier.truncate(FRONTIER_LEN);
                }
            }
        }
        let min_noncand = frontier.first().map_or(f64::INFINITY, |p| p.0);
        self.frontier_complete.push(noncand <= FRONTIER_LEN);
        self.frontier.push(frontier);
        let sizes = state.side_sizes();
        self.passes.push(TracePass {
            side: sel.side as u8,
            alive: [sizes[0] as u32, sizes[1] as u32],
            total_weight: state.total_weight,
            density: sel.density,
            threshold: sel.threshold,
            removed: buf.len() as u32,
            max_removal_deg: max_removal,
            min_noncand_deg: min_noncand,
            successor: sel.successor,
        });
    }
}
