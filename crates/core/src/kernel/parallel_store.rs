//! Multi-threaded CSR degree stores.
//!
//! The `(1+ε)`-threshold pass is a bulk, order-independent operation —
//! the property that maps Algorithm 1 to MapReduce in §5.2 maps it
//! equally well to chunked shared-memory threads:
//!
//! * **Degree recomputation** (pull): nodes are partitioned into a fixed
//!   chunk grid; each chunk's live degrees are recomputed by one thread
//!   scanning its own adjacency, with a per-chunk partial sum of the
//!   live edge weight. Per-node sums are sequential and the partials are
//!   reduced in chunk order, so results do not depend on the thread
//!   count.
//! * **Removal-frontier application** (push): for unweighted graphs the
//!   removed nodes are partitioned into chunks; each thread walks its
//!   chunk's adjacency, decrementing neighbor degrees through
//!   [`dsg_graph::atomic::AtomicF64`] counters and clearing frontier
//!   liveness bits through an [`dsg_graph::atomic::AtomicSetView`].
//!   Degree values are integer-valued `f64`s, for which atomic adds are
//!   exact in any order — passes are bit-identical to the serial
//!   decremental backend.
//!
//! Weighted graphs take the pull path every pass (float addition is not
//! order-independent, so pushing concurrent updates would make results
//! depend on scheduling); unweighted graphs pull once at the start and
//! push thereafter, which keeps total work at `O(m + n·passes)` like the
//! serial backend.
//!
//! Per-pass buffer reuse: chunk partials, frontier flags, and the degree
//! and liveness views are all allocated once — a pass allocates nothing.

use dsg_graph::atomic::{f64_slice_as_atomic, AtomicSetView};
use dsg_graph::{CsrDirected, CsrUndirected, NodeSet};

use super::{DegreeStore, KernelState, SideState};

/// Nodes per chunk of the fixed recomputation grid. Results are summed
/// per chunk and reduced in chunk order, so this constant (not the
/// thread count) defines the floating-point association.
const NODE_CHUNK: usize = 2048;

/// Removed nodes per chunk of the frontier-application grid.
const FRONTIER_CHUNK: usize = 256;

/// Splits `items` indivisible work units into at most `threads`
/// contiguous runs of whole chunks, returning the run boundaries in
/// units of chunks.
fn chunk_runs(num_chunks: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    let per_thread = num_chunks.div_ceil(threads).max(1);
    let mut runs = Vec::new();
    let mut start = 0;
    while start < num_chunks {
        let end = (start + per_thread).min(num_chunks);
        runs.push((start, end));
        start = end;
    }
    runs
}

/// Shared frontier fan-out: partitions `frontier` into
/// [`FRONTIER_CHUNK`]-sized chunks, drains each through `drain_chunk`
/// (on scoped threads when it pays), and writes each chunk's partial
/// into its fixed `partials` slot — the chunk grid, not the thread
/// count, defines the reduction order.
fn fan_out_frontier(
    threads: usize,
    frontier: &[u32],
    partials: &mut [f64],
    drain_chunk: &(impl Fn(&[u32]) -> f64 + Sync),
) {
    let num_chunks = partials.len();
    if threads == 1 || num_chunks == 1 {
        for (chunk, slot) in frontier.chunks(FRONTIER_CHUNK).zip(partials.iter_mut()) {
            *slot = drain_chunk(chunk);
        }
        return;
    }
    let runs = chunk_runs(num_chunks, threads);
    std::thread::scope(|scope| {
        let mut part_rest = partials;
        for &(start, end) in &runs {
            let lo = start * FRONTIER_CHUNK;
            let hi = (end * FRONTIER_CHUNK).min(frontier.len());
            let mine = &frontier[lo..hi];
            let (part_mine, rest) = part_rest.split_at_mut(end - start);
            part_rest = rest;
            scope.spawn(move || {
                for (chunk, slot) in mine.chunks(FRONTIER_CHUNK).zip(part_mine.iter_mut()) {
                    *slot = drain_chunk(chunk);
                }
            });
        }
    });
}

/// Undirected parallel CSR backend. Deterministic: identical output for
/// every thread count, and bit-identical to [`super::CsrUndirectedStore`]
/// on unweighted graphs.
pub struct ParallelCsrUndirectedStore<'g> {
    g: &'g CsrUndirected,
    threads: usize,
    /// Per-chunk partial sums (recomputation: degree sums; application:
    /// removed edge weight), reduced serially in chunk order.
    partials: Vec<f64>,
    in_removal: Vec<bool>,
    /// `true` while the degree view is current (maintained by the push
    /// path); `false` forces a pull recomputation at the next pass.
    fresh: bool,
}

impl<'g> ParallelCsrUndirectedStore<'g> {
    /// Wraps a CSR snapshot; `threads ≥ 1` worker threads per pass.
    pub fn new(g: &'g CsrUndirected, threads: usize) -> Self {
        ParallelCsrUndirectedStore {
            g,
            threads: threads.max(1),
            partials: Vec::new(),
            in_removal: vec![false; g.num_nodes()],
            fresh: false,
        }
    }

    /// Pull path: recompute all live degrees and the live edge weight
    /// over the fixed chunk grid.
    fn recompute(&mut self, alive: &NodeSet, deg: &mut [f64]) -> f64 {
        let g = self.g;
        let n = deg.len();
        let num_chunks = n.div_ceil(NODE_CHUNK).max(1);
        self.partials.clear();
        self.partials.resize(num_chunks, 0.0);

        let fill_chunk = |chunk_idx: usize, deg_chunk: &mut [f64]| -> f64 {
            let base = chunk_idx * NODE_CHUNK;
            let mut sum = 0.0f64;
            for (off, slot) in deg_chunk.iter_mut().enumerate() {
                let u = (base + off) as u32;
                if alive.contains(u) {
                    let mut d = 0.0;
                    for (v, w) in g.neighbors_weighted(u) {
                        if v != u && alive.contains(v) {
                            d += w;
                        }
                    }
                    *slot = d;
                    sum += d;
                } else {
                    *slot = 0.0;
                }
            }
            sum
        };

        if self.threads == 1 || num_chunks == 1 {
            for (chunk_idx, (deg_chunk, slot)) in deg
                .chunks_mut(NODE_CHUNK)
                .zip(self.partials.iter_mut())
                .enumerate()
            {
                *slot = fill_chunk(chunk_idx, deg_chunk);
            }
        } else {
            let runs = chunk_runs(num_chunks, self.threads);
            std::thread::scope(|scope| {
                let mut deg_rest = deg;
                let mut part_rest = self.partials.as_mut_slice();
                for &(start, end) in &runs {
                    let chunks = end - start;
                    let nodes = (chunks * NODE_CHUNK).min(deg_rest.len());
                    let (deg_mine, r1) = deg_rest.split_at_mut(nodes);
                    deg_rest = r1;
                    let (part_mine, r2) = part_rest.split_at_mut(chunks);
                    part_rest = r2;
                    let fill_chunk = &fill_chunk;
                    scope.spawn(move || {
                        for (i, (deg_chunk, slot)) in deg_mine
                            .chunks_mut(NODE_CHUNK)
                            .zip(part_mine.iter_mut())
                            .enumerate()
                        {
                            *slot = fill_chunk(start + i, deg_chunk);
                        }
                    });
                }
            });
        }
        // Reduce in chunk order: independent of the thread count.
        self.partials.iter().sum::<f64>() / 2.0
    }

    /// Push path (unweighted only): apply the removal frontier with
    /// atomic degree decrements; returns the removed live edge weight.
    fn push_frontier(&mut self, alive: &mut NodeSet, deg: &mut [f64], removed: &[u32]) -> f64 {
        let g = self.g;
        let num_chunks = removed.len().div_ceil(FRONTIER_CHUNK).max(1);
        self.partials.clear();
        self.partials.resize(num_chunks, 0.0);

        {
            let deg_atomic = f64_slice_as_atomic(deg);
            let alive_atomic = AtomicSetView::new(alive);
            let in_removal = &self.in_removal;

            let drain_chunk = |frontier: &[u32]| -> f64 {
                let mut delta = 0.0f64;
                for &u in frontier {
                    for &v in g.neighbors(u) {
                        if v == u {
                            continue;
                        }
                        if in_removal[v as usize] {
                            // Intra-frontier edge: visited from both
                            // sides, half weight each visit.
                            delta += 0.5;
                        } else if alive_atomic.contains(v) {
                            deg_atomic[v as usize].fetch_sub(1.0);
                            delta += 1.0;
                        }
                    }
                    alive_atomic.remove(u);
                    deg_atomic[u as usize].store(0.0);
                }
                delta
            };

            fan_out_frontier(self.threads, removed, &mut self.partials, &drain_chunk);
        }
        alive.recount();
        // Chunk-order reduction; every term is a multiple of 0.5, so the
        // sum is exact.
        self.partials.iter().sum::<f64>()
    }
}

impl DegreeStore for ParallelCsrUndirectedStore<'_> {
    fn init(&mut self) -> KernelState {
        self.fresh = false;
        KernelState::full(self.g.num_nodes(), 1)
    }

    fn begin_pass(&mut self, state: &mut KernelState) {
        if self.fresh {
            return;
        }
        let SideState { alive, deg } = &mut state.sides[0];
        state.total_weight = self.recompute(alive, deg);
        self.fresh = true;
    }

    fn rebuild(&mut self, state: &mut KernelState) -> bool {
        // The weighted pull path recomputes exactly every pass, so a
        // rebuild request can only follow estimator-free drift of the
        // unweighted push path — which is exact. Recompute anyway to
        // mirror the serial store's contract.
        self.fresh = false;
        self.begin_pass(state);
        true
    }

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let side = &mut state.sides[side];
        if self.g.is_weighted() {
            // Pull next pass: float pushes are order-dependent.
            for &u in removed {
                side.alive.remove(u);
            }
            self.fresh = false;
            return;
        }
        for &u in removed {
            self.in_removal[u as usize] = true;
        }
        let delta = self.push_frontier(&mut side.alive, &mut side.deg, removed);
        state.total_weight -= delta;
        for &u in removed {
            self.in_removal[u as usize] = false;
        }
    }
}

/// Directed parallel CSR backend (unweighted by construction). Push-only:
/// degrees start from the CSR degree arrays and every pass applies its
/// frontier with atomic integer decrements — bit-identical to
/// [`super::CsrDirectedStore`] at every thread count.
pub struct ParallelCsrDirectedStore<'g> {
    g: &'g CsrDirected,
    threads: usize,
    partials: Vec<f64>,
}

impl<'g> ParallelCsrDirectedStore<'g> {
    /// Wraps a directed CSR snapshot; `threads ≥ 1`.
    pub fn new(g: &'g CsrDirected, threads: usize) -> Self {
        ParallelCsrDirectedStore {
            g,
            threads: threads.max(1),
            partials: Vec::new(),
        }
    }
}

impl DegreeStore for ParallelCsrDirectedStore<'_> {
    fn init(&mut self) -> KernelState {
        let n = self.g.num_nodes();
        let mut state = KernelState::full(n, 2);
        for u in 0..n as u32 {
            state.sides[0].deg[u as usize] = self.g.out_degree(u) as f64;
            state.sides[1].deg[u as usize] = self.g.in_degree(u) as f64;
        }
        state.total_weight = self.g.num_edges() as f64;
        state
    }

    fn begin_pass(&mut self, _state: &mut KernelState) {}

    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]) {
        let g = self.g;
        let from_s = side == 0;
        let (s_side, rest) = state.sides.split_first_mut().expect("two sides");
        let t_side = &mut rest[0];
        // The removal side loses nodes; the opposite side loses degree.
        let (this_side, other_side) = if from_s {
            (s_side, t_side)
        } else {
            (t_side, s_side)
        };

        let num_chunks = removed.len().div_ceil(FRONTIER_CHUNK).max(1);
        self.partials.clear();
        self.partials.resize(num_chunks, 0.0);
        {
            let this_alive = AtomicSetView::new(&mut this_side.alive);
            let this_deg = f64_slice_as_atomic(&mut this_side.deg);
            let other_alive = &other_side.alive;
            let other_deg = f64_slice_as_atomic(&mut other_side.deg);

            let drain_chunk = |frontier: &[u32]| -> f64 {
                let mut delta = 0.0f64;
                for &u in frontier {
                    let neighbors = if from_s {
                        g.out_neighbors(u)
                    } else {
                        g.in_neighbors(u)
                    };
                    for &v in neighbors {
                        if other_alive.contains(v) {
                            other_deg[v as usize].fetch_sub(1.0);
                            delta += 1.0;
                        }
                    }
                    this_alive.remove(u);
                    this_deg[u as usize].store(0.0);
                }
                delta
            };

            fan_out_frontier(self.threads, removed, &mut self.partials, &drain_chunk);
        }
        this_side.alive.recount();
        // Arc counts are integers: the chunk-order reduction is exact.
        state.total_weight -= self.partials.iter().sum::<f64>();
    }
}
