//! The unified peeling kernel.
//!
//! Every algorithm in this crate — Algorithm 1 (undirected threshold
//! peeling), Algorithm 2 (the `k`-floor variant), Algorithm 3 (the
//! directed one-side sweep), and Charikar's greedy baseline — is the same
//! loop: *per pass, look at the live degrees, pick a removal set, record
//! the pass, apply the removals, and remember the densest intermediate
//! state*. The paper's key observation is that this pass is a bulk,
//! order-independent operation, which is exactly what makes it map to
//! MapReduce (§5.2) and, on one machine, to multi-threaded shared-memory
//! execution.
//!
//! The kernel factors that loop once, parameterized on two axes:
//!
//! * a [`DegreeStore`] owns the graph representation and keeps the live
//!   degree view current — by streaming recomputation over an
//!   [`dsg_graph::stream::EdgeStream`] (one pass per iteration, `O(n)`
//!   memory), by decremental maintenance over a CSR snapshot, by
//!   chunked multi-threaded recomputation / frontier application
//!   ([`ParallelCsrUndirectedStore`], [`ParallelCsrDirectedStore`]), or by
//!   a priority structure for one-node-at-a-time peeling
//!   ([`BucketQueueStore`], [`LazyHeapStore`]);
//! * a [`RemovalPolicy`] decides, per pass, which nodes leave — all nodes
//!   under the `(1+ε)`-threshold ([`ThresholdPolicy`]), the
//!   `ε/(1+ε)·|S|` smallest of them ([`KFloorPolicy`], Algorithm 2's
//!   clamp), the single minimum-degree node ([`MinNodePolicy`],
//!   Charikar), or a one-side sweep step chosen by the `|S|/|T|` ratio
//!   ([`DirectedSizesPolicy`], with [`DirectedNaivePolicy`] as the
//!   rejected §4.3 ablation).
//!
//! Any store composes with any policy of the same side-arity, so the
//! sketched oracle of `dsg-sketch`, the parallel backend, and every
//! algorithm frontend share one driver: [`peel`].
//!
//! ## Determinism
//!
//! The kernel itself is deterministic; stores document their own
//! guarantees. The parallel CSR stores produce results bit-identical to
//! their serial counterparts on unweighted graphs (all degree counters
//! are integer-valued, and integer `f64` arithmetic is
//! order-independent), and identical across thread counts on weighted
//! graphs (degrees are recomputed per node by a single thread over a
//! fixed chunk grid; only the assignment of chunks to threads varies).

mod csr_store;
mod greedy_store;
mod parallel_store;
mod policies;
mod stream_store;
mod trace;

pub use csr_store::{CsrDirectedStore, CsrUndirectedStore};
pub use greedy_store::{BucketQueueStore, LazyHeapStore};
pub use parallel_store::{ParallelCsrDirectedStore, ParallelCsrUndirectedStore};
pub use policies::{
    DirectedNaivePolicy, DirectedSizesPolicy, KFloorPolicy, MinNodePolicy, ThresholdPolicy,
};
pub use stream_store::{StreamingDirectedStore, StreamingUndirectedStore};
pub use trace::{PeelTrace, TracePass, FRONTIER_LEN, NEVER_REMOVED};

use dsg_graph::NodeSet;

/// One peeling side: the live node set and its current degree view.
///
/// Undirected runs have one side; directed runs have two (`S` with
/// out-degrees into `T`, and `T` with in-degrees from `S`).
pub struct SideState {
    /// Live nodes of this side.
    pub alive: NodeSet,
    /// Current degree view, indexed by node id. Entries of dead nodes are
    /// unspecified; policies must only read live nodes.
    pub deg: Vec<f64>,
}

/// The mutable state threaded through a peeling run.
pub struct KernelState {
    /// The peeling sides (one for undirected, two for directed).
    pub sides: Vec<SideState>,
    /// Live induced edge weight (edge/arc count when unweighted).
    pub total_weight: f64,
    /// 1-based index of the pass in flight (0 before the first pass).
    pub pass: u32,
}

impl KernelState {
    /// Builds a state of `sides` full sides over `n` nodes.
    pub fn full(n: usize, sides: usize) -> Self {
        KernelState {
            sides: (0..sides)
                .map(|_| SideState {
                    alive: NodeSet::full(n),
                    deg: vec![0.0; n],
                })
                .collect(),
            total_weight: 0.0,
            pass: 0,
        }
    }

    /// Sizes of the first two sides (`[len, 0]` for one-sided states) —
    /// the shape recorded in every [`PassRecord`].
    pub fn side_sizes(&self) -> [usize; 2] {
        [
            self.sides.first().map_or(0, |s| s.alive.len()),
            self.sides.get(1).map_or(0, |s| s.alive.len()),
        ]
    }
}

/// What a policy decided for one pass.
#[derive(Clone, Copy, Debug)]
pub struct Selection {
    /// Index of the side the removals apply to.
    pub side: usize,
    /// Density of the current state (the policy's density notion).
    pub density: f64,
    /// Removal threshold used this pass (policy-specific; `NaN`-free).
    pub threshold: f64,
    /// For clamp-style policies ([`KFloorPolicy`]): the smallest
    /// `(degree, id)` candidate pair that *survived* the clamp, if any.
    /// `None` for policies that remove every candidate. Incremental
    /// re-peeling uses it as a lower bound on surviving candidates.
    pub successor: Option<(f64, u32)>,
}

/// A graph backend: owns the representation and keeps the live degree
/// view of a [`KernelState`] current across passes.
pub trait DegreeStore {
    /// Builds the initial state (full sides, degrees may be deferred to
    /// the first [`DegreeStore::begin_pass`]).
    fn init(&mut self) -> KernelState;

    /// Refreshes `state` for a new pass. Streaming backends recompute
    /// degrees and the live edge weight here; decremental backends no-op.
    fn begin_pass(&mut self, state: &mut KernelState);

    /// Removes `removed` from `state.sides[side]`, updating the degree
    /// view and `total_weight` however the backend maintains them.
    fn apply_removals(&mut self, state: &mut KernelState, side: usize, removed: &[u32]);

    /// Recomputes exact state after the degree view may have drifted
    /// (decremental weighted backends). Returns `true` if the view was
    /// refreshed — the driver then re-runs the policy's selection.
    fn rebuild(&mut self, _state: &mut KernelState) -> bool {
        false
    }

    /// Extracts a minimum-degree live node on `side` (ties broken however
    /// the backend orders equal keys). Priority-structure backends
    /// override this with an `O(log n)`-ish pop; the default scans the
    /// degree view, preferring the smallest id among minima.
    fn extract_min(&mut self, state: &KernelState, side: usize) -> Option<u32> {
        let s = &state.sides[side];
        let mut best: Option<(f64, u32)> = None;
        for u in s.alive.iter() {
            let d = s.deg[u as usize];
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, u));
            }
        }
        best.map(|(_, u)| u)
    }
}

/// A removal rule: decides when peeling stops and which nodes each pass
/// removes.
pub trait RemovalPolicy {
    /// `true` when the run must stop before another pass (e.g. no live
    /// nodes, or Algorithm 2's `|S| < k` floor).
    fn finished(&self, state: &KernelState) -> bool;

    /// Fills `buf` with this pass's removal set (in application order)
    /// and returns the pass metadata.
    fn select<S: DegreeStore + ?Sized>(
        &mut self,
        store: &mut S,
        state: &KernelState,
        buf: &mut Vec<u32>,
    ) -> Selection;

    /// Last-resort progress rule, called only when [`RemovalPolicy::select`]
    /// chose nothing even after a store rebuild (reachable only with
    /// biased — e.g. Count-Min — degree estimates). Fills `buf`; the pass
    /// keeps the metadata of the original selection. The default keeps
    /// `buf` empty, which makes the driver panic: with exact degrees the
    /// average-degree argument guarantees progress.
    fn fallback<S: DegreeStore + ?Sized>(
        &mut self,
        _store: &mut S,
        _state: &KernelState,
        _buf: &mut Vec<u32>,
    ) {
    }
}

/// Statistics of one pass, recorded *before* the pass's removals.
#[derive(Clone, Debug, PartialEq)]
pub struct PassRecord {
    /// 1-based pass index.
    pub pass: u32,
    /// Side the removals applied to.
    pub side: usize,
    /// `[|S|, |T|]` at the start of the pass (`[|S|, 0]` when one-sided).
    pub side_sizes: [usize; 2],
    /// Live edge weight at the start of the pass.
    pub total_weight: f64,
    /// Density at the start of the pass.
    pub density: f64,
    /// Removal threshold of the pass.
    pub threshold: f64,
    /// Number of nodes removed.
    pub removed: usize,
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Record a [`PassRecord`] per pass. Bulk algorithms always do;
    /// one-node-per-pass peeling (Charikar) turns it off to stay `O(n)`.
    pub record_trace: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig { record_trace: true }
    }
}

/// The outcome of a peeling run.
pub struct KernelRun {
    /// The densest intermediate sides (the state at the start of
    /// [`KernelRun::best_pass`]).
    pub best_sides: Vec<NodeSet>,
    /// Density of the best state.
    pub best_density: f64,
    /// 1-based pass at which the best state was observed (0 if no pass
    /// ran).
    pub best_pass: u32,
    /// Total number of passes.
    pub passes: u32,
    /// Per-pass trace (empty when not recorded).
    pub trace: Vec<PassRecord>,
    /// Every removal in application order, as `(side, node)` — the peel
    /// order of Charikar's algorithm, and the replay log from which
    /// `best_sides` is reconstructed.
    pub removal_log: Vec<(u8, u32)>,
}

/// The peeling driver: pairs a [`KernelConfig`] with the run loop.
///
/// `PeelingKernel::default().run(store, policy)` is equivalent to
/// [`peel(store, policy, &KernelConfig::default())`](peel).
#[derive(Clone, Copy, Debug, Default)]
pub struct PeelingKernel {
    /// Driver configuration.
    pub config: KernelConfig,
}

impl PeelingKernel {
    /// Driver with the default configuration (trace recording on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Driver that skips per-pass trace records (used by
    /// one-node-per-pass policies to stay `O(n)`).
    pub fn without_trace() -> Self {
        PeelingKernel {
            config: KernelConfig {
                record_trace: false,
            },
        }
    }

    /// Runs `policy` over `store` — see [`peel`].
    pub fn run<S, P>(&self, store: &mut S, policy: &mut P) -> KernelRun
    where
        S: DegreeStore + ?Sized,
        P: RemovalPolicy + ?Sized,
    {
        peel(store, policy, &self.config)
    }
}

/// Runs the peeling loop of `policy` over `store` until finished.
///
/// Per pass: refresh the degree view, select the removal set, track the
/// best intermediate state, record the pass, apply the removals. The
/// best state is reconstructed at the end from the removal log (no
/// per-pass set cloning), so a run costs `O(n)` extra memory regardless
/// of pass count.
pub fn peel<S, P>(store: &mut S, policy: &mut P, config: &KernelConfig) -> KernelRun
where
    S: DegreeStore + ?Sized,
    P: RemovalPolicy + ?Sized,
{
    peel_impl(store, policy, config, false).0
}

/// [`peel`], additionally capturing a [`PeelTrace`] — the per-node round
/// membership, per-node removal degree, and per-pass aggregate bounds
/// that the incremental re-peeling path (`incremental` module) replays a
/// delta against. Costs one extra `O(alive)` scan per pass.
pub fn peel_traced<S, P>(
    store: &mut S,
    policy: &mut P,
    config: &KernelConfig,
) -> (KernelRun, PeelTrace)
where
    S: DegreeStore + ?Sized,
    P: RemovalPolicy + ?Sized,
{
    let (run, trace) = peel_impl(store, policy, config, true);
    (run, trace.expect("capture was requested"))
}

fn peel_impl<S, P>(
    store: &mut S,
    policy: &mut P,
    config: &KernelConfig,
    capture: bool,
) -> (KernelRun, Option<PeelTrace>)
where
    S: DegreeStore + ?Sized,
    P: RemovalPolicy + ?Sized,
{
    let mut state = store.init();
    let mut cap = capture.then(|| {
        PeelTrace::start(
            state.sides.first().map_or(0, |s| s.alive.capacity()),
            state.sides.len(),
        )
    });
    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut removed_before_best = 0usize;
    let mut removal_log: Vec<(u8, u32)> = Vec::new();
    let mut trace = Vec::new();
    let mut buf: Vec<u32> = Vec::new();

    while !policy.finished(&state) {
        state.pass += 1;
        store.begin_pass(&mut state);

        buf.clear();
        let mut sel = policy.select(store, &state, &mut buf);
        if buf.is_empty() && store.rebuild(&mut state) {
            // The decremental degree view drifted (weighted graphs); the
            // store restored the exact state a streaming pass would hold.
            buf.clear();
            sel = policy.select(store, &state, &mut buf);
        }
        if buf.is_empty() {
            policy.fallback(store, &state, &mut buf);
        }
        assert!(
            !buf.is_empty(),
            "peeling made no progress at pass {} (side {}, {} live)",
            state.pass,
            sel.side,
            state.sides[sel.side].alive.len()
        );

        if sel.density > best_density || state.pass == 1 {
            best_density = sel.density;
            best_pass = state.pass;
            removed_before_best = removal_log.len();
        }
        if config.record_trace {
            trace.push(PassRecord {
                pass: state.pass,
                side: sel.side,
                side_sizes: state.side_sizes(),
                total_weight: state.total_weight,
                density: sel.density,
                threshold: sel.threshold,
                removed: buf.len(),
            });
        }
        if let Some(c) = cap.as_mut() {
            c.record_pass(&state, &sel, &buf);
        }
        removal_log.extend(buf.iter().map(|&u| (sel.side as u8, u)));
        store.apply_removals(&mut state, sel.side, &buf);
    }

    // Reconstruct the best sides: full sets minus the removals applied
    // before the best pass.
    let mut best_sides: Vec<NodeSet> = state
        .sides
        .iter()
        .map(|s| NodeSet::full(s.alive.capacity()))
        .collect();
    for &(side, u) in &removal_log[..removed_before_best] {
        best_sides[side as usize].remove(u);
    }

    (
        KernelRun {
            best_sides,
            best_density,
            best_pass,
            passes: state.pass,
            trace,
            removal_log,
        },
        cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::CsrUndirected;

    #[test]
    fn stores_compose_with_policies() {
        // One graph, three backends, one policy: identical runs.
        let list = gen::gnp(80, 0.1, 7);
        let csr = CsrUndirected::from_edge_list(&list);
        let mut stream = MemoryStream::new(list);
        let mut oracle = crate::oracle::ExactDegreeOracle::new(80);

        let mut policy = ThresholdPolicy::new(0.5);
        let cfg = KernelConfig::default();

        let mut s1 = StreamingUndirectedStore::new(&mut stream, &mut oracle);
        let a = peel(&mut s1, &mut policy, &cfg);
        let mut s2 = CsrUndirectedStore::new(&csr);
        let b = peel(&mut s2, &mut policy, &cfg);
        let mut s3 = ParallelCsrUndirectedStore::new(&csr, 3);
        let c = peel(&mut s3, &mut policy, &cfg);

        for other in [&b, &c] {
            assert_eq!(a.passes, other.passes);
            assert_eq!(a.best_pass, other.best_pass);
            assert_eq!(a.removal_log, other.removal_log);
            assert_eq!(a.best_sides[0].to_vec(), other.best_sides[0].to_vec());
            assert_eq!(a.trace, other.trace);
        }
    }

    #[test]
    fn best_side_reconstruction_matches_density() {
        let list = gen::planted_clique(200, 500, 12, 3);
        let csr = CsrUndirected::from_edge_list(&list.graph);
        let mut store = CsrUndirectedStore::new(&csr);
        let mut policy = ThresholdPolicy::new(0.3);
        let run = peel(&mut store, &mut policy, &KernelConfig::default());
        let recomputed = csr.density_of(&run.best_sides[0]);
        assert!((recomputed - run.best_density).abs() < 1e-9);
        // The removal log is a permutation of all nodes.
        let mut nodes: Vec<u32> = run.removal_log.iter().map(|&(_, u)| u).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..200).collect::<Vec<_>>());
    }
}
