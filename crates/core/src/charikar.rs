//! Charikar's greedy peeling algorithm (APPROX 2000) — the exact
//! 2-approximation baseline that Algorithm 1 relaxes.
//!
//! Repeatedly remove a single minimum-degree node; one of the `n` prefixes
//! of the peeling order is a 2-approximation of the densest subgraph. In
//! the streaming model this would need `Θ(n)` passes — the motivation for
//! the paper — but in memory it runs in `O(m + n)` with a bucket queue
//! (unweighted) or `O((m + n) log n)` with a lazy binary heap (weighted).
//!
//! In kernel terms this is the limit case of the peeling family: the
//! [`MinNodePolicy`] (one node per pass)
//! over a priority-structure
//! [`DegreeStore`](crate::kernel::DegreeStore) —
//! [`BucketQueueStore`] or
//! [`LazyHeapStore`] — whose
//! `extract_min` keeps the whole peel at bucket-queue/heap cost.

use dsg_graph::{CsrUndirected, NodeSet};

use crate::kernel::{BucketQueueStore, LazyHeapStore, MinNodePolicy, PeelingKernel};

/// Result of the greedy peeling.
#[derive(Clone, Debug)]
pub struct CharikarResult {
    /// The densest prefix of the peeling order — guaranteed within a
    /// factor 2 of `ρ*(G)`.
    pub best_set: NodeSet,
    /// Its density.
    pub best_density: f64,
    /// Nodes in removal order (the first was peeled first).
    pub peel_order: Vec<u32>,
}

/// Runs Charikar's greedy peeling. Dispatches to the O(m + n) bucket-queue
/// backend for unweighted graphs and a lazy-heap backend for weighted
/// ones.
///
/// ```
/// use dsg_graph::{gen, CsrUndirected};
/// use dsg_core::charikar::charikar_peel;
///
/// let g = CsrUndirected::from_edge_list(&gen::clique(6));
/// let r = charikar_peel(&g);
/// assert!((r.best_density - 2.5).abs() < 1e-12);
/// assert_eq!(r.peel_order.len(), 6);
/// ```
pub fn charikar_peel(g: &CsrUndirected) -> CharikarResult {
    // One node leaves per pass, so the per-pass trace is O(n) records of
    // no analytical value — leave it off to keep the peel O(m + n).
    let kernel = PeelingKernel::without_trace();
    let mut policy = MinNodePolicy;
    let run = if g.is_weighted() {
        let mut store = LazyHeapStore::new(g);
        kernel.run(&mut store, &mut policy)
    } else {
        let mut store = BucketQueueStore::new(g);
        kernel.run(&mut store, &mut policy)
    };
    CharikarResult {
        best_set: run.best_sides.into_iter().next().expect("one side"),
        best_density: run.best_density,
        peel_order: run.removal_log.iter().map(|&(_, u)| u).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::EdgeList;

    fn csr(list: &EdgeList) -> CsrUndirected {
        CsrUndirected::from_edge_list(list)
    }

    #[test]
    fn clique_kept_whole() {
        let r = charikar_peel(&csr(&gen::clique(9)));
        assert!((r.best_density - 4.0).abs() < 1e-12);
        assert_eq!(r.best_set.len(), 9);
        assert_eq!(r.peel_order.len(), 9);
    }

    #[test]
    fn clique_with_pendant_peels_pendant_first() {
        let mut g = gen::clique(6);
        g.num_nodes = 7;
        g.push(0, 6);
        let r = charikar_peel(&csr(&g));
        assert_eq!(r.peel_order[0], 6, "pendant node must be peeled first");
        assert!((r.best_density - 2.5).abs() < 1e-12);
        assert_eq!(r.best_set.len(), 6);
    }

    #[test]
    fn two_approx_guarantee_on_random_graphs() {
        for seed in 0..10 {
            let list = gen::gnp(16, 0.35, seed);
            let g = csr(&list);
            let (_, opt) = dsg_flow::brute_force_densest(&g);
            let r = charikar_peel(&g);
            assert!(
                r.best_density * 2.0 + 1e-9 >= opt,
                "seed {seed}: greedy {} vs optimum {opt}",
                r.best_density
            );
            assert!(
                r.best_density <= opt + 1e-9,
                "greedy can never beat optimum"
            );
        }
    }

    #[test]
    fn best_density_matches_reported_set() {
        let pg = gen::planted_dense_subgraph(200, 500, 15, 0.9, 4);
        let g = csr(&pg.graph);
        let r = charikar_peel(&g);
        let recomputed = g.density_of(&r.best_set);
        assert!((recomputed - r.best_density).abs() < 1e-9);
    }

    #[test]
    fn weighted_peeling() {
        let mut g = EdgeList::new_undirected(5);
        g.push_weighted(0, 1, 10.0);
        g.push_weighted(1, 2, 10.0);
        g.push_weighted(0, 2, 10.0);
        g.push_weighted(3, 4, 0.5);
        let r = charikar_peel(&csr(&g));
        assert!((r.best_density - 10.0).abs() < 1e-9);
        assert_eq!(r.best_set.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn weighted_matches_brute_force_within_factor_two() {
        let list = gen::weighted_powerlaw(12, 0.4, 50.0);
        let g = csr(&list);
        let (_, opt) = dsg_flow::brute_force_densest(&g);
        let r = charikar_peel(&g);
        assert!(r.best_density * 2.0 + 1e-6 >= opt);
    }

    #[test]
    fn empty_graph() {
        let r = charikar_peel(&csr(&EdgeList::new_undirected(0)));
        assert_eq!(r.best_density, 0.0);
        let r = charikar_peel(&csr(&EdgeList::new_undirected(3)));
        assert_eq!(r.best_density, 0.0);
        assert_eq!(r.peel_order.len(), 3);
    }

    #[test]
    fn peel_order_is_permutation() {
        let list = gen::gnp(80, 0.1, 2);
        let r = charikar_peel(&csr(&list));
        let mut order = r.peel_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..80).collect::<Vec<_>>());
    }
}
