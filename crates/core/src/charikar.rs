//! Charikar's greedy peeling algorithm (APPROX 2000) — the exact
//! 2-approximation baseline that Algorithm 1 relaxes.
//!
//! Repeatedly remove a single minimum-degree node; one of the `n` prefixes
//! of the peeling order is a 2-approximation of the densest subgraph. In
//! the streaming model this would need `Θ(n)` passes — the motivation for
//! the paper — but in memory it runs in `O(m + n)` with a bucket queue
//! (unweighted) or `O((m + n) log n)` with a lazy binary heap (weighted).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsg_graph::{CsrUndirected, NodeSet};

/// Result of the greedy peeling.
#[derive(Clone, Debug)]
pub struct CharikarResult {
    /// The densest prefix of the peeling order — guaranteed within a
    /// factor 2 of `ρ*(G)`.
    pub best_set: NodeSet,
    /// Its density.
    pub best_density: f64,
    /// Nodes in removal order (the first was peeled first).
    pub peel_order: Vec<u32>,
}

/// Runs Charikar's greedy peeling. Dispatches to the O(m + n) bucket-queue
/// implementation for unweighted graphs and a lazy-heap implementation for
/// weighted ones.
///
/// ```
/// use dsg_graph::{gen, CsrUndirected};
/// use dsg_core::charikar::charikar_peel;
///
/// let g = CsrUndirected::from_edge_list(&gen::clique(6));
/// let r = charikar_peel(&g);
/// assert!((r.best_density - 2.5).abs() < 1e-12);
/// assert_eq!(r.peel_order.len(), 6);
/// ```
pub fn charikar_peel(g: &CsrUndirected) -> CharikarResult {
    if g.is_weighted() {
        charikar_weighted(g)
    } else {
        charikar_unweighted(g)
    }
}

/// Bucket-queue peeling for unweighted graphs, O(m + n).
fn charikar_unweighted(g: &CsrUndirected) -> CharikarResult {
    let n = g.num_nodes();
    if n == 0 {
        return CharikarResult {
            best_set: NodeSet::empty(0),
            best_density: 0.0,
            peel_order: Vec::new(),
        };
    }
    // Degrees excluding self-loops (they do not contribute to induced
    // simple-graph density).
    let mut deg: Vec<usize> = (0..n as u32)
        .map(|u| g.neighbors(u).iter().filter(|&&v| v != u).count())
        .collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // buckets[d] = nodes with current degree d (lazily cleaned).
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (u, &d) in deg.iter().enumerate() {
        buckets[d].push(u as u32);
    }
    let mut alive = vec![true; n];
    let mut edges: usize = (deg.iter().sum::<usize>()) / 2;
    let mut remaining = n;

    let mut peel_order = Vec::with_capacity(n);
    let mut best_density = edges as f64 / n as f64;
    let mut best_prefix = 0usize; // number of peeled nodes at the best point

    let mut cursor = 0usize; // lowest possibly-non-empty bucket
    while remaining > 0 {
        // Find the minimum-degree live node (lazy deletion: entries whose
        // recorded degree no longer matches are stale).
        let u = loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            debug_assert!(cursor < buckets.len(), "no live node found");
            let cand = buckets[cursor].pop().expect("bucket non-empty");
            if alive[cand as usize] && deg[cand as usize] == cursor {
                break cand;
            }
        };
        // Peel u.
        alive[u as usize] = false;
        edges -= deg[u as usize];
        remaining -= 1;
        peel_order.push(u);
        for &v in g.neighbors(u) {
            if v != u && alive[v as usize] {
                let d = deg[v as usize] - 1;
                deg[v as usize] = d;
                buckets[d].push(v);
                // A neighbor's degree dropped below the cursor.
                if d < cursor {
                    cursor = d;
                }
            }
        }
        if remaining > 0 {
            let density = edges as f64 / remaining as f64;
            if density > best_density {
                best_density = density;
                best_prefix = peel_order.len();
            }
        }
    }

    let mut best_set = NodeSet::full(n);
    for &u in &peel_order[..best_prefix] {
        best_set.remove(u);
    }
    CharikarResult {
        best_set,
        best_density,
        peel_order,
    }
}

/// Lazy-heap peeling for weighted graphs, O((m + n) log n).
fn charikar_weighted(g: &CsrUndirected) -> CharikarResult {
    let n = g.num_nodes();
    if n == 0 {
        return CharikarResult {
            best_set: NodeSet::empty(0),
            best_density: 0.0,
            peel_order: Vec::new(),
        };
    }
    let mut deg: Vec<f64> = vec![0.0; n];
    let mut total_w = 0.0f64;
    for u in 0..n as u32 {
        for (v, w) in g.neighbors_weighted(u) {
            if v != u {
                deg[u as usize] += w;
                total_w += w;
            }
        }
    }
    total_w /= 2.0;

    // Min-heap of (degree, version, node); entries whose version is stale
    // (the node's degree changed since the entry was pushed) are skipped.
    let mut version = vec![0u32; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32, u32)>> = (0..n as u32)
        .map(|u| Reverse((OrderedF64(deg[u as usize]), 0, u)))
        .collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut peel_order = Vec::with_capacity(n);
    let mut best_density = total_w / n as f64;
    let mut best_prefix = 0usize;

    while remaining > 0 {
        let u = loop {
            let Reverse((_, ver, cand)) = heap.pop().expect("heap non-empty");
            if alive[cand as usize] && ver == version[cand as usize] {
                break cand;
            }
        };
        alive[u as usize] = false;
        total_w -= deg[u as usize];
        remaining -= 1;
        peel_order.push(u);
        for (v, w) in g.neighbors_weighted(u) {
            if v != u && alive[v as usize] {
                deg[v as usize] -= w;
                version[v as usize] += 1;
                heap.push(Reverse((OrderedF64(deg[v as usize]), version[v as usize], v)));
            }
        }
        if remaining > 0 {
            let density = total_w / remaining as f64;
            if density > best_density {
                best_density = density;
                best_prefix = peel_order.len();
            }
        }
    }

    let mut best_set = NodeSet::full(n);
    for &u in &peel_order[..best_prefix] {
        best_set.remove(u);
    }
    CharikarResult {
        best_set,
        best_density,
        peel_order,
    }
}

/// Total-order wrapper for f64 heap keys (degrees are never NaN).
#[derive(Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("degree keys must not be NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::EdgeList;

    fn csr(list: &EdgeList) -> CsrUndirected {
        CsrUndirected::from_edge_list(list)
    }

    #[test]
    fn clique_kept_whole() {
        let r = charikar_peel(&csr(&gen::clique(9)));
        assert!((r.best_density - 4.0).abs() < 1e-12);
        assert_eq!(r.best_set.len(), 9);
        assert_eq!(r.peel_order.len(), 9);
    }

    #[test]
    fn clique_with_pendant_peels_pendant_first() {
        let mut g = gen::clique(6);
        g.num_nodes = 7;
        g.push(0, 6);
        let r = charikar_peel(&csr(&g));
        assert_eq!(r.peel_order[0], 6, "pendant node must be peeled first");
        assert!((r.best_density - 2.5).abs() < 1e-12);
        assert_eq!(r.best_set.len(), 6);
    }

    #[test]
    fn two_approx_guarantee_on_random_graphs() {
        for seed in 0..10 {
            let list = gen::gnp(16, 0.35, seed);
            let g = csr(&list);
            let (_, opt) = dsg_flow::brute_force_densest(&g);
            let r = charikar_peel(&g);
            assert!(
                r.best_density * 2.0 + 1e-9 >= opt,
                "seed {seed}: greedy {} vs optimum {opt}",
                r.best_density
            );
            assert!(r.best_density <= opt + 1e-9, "greedy can never beat optimum");
        }
    }

    #[test]
    fn best_density_matches_reported_set() {
        let pg = gen::planted_dense_subgraph(200, 500, 15, 0.9, 4);
        let g = csr(&pg.graph);
        let r = charikar_peel(&g);
        let recomputed = g.density_of(&r.best_set);
        assert!((recomputed - r.best_density).abs() < 1e-9);
    }

    #[test]
    fn weighted_peeling() {
        let mut g = EdgeList::new_undirected(5);
        g.push_weighted(0, 1, 10.0);
        g.push_weighted(1, 2, 10.0);
        g.push_weighted(0, 2, 10.0);
        g.push_weighted(3, 4, 0.5);
        let r = charikar_peel(&csr(&g));
        assert!((r.best_density - 10.0).abs() < 1e-9);
        assert_eq!(r.best_set.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn weighted_matches_brute_force_within_factor_two() {
        let list = gen::weighted_powerlaw(12, 0.4, 50.0);
        let g = csr(&list);
        let (_, opt) = dsg_flow::brute_force_densest(&g);
        let r = charikar_peel(&g);
        assert!(r.best_density * 2.0 + 1e-6 >= opt);
    }

    #[test]
    fn empty_graph() {
        let r = charikar_peel(&csr(&EdgeList::new_undirected(0)));
        assert_eq!(r.best_density, 0.0);
        let r = charikar_peel(&csr(&EdgeList::new_undirected(3)));
        assert_eq!(r.best_density, 0.0);
        assert_eq!(r.peel_order.len(), 3);
    }

    #[test]
    fn peel_order_is_permutation() {
        let list = gen::gnp(80, 0.1, 2);
        let r = charikar_peel(&csr(&list));
        let mut order = r.peel_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..80).collect::<Vec<_>>());
    }
}
