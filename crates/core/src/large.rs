//! **Algorithm 2** — densest subgraph with at least `k` nodes.
//!
//! Identical to Algorithm 1 except that instead of dropping *all* nodes
//! below the degree threshold, only the `ε/(1+ε)·|S|` smallest-degree ones
//! are removed. Removing the minimum number of nodes needed for fast
//! convergence guarantees that some intermediate set has size close to
//! `k`, which yields (Theorem 9) a `(3+3ε)`-approximation to `ρ*_{≥k}(G)`
//! — and a `(2+2ε)`-approximation when the optimal set is larger than `k`
//! (Lemma 10). Terminates in `O(log_{1+ε} n/k)` passes (Lemma 11): once
//! `|S| < k` no further set can qualify, so the run stops early.

use dsg_graph::stream::EdgeStream;
use dsg_graph::{density, NodeSet};

use crate::oracle::{DegreeOracle, ExactDegreeOracle};
use crate::result::{PassStats, UndirectedRun};

/// Runs Algorithm 2 over an edge stream.
///
/// Returns the densest intermediate set with `|S| ≥ k`. Requires
/// `epsilon > 0` (with `ε = 0` the prescribed removal count
/// `ε/(1+ε)·|S|` is zero and the algorithm cannot progress) and
/// `1 ≤ k ≤ n`.
pub fn approx_densest_at_least_k<S: EdgeStream + ?Sized>(
    stream: &mut S,
    k: usize,
    epsilon: f64,
) -> UndirectedRun {
    assert!(epsilon > 0.0, "Algorithm 2 requires epsilon > 0");
    let n = stream.num_nodes();
    assert!(k >= 1 && k <= n as usize, "k must be in 1..=n (k={k}, n={n})");

    let mut oracle = ExactDegreeOracle::new(n);
    let mut alive = NodeSet::full(n as usize);
    let mut best_set = alive.clone();
    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut trace = Vec::new();
    let mut pass = 0u32;

    // Scratch: (degree, node) pairs of below-threshold nodes.
    let mut candidates: Vec<(f64, u32)> = Vec::new();

    while alive.len() >= k {
        pass += 1;
        oracle.reset();
        let mut total_w = 0.0f64;
        {
            let alive_ref = &alive;
            let oracle_ref = &mut oracle;
            let total_ref = &mut total_w;
            stream.for_each_edge(&mut |u, v, w| {
                if u != v && alive_ref.contains(u) && alive_ref.contains(v) {
                    oracle_ref.record(u, v, w);
                    *total_ref += w;
                }
            });
        }
        let rho = density::undirected(total_w, alive.len());
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_set = alive.clone();
            best_pass = pass;
        }
        let threshold = density::undirected_threshold(rho, epsilon);

        // A~(S): all nodes at or below the threshold.
        candidates.clear();
        for u in alive.iter() {
            let d = oracle.degree(u);
            if d <= threshold {
                candidates.push((d, u));
            }
        }
        // |A(S)| = ε/(1+ε)·|S|, rounded up so progress is guaranteed.
        let target = ((epsilon / (1.0 + epsilon)) * alive.len() as f64).ceil() as usize;
        let target = target.clamp(1, candidates.len().max(1));
        // Take the `target` smallest-degree members of A~ (ties by id for
        // determinism). Lemma 4's counting argument guarantees
        // |A~| > ε/(1+ε)·|S|, so `target ≤ |A~|` with exact degrees.
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("degrees are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let removed = target.min(candidates.len());
        trace.push(PassStats {
            pass,
            nodes: alive.len(),
            edge_weight: total_w,
            density: rho,
            threshold,
            removed,
        });
        for &(_, u) in &candidates[..removed] {
            alive.remove(u);
        }
    }

    UndirectedRun {
        best_set,
        best_density,
        best_pass,
        passes: pass,
        trace,
    }
}

/// In-memory Algorithm 2 over a CSR snapshot with decremental degree
/// maintenance — same sequence of sets as [`approx_densest_at_least_k`]
/// on a stream of the same graph.
pub fn approx_densest_at_least_k_csr(
    g: &dsg_graph::CsrUndirected,
    k: usize,
    epsilon: f64,
) -> UndirectedRun {
    assert!(epsilon > 0.0, "Algorithm 2 requires epsilon > 0");
    let n = g.num_nodes();
    assert!(k >= 1 && k <= n, "k must be in 1..=n (k={k}, n={n})");

    let mut alive = NodeSet::full(n);
    let mut deg: Vec<f64> = vec![0.0; n];
    let mut total_w = 0.0f64;
    for u in 0..n as u32 {
        for (v, w) in g.neighbors_weighted(u) {
            if v != u {
                deg[u as usize] += w;
                total_w += w;
            }
        }
    }
    total_w /= 2.0;

    let mut best_set = alive.clone();
    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut trace = Vec::new();
    let mut pass = 0u32;
    let mut candidates: Vec<(f64, u32)> = Vec::new();
    let mut in_removal = vec![false; n];

    while alive.len() >= k {
        pass += 1;
        let rho = density::undirected(total_w, alive.len());
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_set = alive.clone();
            best_pass = pass;
        }
        let threshold = density::undirected_threshold(rho, epsilon);

        candidates.clear();
        for u in alive.iter() {
            if deg[u as usize] <= threshold {
                candidates.push((deg[u as usize], u));
            }
        }
        let target = ((epsilon / (1.0 + epsilon)) * alive.len() as f64).ceil() as usize;
        let target = target.clamp(1, candidates.len().max(1));
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("degrees are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let removed = target.min(candidates.len());
        trace.push(PassStats {
            pass,
            nodes: alive.len(),
            edge_weight: total_w,
            density: rho,
            threshold,
            removed,
        });
        for &(_, u) in &candidates[..removed] {
            in_removal[u as usize] = true;
        }
        for &(_, u) in &candidates[..removed] {
            for (v, w) in g.neighbors_weighted(u) {
                if v != u && alive.contains(v) {
                    if in_removal[v as usize] {
                        total_w -= w * 0.5;
                    } else {
                        total_w -= w;
                        deg[v as usize] -= w;
                    }
                }
            }
        }
        for &(_, u) in &candidates[..removed] {
            alive.remove(u);
            deg[u as usize] = 0.0;
            in_removal[u as usize] = false;
        }
        if total_w < 0.0 {
            total_w = 0.0;
        }
    }

    UndirectedRun {
        best_set,
        best_density,
        best_pass,
        passes: pass,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::EdgeList;

    fn run(list: &EdgeList, k: usize, eps: f64) -> UndirectedRun {
        let mut s = MemoryStream::new(list.clone());
        approx_densest_at_least_k(&mut s, k, eps)
    }

    #[test]
    fn result_respects_size_floor() {
        let pg = gen::planted_clique(300, 800, 12, 3);
        for k in [1usize, 20, 50, 150] {
            let r = run(&pg.graph, k, 0.5);
            assert!(
                r.best_set.len() >= k,
                "k={k}: returned set of size {}",
                r.best_set.len()
            );
        }
    }

    #[test]
    fn unconstrained_k_matches_quality_of_algorithm_1() {
        // With k = 1 Algorithm 2 is just a slower Algorithm 1; its result
        // must satisfy the same (2+2eps) guarantee vs the planted density.
        let pg = gen::planted_clique(200, 500, 15, 9);
        let eps = 0.5;
        let r = run(&pg.graph, 1, eps);
        assert!(r.best_density + 1e-9 >= pg.planted_density / (2.0 + 2.0 * eps));
    }

    #[test]
    fn three_eps_guarantee_vs_exact() {
        // Exhaustive ρ*_{≥k} on small graphs vs Algorithm 2's bound.
        use dsg_graph::CsrUndirected;
        for seed in 0..6 {
            let list = gen::gnp(14, 0.35, seed);
            let g = CsrUndirected::from_edge_list(&list);
            for k in [2usize, 5, 8] {
                // Brute-force ρ*_{≥k}.
                let mut opt = 0.0f64;
                for mask in 1u32..(1 << 14) {
                    if (mask.count_ones() as usize) < k {
                        continue;
                    }
                    let set = NodeSet::from_iter(14, (0..14u32).filter(|&i| mask & (1 << i) != 0));
                    let d = g.density_of(&set);
                    if d > opt {
                        opt = d;
                    }
                }
                for eps in [0.3, 1.0] {
                    let r = run(&list, k, eps);
                    let bound = opt / (3.0 + 3.0 * eps);
                    assert!(
                        r.best_density + 1e-9 >= bound,
                        "seed {seed} k {k} eps {eps}: {} < {bound} (opt {opt})",
                        r.best_density
                    );
                    assert!(r.best_set.len() >= k);
                }
            }
        }
    }

    #[test]
    fn pass_bound_log_n_over_k() {
        let pg = gen::planted_dense_subgraph(1000, 4000, 40, 0.6, 21);
        let eps = 1.0;
        for k in [10usize, 100, 500] {
            let r = run(&pg.graph, k, eps);
            // |S| shrinks by a (1+eps) factor per pass until it hits k.
            let bound = ((1000.0 / k as f64).ln() / (1.0 + eps).ln()).ceil() as u32 + 3;
            assert!(
                r.passes <= bound,
                "k={k}: {} passes > bound {bound}",
                r.passes
            );
        }
    }

    #[test]
    fn larger_k_never_larger_density() {
        let pg = gen::planted_clique(400, 1200, 15, 2);
        let d_small = run(&pg.graph, 5, 0.5).best_density;
        let d_large = run(&pg.graph, 200, 0.5).best_density;
        // ρ*_{≥k} is non-increasing in k; the approximation follows loosely,
        // but the k=200 answer can never exceed the k=5 optimum bound scale.
        assert!(d_large <= d_small + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon > 0")]
    fn zero_epsilon_rejected() {
        let g = gen::clique(5);
        run(&g, 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_rejected() {
        let g = gen::clique(5);
        run(&g, 6, 0.5);
    }

    #[test]
    fn csr_matches_stream_exactly() {
        use dsg_graph::CsrUndirected;
        for seed in 0..4 {
            let list = gen::gnp(150, 0.06, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for (k, eps) in [(1usize, 0.5), (20, 0.3), (80, 1.5)] {
                let a = run(&list, k, eps);
                let b = approx_densest_at_least_k_csr(&csr, k, eps);
                assert_eq!(a.passes, b.passes, "seed {seed} k {k} eps {eps}");
                assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
                assert!((a.best_density - b.best_density).abs() < 1e-9);
                for (x, y) in a.trace.iter().zip(&b.trace) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.removed, y.removed);
                }
            }
        }
    }

    #[test]
    fn k_equals_n_returns_whole_graph() {
        let g = gen::cycle(12);
        let r = run(&g, 12, 0.5);
        assert_eq!(r.best_set.len(), 12);
        assert!((r.best_density - 1.0).abs() < 1e-12);
        assert_eq!(r.passes, 1);
    }
}
