//! **Algorithm 2** — densest subgraph with at least `k` nodes.
//!
//! Identical to Algorithm 1 except that instead of dropping *all* nodes
//! below the degree threshold, only the `ε/(1+ε)·|S|` smallest-degree ones
//! are removed. Removing the minimum number of nodes needed for fast
//! convergence guarantees that some intermediate set has size close to
//! `k`, which yields (Theorem 9) a `(3+3ε)`-approximation to `ρ*_{≥k}(G)`
//! — and a `(2+2ε)`-approximation when the optimal set is larger than `k`
//! (Lemma 10). Terminates in `O(log_{1+ε} n/k)` passes (Lemma 11): once
//! `|S| < k` no further set can qualify, so the run stops early.
//!
//! In kernel terms this is Algorithm 1 with the
//! [`KFloorPolicy`] removal rule in place of
//! the plain threshold; the degree-store backends are shared unchanged.

use dsg_graph::stream::EdgeStream;
use dsg_graph::CsrUndirected;

use crate::kernel::{
    CsrUndirectedStore, KFloorPolicy, ParallelCsrUndirectedStore, PeelingKernel,
    StreamingUndirectedStore,
};
use crate::oracle::ExactDegreeOracle;
use crate::result::UndirectedRun;

fn check_k(k: usize, n: usize) {
    assert!(k >= 1 && k <= n, "k must be in 1..=n (k={k}, n={n})");
}

/// Runs Algorithm 2 over an edge stream.
///
/// Returns the densest intermediate set with `|S| ≥ k`. Requires
/// `epsilon > 0` (with `ε = 0` the prescribed removal count
/// `ε/(1+ε)·|S|` is zero and the algorithm cannot progress) and
/// `1 ≤ k ≤ n`.
pub fn approx_densest_at_least_k<S: EdgeStream + ?Sized>(
    stream: &mut S,
    k: usize,
    epsilon: f64,
) -> UndirectedRun {
    let n = stream.num_nodes();
    let mut policy = KFloorPolicy::new(k, epsilon);
    check_k(k, n as usize);
    let mut oracle = ExactDegreeOracle::new(n);
    let mut store = StreamingUndirectedStore::new(stream, &mut oracle);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// Fallible form of [`approx_densest_at_least_k`] for file-backed
/// streams: if a pass failed (I/O error, file modified between passes —
/// [`EdgeStream::take_error`]) the computed run is invalid and the
/// stream's error is returned instead. Never fails on `MemoryStream`.
pub fn try_approx_densest_at_least_k<S: EdgeStream + ?Sized>(
    stream: &mut S,
    k: usize,
    epsilon: f64,
) -> dsg_graph::Result<UndirectedRun> {
    let run = approx_densest_at_least_k(stream, k, epsilon);
    match stream.take_error() {
        Some(e) => Err(e),
        None => Ok(run),
    }
}

/// In-memory Algorithm 2 over a CSR snapshot with decremental degree
/// maintenance — same sequence of sets as [`approx_densest_at_least_k`]
/// on a stream of the same graph.
pub fn approx_densest_at_least_k_csr(g: &CsrUndirected, k: usize, epsilon: f64) -> UndirectedRun {
    let mut policy = KFloorPolicy::new(k, epsilon);
    check_k(k, g.num_nodes());
    let mut store = CsrUndirectedStore::new(g);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// Multi-threaded in-memory Algorithm 2 with `threads` workers per pass —
/// deterministic at every thread count and bit-identical to
/// [`approx_densest_at_least_k_csr`] on unweighted graphs.
pub fn approx_densest_at_least_k_csr_parallel(
    g: &CsrUndirected,
    k: usize,
    epsilon: f64,
    threads: usize,
) -> UndirectedRun {
    let mut policy = KFloorPolicy::new(k, epsilon);
    check_k(k, g.num_nodes());
    let mut store = ParallelCsrUndirectedStore::new(g, threads);
    UndirectedRun::from_kernel(PeelingKernel::new().run(&mut store, &mut policy))
}

/// [`approx_densest_at_least_k_csr`] with a
/// [`PeelTrace`](crate::kernel::PeelTrace) capture — the seed state of
/// incremental re-peeling ([`crate::incremental`]). Same set sequence
/// as the streaming form on the same graph.
pub fn approx_densest_at_least_k_csr_traced(
    g: &CsrUndirected,
    k: usize,
    epsilon: f64,
) -> (UndirectedRun, crate::kernel::PeelTrace) {
    let mut policy = KFloorPolicy::new(k, epsilon);
    check_k(k, g.num_nodes());
    let mut store = CsrUndirectedStore::new(g);
    let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
    (UndirectedRun::from_kernel(run), trace)
}

/// [`approx_densest_at_least_k_csr_parallel`] with a
/// [`PeelTrace`](crate::kernel::PeelTrace) capture.
pub fn approx_densest_at_least_k_csr_parallel_traced(
    g: &CsrUndirected,
    k: usize,
    epsilon: f64,
    threads: usize,
) -> (UndirectedRun, crate::kernel::PeelTrace) {
    let mut policy = KFloorPolicy::new(k, epsilon);
    check_k(k, g.num_nodes());
    let mut store = ParallelCsrUndirectedStore::new(g, threads);
    let (run, trace) = crate::kernel::peel_traced(&mut store, &mut policy, &Default::default());
    (UndirectedRun::from_kernel(run), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;
    use dsg_graph::{EdgeList, NodeSet};

    fn run(list: &EdgeList, k: usize, eps: f64) -> UndirectedRun {
        let mut s = MemoryStream::new(list.clone());
        approx_densest_at_least_k(&mut s, k, eps)
    }

    #[test]
    fn result_respects_size_floor() {
        let pg = gen::planted_clique(300, 800, 12, 3);
        for k in [1usize, 20, 50, 150] {
            let r = run(&pg.graph, k, 0.5);
            assert!(
                r.best_set.len() >= k,
                "k={k}: returned set of size {}",
                r.best_set.len()
            );
        }
    }

    #[test]
    fn unconstrained_k_matches_quality_of_algorithm_1() {
        // With k = 1 Algorithm 2 is just a slower Algorithm 1; its result
        // must satisfy the same (2+2eps) guarantee vs the planted density.
        let pg = gen::planted_clique(200, 500, 15, 9);
        let eps = 0.5;
        let r = run(&pg.graph, 1, eps);
        assert!(r.best_density + 1e-9 >= pg.planted_density / (2.0 + 2.0 * eps));
    }

    #[test]
    fn three_eps_guarantee_vs_exact() {
        // Exhaustive ρ*_{≥k} on small graphs vs Algorithm 2's bound.
        use dsg_graph::CsrUndirected;
        for seed in 0..6 {
            let list = gen::gnp(14, 0.35, seed);
            let g = CsrUndirected::from_edge_list(&list);
            for k in [2usize, 5, 8] {
                // Brute-force ρ*_{≥k}.
                let mut opt = 0.0f64;
                for mask in 1u32..(1 << 14) {
                    if (mask.count_ones() as usize) < k {
                        continue;
                    }
                    let set = NodeSet::from_iter(14, (0..14u32).filter(|&i| mask & (1 << i) != 0));
                    let d = g.density_of(&set);
                    if d > opt {
                        opt = d;
                    }
                }
                for eps in [0.3, 1.0] {
                    let r = run(&list, k, eps);
                    let bound = opt / (3.0 + 3.0 * eps);
                    assert!(
                        r.best_density + 1e-9 >= bound,
                        "seed {seed} k {k} eps {eps}: {} < {bound} (opt {opt})",
                        r.best_density
                    );
                    assert!(r.best_set.len() >= k);
                }
            }
        }
    }

    #[test]
    fn pass_bound_log_n_over_k() {
        let pg = gen::planted_dense_subgraph(1000, 4000, 40, 0.6, 21);
        let eps = 1.0;
        for k in [10usize, 100, 500] {
            let r = run(&pg.graph, k, eps);
            // |S| shrinks by a (1+eps) factor per pass until it hits k.
            let bound = ((1000.0 / k as f64).ln() / (1.0 + eps).ln()).ceil() as u32 + 3;
            assert!(
                r.passes <= bound,
                "k={k}: {} passes > bound {bound}",
                r.passes
            );
        }
    }

    #[test]
    fn larger_k_never_larger_density() {
        let pg = gen::planted_clique(400, 1200, 15, 2);
        let d_small = run(&pg.graph, 5, 0.5).best_density;
        let d_large = run(&pg.graph, 200, 0.5).best_density;
        // ρ*_{≥k} is non-increasing in k; the approximation follows loosely,
        // but the k=200 answer can never exceed the k=5 optimum bound scale.
        assert!(d_large <= d_small + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon > 0")]
    fn zero_epsilon_rejected() {
        let g = gen::clique(5);
        run(&g, 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_rejected() {
        let g = gen::clique(5);
        run(&g, 6, 0.5);
    }

    #[test]
    fn csr_matches_stream_exactly() {
        use dsg_graph::CsrUndirected;
        for seed in 0..4 {
            let list = gen::gnp(150, 0.06, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for (k, eps) in [(1usize, 0.5), (20, 0.3), (80, 1.5)] {
                let a = run(&list, k, eps);
                let b = approx_densest_at_least_k_csr(&csr, k, eps);
                assert_eq!(a.passes, b.passes, "seed {seed} k {k} eps {eps}");
                assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
                assert!((a.best_density - b.best_density).abs() < 1e-9);
                for (x, y) in a.trace.iter().zip(&b.trace) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.removed, y.removed);
                }
            }
        }
    }

    #[test]
    fn parallel_csr_matches_serial_exactly() {
        use dsg_graph::CsrUndirected;
        for seed in 0..3 {
            let list = gen::gnp(130, 0.07, seed);
            let csr = CsrUndirected::from_edge_list(&list);
            for (k, eps) in [(1usize, 0.5), (25, 0.3), (90, 1.2)] {
                let serial = approx_densest_at_least_k_csr(&csr, k, eps);
                for threads in [1, 2, 5] {
                    let par = approx_densest_at_least_k_csr_parallel(&csr, k, eps, threads);
                    assert_eq!(serial.passes, par.passes, "seed {seed} k {k} t {threads}");
                    assert_eq!(serial.best_set.to_vec(), par.best_set.to_vec());
                    assert_eq!(serial.best_density.to_bits(), par.best_density.to_bits());
                    assert_eq!(serial.trace, par.trace);
                }
            }
        }
    }

    #[test]
    fn k_equals_n_returns_whole_graph() {
        let g = gen::cycle(12);
        let r = run(&g, 12, 0.5);
        assert_eq!(r.best_set.len(), 12);
        assert!((r.best_density - 1.0).abs() < 1e-12);
        assert_eq!(r.passes, 1);
    }
}
