//! # dsg-core — the streaming densest-subgraph algorithms of
//! Bahmani, Kumar, and Vassilvitskii (VLDB 2012)
//!
//! The central idea of the paper: Charikar's greedy 2-approximation peels
//! one minimum-degree node per step (a linear number of passes in the
//! streaming model); relaxing the rule to *"remove every node whose degree
//! is within a `(1+ε)` factor of twice the average"* removes a constant
//! fraction of nodes per pass, so only `O(log_{1+ε} n)` passes are needed
//! while the approximation degrades only to `(2 + 2ε)`.
//!
//! Modules:
//!
//! * [`undirected`] — **Algorithm 1**: `(2+2ε)`-approximation for
//!   undirected (optionally weighted) graphs, in both true streaming form
//!   (one degree-recomputation pass per iteration over any
//!   [`dsg_graph::stream::EdgeStream`]) and a fast in-memory form with
//!   decremental degree maintenance.
//! * [`large`] — **Algorithm 2**: `(3+3ε)`-approximation for densest
//!   subgraph with at least `k` nodes.
//! * [`directed`] — **Algorithm 3**: `(2+2ε)`-approximation for the
//!   directed (Kannan–Vinay) density, plus the `δ`-grid sweep over the
//!   ratio `c = |S|/|T|`.
//! * [`kernel`] — the **unified peeling kernel**: one pass-loop driver
//!   parameterized by a [`kernel::DegreeStore`] backend (streaming
//!   recompute, decremental CSR, parallel CSR, priority structures) and a
//!   [`kernel::RemovalPolicy`] (threshold, k-floor, min-node, directed
//!   one-side sweep). Every algorithm module above is a thin
//!   instantiation of it.
//! * [`charikar`] — Charikar's exact greedy peeling (the baseline the
//!   paper builds on), implemented with an O(m + n) bucket queue.
//! * [`cores`] — d-core decomposition (Definition 8), used by Algorithm
//!   2's analysis and by tests.
//! * [`oracle`] — the degree-oracle abstraction that lets the sketched
//!   variant of §5.1 plug into Algorithm 1.
//! * [`result`] — shared result and per-pass trace types (the traces
//!   drive the reproduction of Figures 6.2, 6.3, and 6.5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod charikar;
pub mod cores;
pub mod directed;
pub mod enumerate;
pub mod incremental;
pub mod kernel;
pub mod large;
pub mod oracle;
pub mod profile;
pub mod result;
pub mod undirected;

pub use charikar::charikar_peel;
pub use cores::CoreDecomposition;
pub use directed::{
    approx_densest_directed, approx_densest_directed_csr, approx_densest_directed_csr_parallel,
    approx_densest_directed_naive, sweep_c, sweep_c_csr, sweep_c_csr_parallel, sweep_c_refined_csr,
    DirectedRun, SweepResult,
};
pub use enumerate::{enumerate_dense_subgraphs, Community, EnumerateOptions};
pub use incremental::{
    simulate, AffectedAdjacency, IncPolicy, SimFallback, SimLimits, SimSuccess, THRESHOLD_REASON,
};
pub use kernel::{DegreeStore, PeelTrace, PeelingKernel, RemovalPolicy, TracePass};
pub use large::{
    approx_densest_at_least_k, approx_densest_at_least_k_csr,
    approx_densest_at_least_k_csr_parallel,
};
pub use oracle::{DegreeOracle, ExactDegreeOracle};
pub use profile::{peeling_profile, PeelingProfile};
pub use result::{DirectedPassStats, PassStats, UndirectedRun};
pub use undirected::{approx_densest, approx_densest_csr, approx_densest_csr_parallel};
