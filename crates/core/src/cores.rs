//! d-core decomposition (Definition 8 of the paper).
//!
//! The *d-core* `C_d(G)` is the largest induced subgraph with all degrees
//! ≥ d; the *core number* of a node is the largest `d` whose core contains
//! it. The analysis of Algorithm 2 (Theorem 9) reasons about cores, and
//! the classical facts `C_{d+1} ⊆ C_d` and `ρ*(G) ≥ d_max/2` make cores a
//! powerful test oracle for the densest-subgraph algorithms.
//!
//! Implemented with the Batagelj–Zaveršnik bucket algorithm in O(m + n)
//! (unweighted graphs).

use dsg_graph::{CsrUndirected, NodeSet};

/// Core numbers of every node of an unweighted undirected graph.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[u]` = core number of node `u`.
    pub core: Vec<u32>,
    /// The maximum core number (degeneracy of the graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Computes the core decomposition. Panics on weighted graphs (cores
    /// are a combinatorial notion on unweighted degrees).
    pub fn compute(g: &CsrUndirected) -> Self {
        assert!(
            !g.is_weighted(),
            "core decomposition is defined for unweighted graphs"
        );
        let n = g.num_nodes();
        if n == 0 {
            return CoreDecomposition {
                core: Vec::new(),
                degeneracy: 0,
            };
        }
        // Degrees ignoring self-loops.
        let mut deg: Vec<usize> = (0..n as u32)
            .map(|u| g.neighbors(u).iter().filter(|&&v| v != u).count())
            .collect();
        let max_deg = deg.iter().copied().max().unwrap_or(0);

        // Counting sort of nodes by degree.
        let mut bin = vec![0usize; max_deg + 2];
        for &d in &deg {
            bin[d] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        let mut pos = vec![0usize; n]; // position of node in `vert`
        let mut vert = vec![0u32; n]; // nodes sorted by current degree
        for u in 0..n {
            pos[u] = bin[deg[u]];
            vert[pos[u]] = u as u32;
            bin[deg[u]] += 1;
        }
        // Restore bin starts.
        for d in (1..bin.len()).rev() {
            bin[d] = bin[d - 1];
        }
        bin[0] = 0;

        let mut core: Vec<u32> = deg.iter().map(|&d| d as u32).collect();
        for i in 0..n {
            let u = vert[i];
            core[u as usize] = deg[u as usize] as u32;
            for &v in g.neighbors(u) {
                let v = v as usize;
                if v != u as usize && deg[v] > deg[u as usize] {
                    // Move v one bucket down: swap with the first node of
                    // its current bucket.
                    let dv = deg[v];
                    let pv = pos[v];
                    let pw = bin[dv];
                    let w = vert[pw];
                    if v as u32 != w {
                        vert.swap(pv, pw);
                        pos[v] = pw;
                        pos[w as usize] = pv;
                    }
                    bin[dv] += 1;
                    deg[v] -= 1;
                }
            }
        }
        let degeneracy = core.iter().copied().max().unwrap_or(0);
        CoreDecomposition { core, degeneracy }
    }

    /// The node set of the d-core `C_d(G)`.
    pub fn core_set(&self, d: u32) -> NodeSet {
        NodeSet::from_iter(
            self.core.len(),
            self.core
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= d)
                .map(|(u, _)| u as u32),
        )
    }

    /// Lower bound on `ρ*(G)`: the degeneracy-core has min degree ≥
    /// degeneracy, so its density is at least `degeneracy / 2`.
    pub fn density_lower_bound(&self) -> f64 {
        self.degeneracy as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::EdgeList;

    #[test]
    fn clique_core_numbers() {
        let g = CsrUndirected::from_edge_list(&gen::clique(6));
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn clique_with_pendant() {
        let mut list = gen::clique(5);
        list.num_nodes = 6;
        list.push(0, 5);
        let g = CsrUndirected::from_edge_list(&list);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.core[5], 1);
        assert_eq!(d.core[0], 4);
        assert_eq!(d.core_set(4).to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.core_set(1).len(), 6);
    }

    #[test]
    fn tree_has_degeneracy_one() {
        let g = CsrUndirected::from_edge_list(&gen::star(20));
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = CsrUndirected::from_edge_list(&gen::cycle(9));
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 2);
        assert!(d.core.iter().all(|&c| c == 2));
    }

    #[test]
    fn cores_are_nested() {
        let list = gen::planted_dense_subgraph(200, 600, 20, 0.8, 7).graph;
        let g = CsrUndirected::from_edge_list(&list);
        let d = CoreDecomposition::compute(&g);
        for k in 0..d.degeneracy {
            let a = d.core_set(k + 1);
            let b = d.core_set(k);
            assert!(a.is_subset_of(&b), "C_{} ⊄ C_{}", k + 1, k);
        }
    }

    #[test]
    fn core_set_has_min_degree_d() {
        let list = gen::gnp(150, 0.06, 3);
        let g = CsrUndirected::from_edge_list(&list);
        let d = CoreDecomposition::compute(&g);
        let k = d.degeneracy;
        let core = d.core_set(k);
        assert!(!core.is_empty());
        for u in core.iter() {
            let induced = g
                .neighbors(u)
                .iter()
                .filter(|&&v| v != u && core.contains(v))
                .count();
            assert!(
                induced >= k as usize,
                "node {u} has induced degree {induced} < {k}"
            );
        }
    }

    #[test]
    fn density_lower_bound_is_valid() {
        for seed in 0..5 {
            let list = gen::gnp(14, 0.4, seed);
            let g = CsrUndirected::from_edge_list(&list);
            let d = CoreDecomposition::compute(&g);
            let (_, opt) = dsg_flow::brute_force_densest(&g);
            assert!(
                d.density_lower_bound() <= opt + 1e-9,
                "seed {seed}: bound {} vs optimum {opt}",
                d.density_lower_bound()
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrUndirected::from_edge_list(&EdgeList::new_undirected(0));
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.core.is_empty());
    }
}
