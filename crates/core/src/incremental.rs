//! Delta-bounded incremental re-peeling.
//!
//! Given a [`PeelTrace`] of a finished run and a batch of edge deltas,
//! this module re-derives the run's result on the mutated graph touching
//! only an *affected set* `F` — delta endpoints plus every node whose
//! recorded round the delta could change — instead of re-peeling the
//! whole graph. The contract is exact: a successful simulation produces
//! the bit-identical result (densities, thresholds, per-pass stats, best
//! sets) of a cold re-run of the same kernel on the mutated graph, or it
//! reports a fallback reason and the caller re-peels conventionally.
//!
//! ## How it works
//!
//! Nodes outside `F` are *frozen*: the simulation hypothesizes they keep
//! their recorded rounds. Because every delta edge has both endpoints in
//! `F`, a frozen node's degree trajectory depends only on its neighbors'
//! rounds — so the hypothesis is self-consistent once no frozen node's
//! removal pass changes. Per pass the simulator maintains exact degree
//! trajectories for `F` (frozen-neighbor round buckets plus live
//! affected-affected adjacency), reconstitutes the live edge weight from
//! the recorded pass weight by exchanging the old affected contribution
//! for the simulated one, and re-computes density and threshold with the
//! same [`density`] arithmetic the kernel uses — hence bit-identical
//! `f64`s on unweighted graphs (all counters are integers).
//!
//! Two aggregate bounds recorded per pass make the frozen hypothesis
//! checkable in `O(1)` per pass: [`TracePass::max_removal_deg`] proves
//! every recorded removal still qualifies (with an exact per-node bucket
//! scan as the slow path), and [`TracePass::min_noncand_deg`] (plus
//! [`TracePass::successor`] for the k-floor clamp) proves no recorded
//! survivor newly crosses the threshold. When a frozen node provably
//! changes round it is *promoted* into `F` and the simulation restarts;
//! when a change cannot be localized the simulation gives up with a
//! fallback reason. On convergence, every frozen node's neighbors are
//! frozen or affected-with-unchanged-round, so frozen trajectories — and
//! therefore the whole run — are exact.

use dsg_graph::{density, NodeSet};

use crate::kernel::{PeelTrace, TracePass, NEVER_REMOVED};

/// The removal rule being simulated — mirrors the arithmetic of the
/// kernel policies exactly (same operations in the same order).
#[derive(Clone, Copy, Debug)]
pub enum IncPolicy {
    /// [`crate::kernel::ThresholdPolicy`] (Algorithm 1).
    Threshold {
        /// The `ε` of the `2(1+ε)·ρ` threshold.
        epsilon: f64,
    },
    /// [`crate::kernel::KFloorPolicy`] (Algorithm 2).
    KFloor {
        /// Stop once `|S| < k`.
        k: usize,
        /// The `ε` of the threshold and the removal clamp.
        epsilon: f64,
    },
    /// [`crate::kernel::DirectedSizesPolicy`] (Algorithm 3) at a fixed
    /// ratio `c`.
    DirectedSizes {
        /// The `|S|/|T|` side-selection ratio.
        c: f64,
        /// The `ε` of the one-side threshold.
        epsilon: f64,
    },
}

impl IncPolicy {
    fn sides(&self) -> usize {
        match self {
            IncPolicy::DirectedSizes { .. } => 2,
            _ => 1,
        }
    }
}

/// Old/new adjacency of affected nodes, supplied by the caller (the
/// engine answers from the base CSR plus the mutation journal).
///
/// `dir` selects the arc direction on directed graphs: `0` = out-,
/// `1` = in-neighbors. Undirected graphs only see `dir = 0`.
pub trait AffectedAdjacency {
    /// Neighbors of `u` in the pre-delta graph.
    fn old_neighbors(&self, u: u32, dir: usize) -> Vec<u32>;
    /// Neighbors of `u` in the post-delta graph.
    fn new_neighbors(&self, u: u32, dir: usize) -> Vec<u32>;
}

/// Resource limits of one simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimLimits {
    /// Fallback once `|F|` exceeds this.
    pub max_affected: usize,
    /// Fallback after this many promote-and-restart rounds.
    pub max_restarts: u32,
}

/// A successful simulation: the exact result of the cold run on the
/// mutated graph, plus the refreshed trace for the next delta.
pub struct SimSuccess {
    /// Trace of the simulated run over the mutated graph (per-pass
    /// aggregate bounds are conservative where exact values would cost a
    /// frozen scan; conservative means "may cause extra checks later",
    /// never "unsound").
    pub trace: PeelTrace,
    /// The densest intermediate sides.
    pub best_sides: Vec<NodeSet>,
    /// Density of the best state (bit-identical to the cold run).
    pub best_density: f64,
    /// 1-based pass of the best state.
    pub best_pass: u32,
    /// Total passes of the simulated run.
    pub passes: u32,
    /// Final `|F|`.
    pub affected: usize,
    /// Promote-and-restart rounds taken.
    pub restarts: u32,
}

enum Attempt {
    Done(Box<SimSuccess>),
    Grow(Vec<u32>),
    Fail(&'static str),
}

/// The threshold fallback's static reason string (the engine and the
/// bench suite key probe-overhead accounting on it).
pub const THRESHOLD_REASON: &str = "affected set exceeds the incremental threshold";

/// A simulation fallback: the static reason plus how much probe work
/// was spent before giving up. After the early-exit bound, a
/// [`THRESHOLD_REASON`] fallback always reports
/// `affected == max_affected + 1` — the probe stops growing `F` the
/// moment it crosses the cap, before any further pass work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimFallback {
    /// Static fallback reason.
    pub reason: &'static str,
    /// `|F|` when the simulation gave up (0 before seeding started).
    pub affected: usize,
    /// Promote-and-restart rounds taken before the fallback.
    pub restarts: u32,
}

impl From<&'static str> for SimFallback {
    fn from(reason: &'static str) -> Self {
        SimFallback {
            reason,
            affected: 0,
            restarts: 0,
        }
    }
}

/// Runs the simulation. `seed` must contain every delta-edge endpoint
/// and every node id in `trace.n..n_new`; `trace` must come from the
/// same policy on the pre-delta graph. Returns the exact cold-run result
/// or a fallback carrying the static reason and the probe work spent.
pub fn simulate(
    policy: IncPolicy,
    trace: &PeelTrace,
    n_new: usize,
    seed: &[u32],
    adj: &dyn AffectedAdjacency,
    limits: SimLimits,
) -> Result<SimSuccess, SimFallback> {
    let sides = policy.sides();
    if trace.sides() != sides {
        return Err("trace arity does not match policy".into());
    }
    if n_new < trace.n as usize {
        return Err("node count shrank".into());
    }

    // Seed the affected set *before* building the per-pass buckets: a
    // delta too large for the tier must cost O(cap), not O(n·passes).
    // The moment `|F|` crosses the cap the probe is doomed — bail with
    // exactly `max_affected + 1` members, never having looked at the
    // trace body.
    let mut in_f = vec![false; n_new];
    let mut f_ids: Vec<u32> = Vec::new();
    for &u in seed {
        if !in_f[u as usize] {
            in_f[u as usize] = true;
            f_ids.push(u);
            if f_ids.len() > limits.max_affected {
                return Err(SimFallback {
                    reason: THRESHOLD_REASON,
                    affected: f_ids.len(),
                    restarts: 0,
                });
            }
        }
    }
    f_ids.sort_unstable();

    let p_total = trace.passes.len();
    // Per-pass id buckets of the recorded run, built once (independent of F).
    let mut bucket: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p_total + 1]; sides];
    for (b, rounds) in bucket.iter_mut().zip(&trace.rounds) {
        for (id, &r) in rounds.iter().enumerate() {
            if r != NEVER_REMOVED {
                b[r as usize].push(id as u32);
            }
        }
    }

    let mut restarts = 0u32;
    loop {
        match attempt(policy, trace, n_new, &f_ids, &in_f, &bucket, adj, restarts) {
            Attempt::Done(s) => return Ok(*s),
            Attempt::Fail(r) => {
                return Err(SimFallback {
                    reason: r,
                    affected: f_ids.len(),
                    restarts,
                })
            }
            Attempt::Grow(more) => {
                restarts += 1;
                if restarts > limits.max_restarts {
                    return Err(SimFallback {
                        reason: "too many affected-set expansions",
                        affected: f_ids.len(),
                        restarts,
                    });
                }
                let mut grew = false;
                for u in more {
                    if !in_f[u as usize] {
                        in_f[u as usize] = true;
                        f_ids.push(u);
                        grew = true;
                        // Early exit: once the cap is crossed no further
                        // attempt can run, so stop growing — the doomed
                        // probe's expansion work stays O(cap), not
                        // O(|Grow batch|) + another full attempt.
                        if f_ids.len() > limits.max_affected {
                            return Err(SimFallback {
                                reason: THRESHOLD_REASON,
                                affected: f_ids.len(),
                                restarts,
                            });
                        }
                    }
                }
                if !grew {
                    return Err(SimFallback {
                        reason: "expansion made no progress",
                        affected: f_ids.len(),
                        restarts,
                    });
                }
                f_ids.sort_unstable();
            }
        }
    }
}

#[inline]
fn pair_lt(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

#[inline]
fn pair_min(a: Option<(f64, u32)>, b: (f64, u32)) -> (f64, u32) {
    match a {
        Some(x) if pair_lt(x, b) => x,
        _ => b,
    }
}

/// Lower bound on the `(degree, id)` pairs of nodes the simulation
/// cannot see (frozen recorded survivors).
#[derive(Clone, Copy)]
enum Bound {
    /// The smallest unseen pair is exactly this one — a frozen node
    /// whose recorded identity and degree are both known, so it can be
    /// promoted into the affected set to tighten the bound.
    Inclusive((f64, u32)),
    /// Every unseen pair sorts strictly above this one.
    Exclusive((f64, u32)),
    /// Every unseen pair sorts at or above this one; the witness id is
    /// not meaningful (not promotable).
    AtLeast((f64, u32)),
}

impl Bound {
    /// True when `pr` sorts strictly below every pair the bound allows.
    fn admits(self, pr: (f64, u32)) -> bool {
        match self {
            Bound::Inclusive(b) | Bound::AtLeast(b) => pair_lt(pr, b),
            Bound::Exclusive(b) => !pair_lt(b, pr),
        }
    }

    fn pair(self) -> (f64, u32) {
        match self {
            Bound::Inclusive(b) | Bound::Exclusive(b) | Bound::AtLeast(b) => b,
        }
    }
}

/// Bound on the pairs of recorded pass-`q` non-candidates that the
/// simulation does not track exactly (those past the recorded frontier).
fn unlisted_bound(trace: &PeelTrace, q: usize) -> Option<Bound> {
    if trace.frontier_complete[q - 1] {
        None
    } else if let Some(&last) = trace.frontier[q - 1].last() {
        Some(Bound::Exclusive(last))
    } else {
        // An assembled trace whose frontier cut dropped everything:
        // only the scalar degree bound remains.
        Some(Bound::AtLeast((trace.passes[q - 1].min_noncand_deg, 0)))
    }
}

/// Bound on the pairs of *frozen* recorded pass-`q` non-candidates:
/// the first frontier entry still outside the affected set is exact,
/// anything past the frontier is bounded by [`unlisted_bound`].
fn noncand_bound(trace: &PeelTrace, q: usize, in_f: &[bool]) -> Option<Bound> {
    for &e in &trace.frontier[q - 1] {
        if !in_f[e.1 as usize] {
            return Some(Bound::Inclusive(e));
        }
    }
    unlisted_bound(trace, q)
}

#[allow(clippy::too_many_arguments)]
fn attempt(
    policy: IncPolicy,
    trace: &PeelTrace,
    n_new: usize,
    f_ids: &[u32],
    in_f: &[bool],
    bucket: &[Vec<Vec<u32>>],
    adj: &dyn AffectedAdjacency,
    restarts: u32,
) -> Attempt {
    let sides = policy.sides();
    let n_old = trace.n as usize;
    let p_total = trace.passes.len();
    let nf = f_ids.len();

    let mut loc = vec![u32::MAX; n_new];
    for (i, &id) in f_ids.iter().enumerate() {
        loc[id as usize] = i as u32;
    }

    // Per (side, affected-node) structure. The side-s degree of a node is
    // over its dir-s neighbors (undirected: dir 0; directed S: out, T: in),
    // whose liveness is tracked on side `rel = sides - 1 - s` for directed
    // runs and side 0 otherwise.
    let mut frozen_rounds: Vec<Vec<Vec<u32>>> = vec![Vec::with_capacity(nf); sides];
    let mut aa_old: Vec<Vec<Vec<u32>>> = vec![Vec::with_capacity(nf); sides];
    let mut aa_new: Vec<Vec<Vec<u32>>> = vec![Vec::with_capacity(nf); sides];
    for s in 0..sides {
        let rel = if sides == 2 { 1 - s } else { 0 };
        for &id in f_ids {
            let mut fr: Vec<u32> = Vec::new();
            let mut an: Vec<u32> = Vec::new();
            for v in adj.new_neighbors(id, s) {
                if in_f[v as usize] {
                    an.push(loc[v as usize]);
                } else {
                    if v as usize >= n_old {
                        return Attempt::Grow(vec![v]);
                    }
                    fr.push(trace.rounds[rel][v as usize]);
                }
            }
            fr.sort_unstable();
            let mut ao: Vec<u32> = Vec::new();
            if (id as usize) < n_old {
                for v in adj.old_neighbors(id, s) {
                    if in_f[v as usize] {
                        ao.push(loc[v as usize]);
                    }
                    // A frozen old-neighbor is also a frozen new-neighbor
                    // (delta endpoints are all in F), already in `fr`.
                }
            }
            frozen_rounds[s].push(fr);
            aa_old[s].push(ao);
            aa_new[s].push(an);
        }
    }

    // Exact degree trajectories and liveness, old run and simulated run.
    let mut ptr: Vec<Vec<usize>> = vec![vec![0; nf]; sides];
    let mut odeg: Vec<Vec<i64>> = Vec::with_capacity(sides);
    let mut ndeg: Vec<Vec<i64>> = Vec::with_capacity(sides);
    let mut oalive: Vec<Vec<bool>> = Vec::with_capacity(sides);
    let mut nalive: Vec<Vec<bool>> = vec![vec![true; nf]; sides];
    let mut new_round: Vec<Vec<u32>> = vec![vec![NEVER_REMOVED; nf]; sides];
    let mut new_rdeg: Vec<Vec<f64>> = vec![vec![0.0; nf]; sides];
    for s in 0..sides {
        let mut od = Vec::with_capacity(nf);
        let mut nd = Vec::with_capacity(nf);
        let mut oa = Vec::with_capacity(nf);
        for (f, &id) in f_ids.iter().enumerate() {
            od.push((frozen_rounds[s][f].len() + aa_old[s][f].len()) as i64);
            nd.push((frozen_rounds[s][f].len() + aa_new[s][f].len()) as i64);
            oa.push((id as usize) < n_old);
        }
        odeg.push(od);
        ndeg.push(nd);
        oalive.push(oa);
    }

    // Side aggregates. Frozen liveness is shared between the runs (that
    // is the frozen hypothesis); affected liveness diverges.
    let old_f = f_ids.iter().filter(|&&id| (id as usize) < n_old).count() as i64;
    let mut frozen_alive: Vec<i64> = vec![n_old as i64 - old_f; sides];
    let mut o_aff_alive: Vec<i64> = vec![old_f; sides];
    let mut n_aff_alive: Vec<i64> = vec![nf as i64; sides];
    let mut sum_f_old: Vec<i64> = (0..sides)
        .map(|s| {
            (0..nf)
                .filter(|&f| oalive[s][f])
                .map(|f| frozen_rounds[s][f].len() as i64)
                .sum()
        })
        .collect();
    let mut sum_f_new: Vec<i64> = (0..sides)
        .map(|s| (0..nf).map(|f| frozen_rounds[s][f].len() as i64).sum())
        .collect();
    let (mut aa_e_old, mut aa_e_new) = {
        let o: i64 = aa_old[0].iter().map(|v| v.len() as i64).sum();
        let n: i64 = aa_new[0].iter().map(|v| v.len() as i64).sum();
        if sides == 2 {
            (o, n)
        } else {
            (o / 2, n / 2)
        }
    };

    // Recorded rounds of F members: subtracted from bucket sizes, and
    // replayed as old-run affected deaths.
    let mut f_round_cnt: Vec<Vec<i64>> = vec![vec![0; p_total + 2]; sides];
    let mut f_deaths: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p_total + 2]; sides];
    for s in 0..sides {
        for (f, &id) in f_ids.iter().enumerate() {
            if (id as usize) < n_old {
                let r = trace.rounds[s][id as usize];
                if r != NEVER_REMOVED {
                    f_round_cnt[s][r as usize] += 1;
                    f_deaths[s][r as usize].push(f as u32);
                }
            }
        }
    }

    let mut best_density = 0.0f64;
    let mut best_pass = 0u32;
    let mut new_passes: Vec<TracePass> = Vec::new();
    let mut new_frontier: Vec<Vec<(f64, u32)>> = Vec::new();
    let mut new_frontier_complete: Vec<bool> = Vec::new();
    let mut expand: Vec<u32> = Vec::new();
    // Selected affected removals of the pass in flight: (local, degree at
    // selection — the removal degree the cold run would record).
    let mut rem: Vec<(u32, f64)> = Vec::new();

    let mut qn: u32 = 0;
    loop {
        qn += 1;
        let s0 = frozen_alive[0] + n_aff_alive[0];
        let s1 = if sides == 2 {
            frozen_alive[1] + n_aff_alive[1]
        } else {
            0
        };
        let finished = match policy {
            IncPolicy::Threshold { .. } => s0 == 0,
            IncPolicy::KFloor { k, .. } => s0 < k as i64,
            IncPolicy::DirectedSizes { .. } => s0 == 0 || s1 == 0,
        };
        if finished {
            qn -= 1;
            break;
        }
        let in_trace = (qn as usize) <= p_total;
        if !in_trace && frozen_alive.iter().any(|&x| x > 0) {
            return Attempt::Fail("recorded trace exhausted with frozen survivors");
        }
        let p = in_trace.then(|| &trace.passes[qn as usize - 1]);

        // Live weight: recorded weight minus the old affected
        // contribution plus the simulated one (frozen-frozen weight is
        // identical in both runs).
        let w: i64 = match p {
            Some(p) => {
                let sfo: i64 = sum_f_old.iter().sum();
                let sfn: i64 = sum_f_new.iter().sum();
                (p.total_weight as i64) - sfo - aa_e_old + sfn + aa_e_new
            }
            None => aa_e_new,
        };

        // Policy step: density, threshold, side, affected removals, and
        // the frozen-hypothesis proofs.
        rem.clear();
        let side;
        let rho;
        let t;
        let successor;
        match policy {
            IncPolicy::Threshold { epsilon } | IncPolicy::KFloor { epsilon, .. } => {
                side = 0usize;
                rho = density::undirected(w as f64, s0 as usize);
                t = density::undirected_threshold(rho, epsilon);
            }
            IncPolicy::DirectedSizes { c, epsilon } => {
                rho = density::directed(w as f64, s0 as usize, s1 as usize);
                let from_s = s0 as f64 / s1 as f64 >= c;
                side = usize::from(!from_s);
                let side_len = if from_s { s0 } else { s1 };
                t = density::directed_threshold(w as f64, side_len as usize, epsilon);
                if let Some(p) = p {
                    if p.side as usize != side {
                        return Attempt::Fail("side choice flipped");
                    }
                }
            }
        }

        let frozen_removed = match p {
            Some(p) => i64::from(p.removed) - f_round_cnt[side][qn as usize],
            None => 0,
        };
        let mut max_rm = f64::NEG_INFINITY;
        let mut min_nc = f64::INFINITY;
        // Live affected non-candidates of the pass, for the simulated
        // trace's frontier.
        let mut aff_nc: Vec<(f64, u32)> = Vec::new();
        // Recorded successor (k-floor only): unseen surviving candidates
        // sort at or above it — the simulated frontier must cut there.
        let mut emit_succ: Option<(f64, u32)> = None;
        let removed_total;
        if let IncPolicy::KFloor { epsilon, .. } = policy {
            // Exact candidate pairs we know: the recorded removals of
            // this pass (all must still be candidates) plus the live
            // affected candidates.
            let mut kpairs: Vec<(f64, u32)> = Vec::new();
            if let Some(p) = p {
                for &id in &bucket[side][qn as usize] {
                    if in_f[id as usize] {
                        continue;
                    }
                    let d = trace.removal_deg[side][id as usize];
                    if d > t {
                        // Lost candidacy: its round changes — promote.
                        expand.push(id);
                    } else {
                        kpairs.push((d, id));
                    }
                }
                if !expand.is_empty() {
                    return Attempt::Grow(expand);
                }
                debug_assert!(frozen_removed >= 0);
                let _ = p;
            }
            for f in 0..nf {
                if nalive[side][f] {
                    let d = ndeg[side][f] as f64;
                    if d <= t {
                        kpairs.push((d, f_ids[f]));
                    } else {
                        if d < min_nc {
                            min_nc = d;
                        }
                        aff_nc.push((d, f_ids[f]));
                    }
                }
            }
            kpairs.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("degrees are never NaN")
                    .then(a.1.cmp(&b.1))
            });
            // Unseen candidate pairs hide among frozen recorded
            // survivors: surviving candidates sort at or above the
            // recorded successor (strictly above once the successor node
            // itself is affected), non-candidates at or above the first
            // frontier entry left frozen. A bound whose degree exceeds
            // the threshold cannot yield candidates at all.
            let succ = p.and_then(|p| p.successor);
            let mut blocking: Vec<Bound> = Vec::new();
            if let Some(sp) = succ {
                if sp.0 <= t {
                    blocking.push(if in_f[sp.1 as usize] {
                        Bound::Exclusive(sp)
                    } else {
                        Bound::Inclusive(sp)
                    });
                }
            }
            if p.is_some() {
                if let Some(b) = noncand_bound(trace, qn as usize, in_f) {
                    if b.pair().0 <= t {
                        blocking.push(b);
                    }
                }
            }
            let avail = if blocking.is_empty() {
                kpairs.len()
            } else {
                kpairs
                    .iter()
                    .take_while(|&&pr| blocking.iter().all(|b| b.admits(pr)))
                    .count()
            };
            let target = ((epsilon / (1.0 + epsilon)) * s0 as usize as f64).ceil() as usize;
            let removed_n = if target >= 1 && target <= avail {
                target
            } else if blocking.is_empty() {
                // Every candidate is known: the clamp resolves exactly.
                let c_total = kpairs.len();
                let clamped = target.clamp(1, c_total.max(1)).min(c_total);
                if clamped == 0 {
                    return Attempt::Fail("no candidates to remove");
                }
                clamped
            } else {
                // The pick order past `avail` may open with a frozen
                // node we can identify exactly (the recorded successor
                // or the frontier head). Promote it so its pair becomes
                // known; bounds without a witness are unresolvable.
                for b in &blocking {
                    if let Bound::Inclusive((_, id)) = *b {
                        expand.push(id);
                    }
                }
                if expand.is_empty() {
                    return Attempt::Fail("k-floor clamp crosses unseen candidates");
                }
                return Attempt::Grow(expand);
            };
            // Selected frozen pairs keep their round; displaced frozen
            // pairs (recorded removed, now surviving the clamp) change —
            // promote them.
            for &(d, id) in &kpairs[removed_n..] {
                if !in_f[id as usize] {
                    expand.push(id);
                }
                let _ = d;
            }
            if !expand.is_empty() {
                return Attempt::Grow(expand);
            }
            for &(d, id) in &kpairs[..removed_n] {
                if in_f[id as usize] {
                    rem.push((loc[id as usize], d));
                }
                if d > max_rm {
                    max_rm = d;
                }
            }
            // Conservative lower bound over everything still unseen,
            // for the simulated pass record.
            let mut lower: Option<(f64, u32)> = None;
            if let Some(p) = p {
                if p.min_noncand_deg < min_nc {
                    min_nc = p.min_noncand_deg;
                }
                if let Some(sp) = succ {
                    lower = Some(sp);
                    if sp.0 < min_nc {
                        min_nc = sp.0;
                    }
                }
                if p.min_noncand_deg.is_finite() {
                    lower = Some(pair_min(lower, (p.min_noncand_deg, 0)));
                }
            }
            successor = match kpairs.get(removed_n) {
                Some(&nxt) => Some(pair_min(lower, nxt)),
                None => lower,
            };
            emit_succ = succ;
            removed_total = removed_n as i64;
        } else {
            // Threshold-style policies (Algorithm 1 / Algorithm 3 at a
            // fixed side): every node at or below the threshold goes.
            if let Some(p) = p {
                if frozen_removed > 0 && p.max_removal_deg > t {
                    for &id in &bucket[side][qn as usize] {
                        if !in_f[id as usize] && trace.removal_deg[side][id as usize] > t {
                            expand.push(id);
                        }
                    }
                    if !expand.is_empty() {
                        return Attempt::Grow(expand);
                    }
                }
                // Recorded survivors the shifted threshold now reaches:
                // the frontier names them exactly — promote; beyond the
                // frontier identities are unknowable.
                for &(d, id) in &trace.frontier[qn as usize - 1] {
                    if d <= t && !in_f[id as usize] {
                        expand.push(id);
                    }
                }
                if !expand.is_empty() {
                    return Attempt::Grow(expand);
                }
                if let Some(b) = unlisted_bound(trace, qn as usize) {
                    if b.pair().0 <= t {
                        return Attempt::Fail("threshold crossed beyond the recorded frontier");
                    }
                }
                if frozen_removed > 0 {
                    max_rm = p.max_removal_deg;
                }
                min_nc = p.min_noncand_deg;
            }
            for f in 0..nf {
                if nalive[side][f] {
                    let d = ndeg[side][f] as f64;
                    if d <= t {
                        rem.push((f as u32, d));
                        if d > max_rm {
                            max_rm = d;
                        }
                    } else {
                        if d < min_nc {
                            min_nc = d;
                        }
                        aff_nc.push((d, f_ids[f]));
                    }
                }
            }
            successor = None;
            removed_total = frozen_removed + rem.len() as i64;
        }

        if removed_total <= 0 {
            return Attempt::Fail("simulated pass removed nothing");
        }

        // Frontier of the simulated pass: exact affected non-candidates
        // merged with the frozen remainder of the recorded frontier, cut
        // strictly below every pair an unseen survivor could take so the
        // list stays a true prefix of the pass's smallest non-candidates.
        {
            let mut known = core::mem::take(&mut aff_nc);
            let mut bounds: Vec<Bound> = Vec::new();
            let mut complete = true;
            if p.is_some() {
                let q = qn as usize;
                for &e in &trace.frontier[q - 1] {
                    if !in_f[e.1 as usize] && e.0 > t {
                        known.push(e);
                    }
                }
                if let Some(b) = unlisted_bound(trace, q) {
                    bounds.push(b);
                    complete = false;
                }
                if !trace.frontier_complete[q - 1] {
                    complete = false;
                }
            }
            if let Some(sp) = emit_succ {
                bounds.push(if in_f[sp.1 as usize] {
                    Bound::Exclusive(sp)
                } else {
                    Bound::Inclusive(sp)
                });
                complete = false;
            }
            known.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("degrees are never NaN")
                    .then(a.1.cmp(&b.1))
            });
            known.retain(|&pr| bounds.iter().all(|b| b.admits(pr)));
            if known.len() > crate::kernel::FRONTIER_LEN {
                known.truncate(crate::kernel::FRONTIER_LEN);
                complete = false;
            }
            new_frontier.push(known);
            new_frontier_complete.push(complete);
        }

        if rho > best_density || qn == 1 {
            best_density = rho;
            best_pass = qn;
        }
        new_passes.push(TracePass {
            side: side as u8,
            alive: [s0 as u32, s1 as u32],
            total_weight: w as f64,
            density: rho,
            threshold: t,
            removed: removed_total as u32,
            max_removal_deg: max_rm,
            min_noncand_deg: min_nc,
            successor,
        });

        // --- End-of-pass updates ---
        // 1. Frozen deaths of recorded pass qn decrement both trajectories.
        if let Some(p) = p {
            for s in 0..sides {
                for f in 0..nf {
                    let fr = &frozen_rounds[s][f];
                    let mut pt = ptr[s][f];
                    let mut dec = 0i64;
                    while pt < fr.len() && fr[pt] == qn {
                        pt += 1;
                        dec += 1;
                    }
                    if dec > 0 {
                        ptr[s][f] = pt;
                        odeg[s][f] -= dec;
                        ndeg[s][f] -= dec;
                        if oalive[s][f] {
                            sum_f_old[s] -= dec;
                        }
                        if nalive[s][f] {
                            sum_f_new[s] -= dec;
                        }
                    }
                }
            }
            frozen_alive[p.side as usize] -=
                i64::from(p.removed) - f_round_cnt[p.side as usize][qn as usize];
            // 2. Old-run affected deaths of pass qn.
            let os = p.side as usize;
            for &fd in &f_deaths[os][qn as usize] {
                let f = fd as usize;
                oalive[os][f] = false;
                o_aff_alive[os] -= 1;
                sum_f_old[os] -= (frozen_rounds[os][f].len() - ptr[os][f]) as i64;
                let other = if sides == 2 { 1 - os } else { 0 };
                for &ga in &aa_old[os][f] {
                    let g = ga as usize;
                    odeg[other][g] -= 1;
                    if oalive[other][g] {
                        aa_e_old -= 1;
                    }
                }
            }
        }
        // 3. Simulated affected deaths of pass qn.
        for &(fa, d) in &rem {
            let f = fa as usize;
            nalive[side][f] = false;
            new_round[side][f] = qn;
            new_rdeg[side][f] = d;
            n_aff_alive[side] -= 1;
            sum_f_new[side] -= (frozen_rounds[side][f].len() - ptr[side][f]) as i64;
            let other = if sides == 2 { 1 - side } else { 0 };
            for &ga in &aa_new[side][f] {
                let g = ga as usize;
                ndeg[other][g] -= 1;
                if nalive[other][g] {
                    aa_e_new -= 1;
                }
            }
        }
    }

    // Fixpoint check: an affected node whose round changed within the
    // simulated horizon invalidates its frozen neighbors' trajectories —
    // promote them and restart.
    let horizon = qn;
    for (s, nr) in new_round.iter().enumerate() {
        for (f, &id) in f_ids.iter().enumerate() {
            let old_r = if (id as usize) < n_old {
                trace.rounds[s][id as usize]
            } else {
                NEVER_REMOVED
            };
            let new_r = nr[f];
            if old_r != new_r && old_r.min(new_r) <= horizon {
                for v in adj.new_neighbors(id, s) {
                    if !in_f[v as usize] {
                        expand.push(v);
                    }
                }
            }
        }
    }
    if !expand.is_empty() {
        expand.sort_unstable();
        expand.dedup();
        return Attempt::Grow(expand);
    }

    // Assemble the new trace and the best sides.
    let mut rounds: Vec<Vec<u32>> = vec![vec![NEVER_REMOVED; n_new]; sides];
    let mut removal_deg: Vec<Vec<f64>> = vec![vec![0.0; n_new]; sides];
    for s in 0..sides {
        for id in 0..n_old {
            if !in_f[id] {
                let r = trace.rounds[s][id];
                if r != NEVER_REMOVED && r <= horizon {
                    rounds[s][id] = r;
                    removal_deg[s][id] = trace.removal_deg[s][id];
                }
            }
        }
        for (f, &id) in f_ids.iter().enumerate() {
            rounds[s][id as usize] = new_round[s][f];
            removal_deg[s][id as usize] = new_rdeg[s][f];
        }
    }
    let best_sides: Vec<NodeSet> = (0..sides)
        .map(|s| {
            NodeSet::from_iter(
                n_new,
                (0..n_new as u32).filter(|&id| rounds[s][id as usize] >= best_pass),
            )
        })
        .collect();

    Attempt::Done(Box::new(SimSuccess {
        trace: PeelTrace {
            n: n_new as u32,
            rounds,
            removal_deg,
            passes: new_passes,
            frontier: new_frontier,
            frontier_complete: new_frontier_complete,
        },
        best_sides,
        best_density,
        best_pass,
        passes: qn,
        affected: nf,
        restarts,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed::sweep_c_csr_traced;
    use crate::kernel::{
        peel_traced, CsrDirectedStore, CsrUndirectedStore, KFloorPolicy, KernelConfig,
        ThresholdPolicy,
    };
    use dsg_graph::{CsrDirected, CsrUndirected, EdgeList, GraphKind, SplitMix64};

    struct ListAdjacency {
        old_out: Vec<Vec<u32>>,
        old_in: Vec<Vec<u32>>,
        new_out: Vec<Vec<u32>>,
        new_in: Vec<Vec<u32>>,
    }

    impl ListAdjacency {
        fn build(old: &EdgeList, new: &EdgeList, n: usize) -> Self {
            let mut a = ListAdjacency {
                old_out: vec![Vec::new(); n],
                old_in: vec![Vec::new(); n],
                new_out: vec![Vec::new(); n],
                new_in: vec![Vec::new(); n],
            };
            let undirected = old.kind == GraphKind::Undirected;
            for (which, list) in [(0, old), (1, new)] {
                for &(u, v) in &list.edges {
                    let (out, inn) = if which == 0 {
                        (&mut a.old_out, &mut a.old_in)
                    } else {
                        (&mut a.new_out, &mut a.new_in)
                    };
                    out[u as usize].push(v);
                    inn[v as usize].push(u);
                    if undirected {
                        out[v as usize].push(u);
                        inn[u as usize].push(v);
                    }
                }
            }
            a
        }
    }

    impl AffectedAdjacency for ListAdjacency {
        fn old_neighbors(&self, u: u32, dir: usize) -> Vec<u32> {
            if dir == 0 {
                self.old_out[u as usize].clone()
            } else {
                self.old_in[u as usize].clone()
            }
        }
        fn new_neighbors(&self, u: u32, dir: usize) -> Vec<u32> {
            if dir == 0 {
                self.new_out[u as usize].clone()
            } else {
                self.new_in[u as usize].clone()
            }
        }
    }

    fn random_list(n: u32, m: usize, kind: GraphKind, seed: u64) -> EdgeList {
        let mut rng = SplitMix64::new(seed);
        let mut list = match kind {
            GraphKind::Undirected => EdgeList::new_undirected(n),
            GraphKind::Directed => EdgeList::new_directed(n),
        };
        for _ in 0..m {
            let u = (rng.next_u64() % n as u64) as u32;
            let v = (rng.next_u64() % n as u64) as u32;
            list.push(u, v);
        }
        list.canonicalize();
        list
    }

    /// One delta step: flips `k` random pairs (present → removed, absent
    /// → added) and returns the canonicalized new list plus the seed set.
    fn mutate(list: &EdgeList, k: usize, seed: u64) -> (EdgeList, Vec<u32>) {
        let mut rng = SplitMix64::new(seed);
        let n = list.num_nodes as u64;
        let mut edges: std::collections::BTreeSet<(u32, u32)> =
            list.edges.iter().copied().collect();
        let mut touched = Vec::new();
        for _ in 0..k {
            let mut u = (rng.next_u64() % n) as u32;
            let mut v = (rng.next_u64() % n) as u32;
            if u == v {
                continue;
            }
            if list.kind == GraphKind::Undirected && u > v {
                std::mem::swap(&mut u, &mut v);
            }
            if !edges.remove(&(u, v)) {
                edges.insert((u, v));
            }
            touched.push(u);
            touched.push(v);
        }
        let mut out = match list.kind {
            GraphKind::Undirected => EdgeList::new_undirected(list.num_nodes),
            GraphKind::Directed => EdgeList::new_directed(list.num_nodes),
        };
        for &(u, v) in &edges {
            out.push(u, v);
        }
        out.canonicalize();
        (out, touched)
    }

    fn assert_same_trace(a: &PeelTrace, b: &PeelTrace) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.passes.len(), b.passes.len());
        for (x, y) in a.passes.iter().zip(&b.passes) {
            assert_eq!(x.side, y.side);
            assert_eq!(x.alive, y.alive);
            assert_eq!(x.total_weight.to_bits(), y.total_weight.to_bits());
            assert_eq!(x.density.to_bits(), y.density.to_bits());
            assert_eq!(x.threshold.to_bits(), y.threshold.to_bits());
            assert_eq!(x.removed, y.removed);
        }
    }

    #[test]
    fn undirected_simulation_matches_cold() {
        let limits = SimLimits {
            max_affected: usize::MAX,
            max_restarts: 64,
        };
        let (mut hits, mut total) = (0, 0);
        for seed in 0..12u64 {
            let old = random_list(60, 150, GraphKind::Undirected, 100 + seed);
            let (new, touched) = mutate(&old, 3, 200 + seed);
            let csr_old = CsrUndirected::from_edge_list(&old);
            let csr_new = CsrUndirected::from_edge_list(&new);
            for eps in [0.25, 0.5, 1.0] {
                let (_, trace) = {
                    let mut store = CsrUndirectedStore::new(&csr_old);
                    let mut policy = ThresholdPolicy::new(eps);
                    peel_traced(&mut store, &mut policy, &KernelConfig::default())
                };
                let (cold, cold_trace) = {
                    let mut store = CsrUndirectedStore::new(&csr_new);
                    let mut policy = ThresholdPolicy::new(eps);
                    peel_traced(&mut store, &mut policy, &KernelConfig::default())
                };
                let adj = ListAdjacency::build(&old, &new, old.num_nodes as usize);
                total += 1;
                if let Ok(sim) = simulate(
                    IncPolicy::Threshold { epsilon: eps },
                    &trace,
                    old.num_nodes as usize,
                    &touched,
                    &adj,
                    limits,
                ) {
                    hits += 1;
                    assert_eq!(sim.best_density.to_bits(), cold.best_density.to_bits());
                    assert_eq!(sim.best_pass, cold.best_pass);
                    assert_eq!(sim.passes, cold.passes);
                    assert_eq!(sim.best_sides[0].to_vec(), cold.best_sides[0].to_vec());
                    assert_same_trace(&sim.trace, &cold_trace);
                }
                // A fallback (threshold drift past a recorded survivor)
                // is legitimate: the engine re-peels then. Exactness is
                // asserted on every hit; the hit rate below guards
                // against the simulation degenerating to always-fallback.
            }
        }
        assert!(
            hits * 3 >= total,
            "incremental hit rate collapsed: {hits}/{total}"
        );
    }

    #[test]
    fn k_floor_simulation_matches_cold() {
        let limits = SimLimits {
            max_affected: usize::MAX,
            max_restarts: 64,
        };
        let (mut hits, mut total) = (0, 0);
        for seed in 0..10u64 {
            let old = random_list(50, 120, GraphKind::Undirected, 300 + seed);
            let (new, touched) = mutate(&old, 2, 400 + seed);
            let csr_old = CsrUndirected::from_edge_list(&old);
            let csr_new = CsrUndirected::from_edge_list(&new);
            for k in [4usize, 12] {
                let eps = 0.5;
                let (_, trace) = {
                    let mut store = CsrUndirectedStore::new(&csr_old);
                    let mut policy = KFloorPolicy::new(k, eps);
                    peel_traced(&mut store, &mut policy, &KernelConfig::default())
                };
                let (cold, cold_trace) = {
                    let mut store = CsrUndirectedStore::new(&csr_new);
                    let mut policy = KFloorPolicy::new(k, eps);
                    peel_traced(&mut store, &mut policy, &KernelConfig::default())
                };
                let adj = ListAdjacency::build(&old, &new, old.num_nodes as usize);
                total += 1;
                if let Ok(sim) = simulate(
                    IncPolicy::KFloor { k, epsilon: eps },
                    &trace,
                    old.num_nodes as usize,
                    &touched,
                    &adj,
                    limits,
                ) {
                    hits += 1;
                    assert_eq!(sim.best_density.to_bits(), cold.best_density.to_bits());
                    assert_eq!(sim.passes, cold.passes);
                    assert_eq!(sim.best_sides[0].to_vec(), cold.best_sides[0].to_vec());
                    assert_same_trace(&sim.trace, &cold_trace);
                }
            }
        }
        assert!(
            hits * 3 >= total,
            "incremental hit rate collapsed: {hits}/{total}"
        );
    }

    #[test]
    fn directed_simulation_matches_cold_per_ratio() {
        let limits = SimLimits {
            max_affected: usize::MAX,
            max_restarts: 64,
        };
        let (mut hits, mut total) = (0, 0);
        for seed in 0..8u64 {
            let old = random_list(40, 160, GraphKind::Directed, 500 + seed);
            let (new, touched) = mutate(&old, 2, 600 + seed);
            let csr_old = CsrDirected::from_edge_list(&old);
            let csr_new = CsrDirected::from_edge_list(&new);
            let (_, traces) = sweep_c_csr_traced(&csr_old, 2.0, 0.5);
            let adj = ListAdjacency::build(&old, &new, old.num_nodes as usize);
            for (c, trace) in &traces {
                let cold = {
                    let mut store = CsrDirectedStore::new(&csr_new);
                    let mut policy = crate::kernel::DirectedSizesPolicy::new(*c, 0.5);
                    peel_traced(&mut store, &mut policy, &KernelConfig::default())
                };
                total += 1;
                if let Ok(sim) = simulate(
                    IncPolicy::DirectedSizes {
                        c: *c,
                        epsilon: 0.5,
                    },
                    trace,
                    old.num_nodes as usize,
                    &touched,
                    &adj,
                    limits,
                ) {
                    hits += 1;
                    assert_eq!(sim.best_density.to_bits(), cold.0.best_density.to_bits());
                    assert_eq!(sim.passes, cold.0.passes);
                    assert_eq!(sim.best_sides[0].to_vec(), cold.0.best_sides[0].to_vec());
                    assert_eq!(sim.best_sides[1].to_vec(), cold.0.best_sides[1].to_vec());
                    assert_same_trace(&sim.trace, &cold.1);
                }
            }
        }
        assert!(
            hits * 4 >= total,
            "incremental hit rate collapsed: {hits}/{total}"
        );
    }

    #[test]
    fn node_growth_is_supported_undirected() {
        let limits = SimLimits {
            max_affected: usize::MAX,
            max_restarts: 64,
        };
        let old = random_list(30, 80, GraphKind::Undirected, 900);
        let mut new = old.clone();
        // Attach two fresh nodes to the graph.
        new.push(2, 30);
        new.push(30, 31);
        new.push(5, 31);
        new.num_nodes = 32;
        new.canonicalize();
        let csr_old = CsrUndirected::from_edge_list(&old);
        let csr_new = CsrUndirected::from_edge_list(&new);
        let (_, trace) = {
            let mut store = CsrUndirectedStore::new(&csr_old);
            let mut policy = ThresholdPolicy::new(0.5);
            peel_traced(&mut store, &mut policy, &KernelConfig::default())
        };
        let cold = {
            let mut store = CsrUndirectedStore::new(&csr_new);
            let mut policy = ThresholdPolicy::new(0.5);
            peel_traced(&mut store, &mut policy, &KernelConfig::default())
        };
        let adj = ListAdjacency::build(&old, &new, 32);
        let sim = simulate(
            IncPolicy::Threshold { epsilon: 0.5 },
            &trace,
            32,
            &[2, 5, 30, 31],
            &adj,
            limits,
        )
        .expect("growth simulation succeeds");
        assert_eq!(sim.best_density.to_bits(), cold.0.best_density.to_bits());
        assert_eq!(sim.best_sides[0].to_vec(), cold.0.best_sides[0].to_vec());
        assert_same_trace(&sim.trace, &cold.1);
    }

    #[test]
    fn affected_cap_forces_fallback() {
        let old = random_list(40, 100, GraphKind::Undirected, 77);
        let (new, touched) = mutate(&old, 5, 78);
        let csr_old = CsrUndirected::from_edge_list(&old);
        let (_, trace) = {
            let mut store = CsrUndirectedStore::new(&csr_old);
            let mut policy = ThresholdPolicy::new(0.5);
            peel_traced(&mut store, &mut policy, &KernelConfig::default())
        };
        let adj = ListAdjacency::build(&old, &new, old.num_nodes as usize);
        let res = simulate(
            IncPolicy::Threshold { epsilon: 0.5 },
            &trace,
            old.num_nodes as usize,
            &touched,
            &adj,
            SimLimits {
                max_affected: 0,
                max_restarts: 8,
            },
        );
        let fb = match res {
            Err(fb) => fb,
            Ok(_) => panic!("cap of 0 must force a fallback"),
        };
        assert_eq!(fb.reason, THRESHOLD_REASON);
        // The early-exit bound: the probe stops growing F the moment it
        // crosses the cap, so a threshold fallback reports exactly
        // cap + 1 members no matter how large the delta was.
        assert_eq!(fb.affected, 1);
    }

    #[test]
    fn threshold_fallback_probe_is_bounded_by_the_cap() {
        // A delta touching far more endpoints than the cap admits must
        // bail after exactly cap + 1 seed insertions — O(cap) probe
        // work — not after materializing the whole affected set.
        let old = random_list(400, 1600, GraphKind::Undirected, 21);
        let (new, touched) = mutate(&old, 120, 22);
        assert!(touched.len() > 9, "delta must overflow the cap");
        let csr_old = CsrUndirected::from_edge_list(&old);
        let (_, trace) = {
            let mut store = CsrUndirectedStore::new(&csr_old);
            let mut policy = ThresholdPolicy::new(0.5);
            peel_traced(&mut store, &mut policy, &KernelConfig::default())
        };
        let adj = ListAdjacency::build(&old, &new, old.num_nodes as usize);
        for cap in [0usize, 3, 8] {
            let fb = match simulate(
                IncPolicy::Threshold { epsilon: 0.5 },
                &trace,
                old.num_nodes as usize,
                &touched,
                &adj,
                SimLimits {
                    max_affected: cap,
                    max_restarts: 8,
                },
            ) {
                Err(fb) => fb,
                Ok(_) => panic!("overflowing delta must fall back"),
            };
            assert_eq!(fb.reason, THRESHOLD_REASON);
            assert_eq!(fb.affected, cap + 1);
            assert_eq!(fb.restarts, 0);
        }
    }
}
