//! Fact extraction: from a token stream to per-function concurrency
//! facts — lock fields, guard acquisitions with their live extents,
//! outgoing calls, panic sites, blocking sites.
//!
//! The extractor is deliberately conservative in both directions and the
//! README documents its limits: guards are modeled as
//! *let-bound* (live until the enclosing block closes or an explicit
//! `drop(name)`) or *temporaries* (live until the end of the statement,
//! extended through a single trailing brace group so `match` scrutinees
//! and `if let` temporaries are covered, matching Rust 2021 semantics).
//! Test code (`#[cfg(test)]` items, `tests/`, `benches/` directories) is
//! excluded entirely.

use crate::config::Config;
use crate::lexer::{lex, Suppression, Tok, Token};
use std::collections::{HashMap, HashSet};

/// What kind of synchronization primitive a struct field holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    OnceLock,
    Condvar,
}

impl LockKind {
    pub fn name(&self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::OnceLock => "OnceLock",
            LockKind::Condvar => "Condvar",
        }
    }
}

/// A struct field of lock type; identity is `Struct.field`.
#[derive(Debug, Clone)]
pub struct LockField {
    pub id: String,
    pub kind: LockKind,
    pub file: String,
    pub line: u32,
}

/// One guard acquisition inside a function body, with the token range
/// over which the guard is considered live.
#[derive(Debug, Clone)]
pub struct Acquire {
    pub lock: String,
    pub method: String,
    pub line: u32,
    /// Token index of the acquisition (`.` of `.lock()` etc).
    pub start: usize,
    /// Exclusive token index where the guard dies.
    pub end: usize,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(...)`
    Free(String),
    /// `recv.foo(...)`
    Method(String),
    /// `Type::foo(...)` — last two path segments.
    Qualified(String, String),
}

impl Callee {
    pub fn name(&self) -> &str {
        match self {
            Callee::Free(n) | Callee::Method(n) | Callee::Qualified(_, n) => n,
        }
    }
}

/// An outgoing call site.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: Callee,
    pub line: u32,
    pub idx: usize,
}

/// A panic-capable site (`unwrap`, `expect`, `panic!`, ...).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub what: String,
    pub line: u32,
}

/// A call whose name is on the configured blocking list.
#[derive(Debug, Clone)]
pub struct BlockSite {
    pub what: String,
    pub line: u32,
}

/// Everything the rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FuncFacts {
    pub name: String,
    /// `Some(Type)` when defined inside `impl Type` (or `impl Trait for Type`).
    pub impl_of: Option<String>,
    pub file: String,
    pub line: u32,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<Call>,
    pub panics: Vec<PanicSite>,
    pub blocking: Vec<BlockSite>,
}

impl FuncFacts {
    /// Display name: `Type::method` or plain `fn` name.
    pub fn display(&self) -> String {
        match &self.impl_of {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

/// Facts for one source file.
#[derive(Debug)]
pub struct FileFacts {
    pub path: String,
    pub locks: Vec<LockField>,
    pub funcs: Vec<FuncFacts>,
    pub suppressions: Vec<Suppression>,
}

/// Workspace-wide lock-field registry, used to resolve receivers.
#[derive(Debug, Default)]
pub struct LockRegistry {
    pub locks: Vec<LockField>,
    by_struct_field: HashMap<(String, String), usize>,
    by_field: HashMap<String, Vec<usize>>,
}

impl LockRegistry {
    pub fn add(&mut self, strukt: &str, field: &str, lock: LockField) {
        let idx = self.locks.len();
        self.by_struct_field
            .insert((strukt.to_string(), field.to_string()), idx);
        self.by_field
            .entry(field.to_string())
            .or_default()
            .push(idx);
        self.locks.push(lock);
    }

    /// Resolve a `recv.field.method()` receiver to a lock field. Prefers
    /// the current `impl` type when the receiver is `self.field`; falls
    /// back to a workspace-unique field name.
    fn resolve(&self, impl_hint: Option<&str>, is_self: bool, field: &str) -> Option<&LockField> {
        if is_self {
            if let Some(s) = impl_hint {
                if let Some(&i) = self
                    .by_struct_field
                    .get(&(s.to_string(), field.to_string()))
                {
                    return Some(&self.locks[i]);
                }
            }
        }
        match self.by_field.get(field).map(Vec::as_slice) {
            Some([one]) => Some(&self.locks[*one]),
            _ => None,
        }
    }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "fn", "impl", "struct", "enum", "trait", "pub", "use", "mod", "where", "unsafe",
    "ref", "mut", "dyn", "true", "false", "Some", "None", "Ok", "Err", "self", "Self", "super",
    "crate", "const", "static", "type",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Phase A: collect lock-typed struct fields from one file.
pub fn collect_locks(tokens: &[Token], file: &str, reg: &mut LockRegistry) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("struct") {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                // Scan to the struct body `{` (or `;` / `(` for unit and
                // tuple structs, which cannot carry named lock fields).
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('{') if angle == 0 => break,
                        Tok::Punct(';') | Tok::Punct('(') if angle == 0 => {
                            j = tokens.len();
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < tokens.len() {
                    collect_struct_fields(tokens, j, name, file, reg);
                }
            }
        }
        i += 1;
    }
}

/// Parse `field: Type` pairs in a struct body starting at its `{`.
fn collect_struct_fields(
    tokens: &[Token],
    open: usize,
    strukt: &str,
    file: &str,
    reg: &mut LockRegistry,
) {
    let close = match matching_brace(tokens, open) {
        Some(c) => c,
        None => return,
    };
    let mut i = open + 1;
    while i < close {
        // Skip attributes and visibility.
        if tokens[i].is_punct('#') {
            i = skip_attr(tokens, i);
            continue;
        }
        if tokens[i].ident() == Some("pub") {
            i += 1;
            if i < close && tokens[i].is_punct('(') {
                i = matching_paren(tokens, i).map_or(close, |p| p + 1);
            }
            continue;
        }
        // Field: `name : <type tokens> ,`
        let (name, nline) = match (&tokens[i].tok, tokens[i].line) {
            (Tok::Ident(n), l) => (n.clone(), l),
            _ => {
                i += 1;
                continue;
            }
        };
        if !matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut kind: Option<LockKind> = None;
        while j < close {
            match &tokens[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct(',') if angle <= 0 && paren == 0 => break,
                Tok::Ident(t) if kind.is_none() => {
                    kind = match t.as_str() {
                        "Mutex" if next_is(tokens, j + 1, '<') => Some(LockKind::Mutex),
                        "RwLock" if next_is(tokens, j + 1, '<') => Some(LockKind::RwLock),
                        "OnceLock" if next_is(tokens, j + 1, '<') => Some(LockKind::OnceLock),
                        "Condvar" => Some(LockKind::Condvar),
                        _ => None,
                    };
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(kind) = kind {
            reg.add(
                strukt,
                &name,
                LockField {
                    id: format!("{strukt}.{name}"),
                    kind,
                    file: file.to_string(),
                    line: nline,
                },
            );
        }
        i = j + 1;
    }
}

fn next_is(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    matching(tokens, open, '{', '}')
}

fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    matching(tokens, open, '(', ')')
}

fn matching(tokens: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skip an attribute `#[...]` / `#![...]`, returning the index after it.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1;
    }
    if j < tokens.len() && tokens[j].is_punct('[') {
        if let Some(close) = matching(tokens, j, '[', ']') {
            return close + 1;
        }
    }
    j
}

/// True when the attribute starting at `#` index `i` contains `cfg ( test )`.
fn attr_is_cfg_test(tokens: &[Token], i: usize) -> bool {
    let end = skip_attr(tokens, i);
    let mut k = i;
    while k + 3 < end {
        if tokens[k].ident() == Some("cfg")
            && tokens[k + 1].is_punct('(')
            && tokens[k + 2].ident() == Some("test")
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Phase B: extract per-function facts from one file.
pub fn extract_functions(
    tokens: &[Token],
    file: &str,
    reg: &LockRegistry,
    cfg: &Config,
) -> Vec<FuncFacts> {
    let depths = brace_depths(tokens);
    let mut funcs = Vec::new();
    let mut impl_stack: Vec<(u32, String)> = Vec::new();
    let mut cfg_test = false;
    let mut i = 0;
    while i < tokens.len() {
        // Maintain the impl-context stack.
        while let Some((d, _)) = impl_stack.last() {
            if depths[i] <= *d {
                impl_stack.pop();
            } else {
                break;
            }
        }
        match &tokens[i].tok {
            Tok::Punct('#') if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == '[' || *p == '!') =>
            {
                if attr_is_cfg_test(tokens, i) {
                    cfg_test = true;
                }
                i = skip_attr(tokens, i);
            }
            Tok::Ident(w) if w == "impl" && !cfg_test => {
                if let Some((name, body_open)) = parse_impl_header(tokens, i) {
                    impl_stack.push((depths[body_open], name));
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "fn" => {
                let fname = tokens.get(i + 1).and_then(Token::ident).map(str::to_string);
                let fline = tokens[i].line;
                // Find the body `{` (or `;` for a bodyless trait decl).
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('-') if next_is(tokens, j + 1, '>') => j += 1,
                        Tok::Punct('(') => {
                            j = matching_paren(tokens, j).unwrap_or(tokens.len());
                        }
                        Tok::Punct('{') if angle <= 0 => {
                            body = Some(j);
                            break;
                        }
                        Tok::Punct(';') if angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                match (fname, body) {
                    (Some(name), Some(open)) => {
                        let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
                        if !cfg_test {
                            let impl_of = impl_stack.last().map(|(_, n)| n.clone());
                            funcs.push(extract_body(
                                tokens, &depths, open, close, name, impl_of, file, fline, reg, cfg,
                            ));
                        }
                        i = close + 1;
                    }
                    _ => i = j + 1,
                }
                cfg_test = false;
            }
            Tok::Ident(w) if w == "mod" && cfg_test => {
                // `#[cfg(test)] mod t { ... }` — skip the whole module.
                let mut j = i + 1;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    i = matching_brace(tokens, j).map_or(tokens.len(), |c| c + 1);
                } else {
                    i = j + 1;
                }
                cfg_test = false;
            }
            Tok::Ident(w)
                if cfg_test
                    && matches!(
                        w.as_str(),
                        "struct" | "enum" | "impl" | "trait" | "const" | "static" | "use" | "type"
                    ) =>
            {
                // Any other cfg(test) item: skip to its end.
                let mut j = i + 1;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    i = matching_brace(tokens, j).map_or(tokens.len(), |c| c + 1);
                } else {
                    i = j + 1;
                }
                cfg_test = false;
            }
            _ => {
                i += 1;
            }
        }
    }
    funcs
}

/// Parse `impl ... {`, returning the implemented type name and the index
/// of the body `{`. For `impl Trait for Type`, returns `Type`.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('-') if next_is(tokens, j + 1, '>') => j += 1,
            Tok::Punct('{') if angle <= 0 => {
                return last_ident.map(|n| (n, j));
            }
            Tok::Punct(';') if angle <= 0 => return None,
            Tok::Ident(w) if angle == 0 => match w.as_str() {
                "for" => last_ident = None,
                "where" => {
                    // Type name is fixed; scan on to the `{`.
                    let mut k = j + 1;
                    let mut a = 0i32;
                    while k < tokens.len() {
                        match &tokens[k].tok {
                            Tok::Punct('<') => a += 1,
                            Tok::Punct('>') => a -= 1,
                            Tok::Punct('-') if next_is(tokens, k + 1, '>') => k += 1,
                            Tok::Punct('{') if a <= 0 => {
                                return last_ident.map(|n| (n, k));
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return None;
                }
                _ => last_ident = Some(w.clone()),
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// Depth-before-token for every token (number of unmatched `{`).
fn brace_depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d = 0u32;
    for t in tokens {
        if t.is_punct('}') {
            d = d.saturating_sub(1);
        }
        out.push(if t.is_punct('}') { d + 1 } else { d });
        if t.is_punct('{') {
            d += 1;
        }
    }
    // Convention: depths[i] for `{` is the depth *before* it opens, for
    // `}` the depth *inside* the block it closes.
    out
}

#[allow(clippy::too_many_arguments)]
fn extract_body(
    tokens: &[Token],
    depths: &[u32],
    open: usize,
    close: usize,
    name: String,
    impl_of: Option<String>,
    file: &str,
    line: u32,
    reg: &LockRegistry,
    cfg: &Config,
) -> FuncFacts {
    let mut f = FuncFacts {
        name,
        impl_of,
        file: file.to_string(),
        line,
        acquires: Vec::new(),
        calls: Vec::new(),
        panics: Vec::new(),
        blocking: Vec::new(),
    };
    let mut exempt_panics: HashSet<usize> = HashSet::new();
    let ignore: HashSet<&str> = cfg.ignore_methods.iter().map(String::as_str).collect();
    let blocking: HashSet<&str> = cfg.blocking.iter().map(String::as_str).collect();

    let mut j = open + 1;
    while j < close {
        match &tokens[j].tok {
            // Method call or acquisition: `. name (`
            Tok::Punct('.')
                if matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Ident(_)))
                    && next_is(tokens, j + 2, '(') =>
            {
                let m = tokens[j + 1].ident().unwrap_or("").to_string();
                let mline = tokens[j + 1].line;
                let zero_arg = next_is(tokens, j + 3, ')');
                let recv = receiver_field(tokens, j);
                let is_acquire =
                    (ACQUIRE_METHODS.contains(&m.as_str()) && zero_arg) || m == "get_or_init";
                if is_acquire {
                    if let Some((is_self, field)) = &recv {
                        if let Some(lock) = reg.resolve(f.impl_of.as_deref(), *is_self, field) {
                            if lock.kind != LockKind::Condvar {
                                let end = if m == "get_or_init" {
                                    matching_paren(tokens, j + 2).map_or(close, |p| p + 1)
                                } else {
                                    guard_extent(tokens, depths, j, close)
                                };
                                f.acquires.push(Acquire {
                                    lock: lock.id.clone(),
                                    method: m.clone(),
                                    line: mline,
                                    start: j,
                                    end,
                                });
                                // Poison propagation is sanctioned: a
                                // `.expect()`/`.unwrap()` chained directly
                                // on the acquisition is exempt.
                                mark_chained_panic_exempt(tokens, j + 2, &mut exempt_panics);
                            }
                        }
                    }
                }
                // Condvar waits: `self.cv.wait(g)` — blocking, and the
                // chained poison-expect is exempt like a lock's.
                if CONDVAR_WAITS.contains(&m.as_str()) {
                    if let Some((is_self, field)) = &recv {
                        if let Some(lock) = reg.resolve(f.impl_of.as_deref(), *is_self, field) {
                            if lock.kind == LockKind::Condvar {
                                mark_chained_panic_exempt(tokens, j + 2, &mut exempt_panics);
                            }
                        }
                    }
                }
                if PANIC_METHODS.contains(&m.as_str()) && !exempt_panics.contains(&j) {
                    f.panics.push(PanicSite {
                        what: format!(".{m}()"),
                        line: mline,
                    });
                }
                if blocking.contains(m.as_str()) {
                    f.blocking.push(BlockSite {
                        what: format!(".{m}()"),
                        line: mline,
                    });
                }
                if !is_acquire
                    && !ignore.contains(m.as_str())
                    && !PANIC_METHODS.contains(&m.as_str())
                {
                    f.calls.push(Call {
                        callee: Callee::Method(m),
                        line: mline,
                        idx: j,
                    });
                }
                j += 2;
            }
            // Free / qualified call or macro: `name (` / `name !`
            Tok::Ident(w) if !KEYWORDS.contains(&w.as_str()) => {
                let wline = tokens[j].line;
                if next_is(tokens, j + 1, '!') && PANIC_MACROS.contains(&w.as_str()) {
                    f.panics.push(PanicSite {
                        what: format!("{w}!"),
                        line: wline,
                    });
                } else if next_is(tokens, j + 1, '(') && !prev_is(tokens, j, '.') {
                    let qualified =
                        prev_is(tokens, j, ':') && j >= 2 && tokens[j - 2].is_punct(':');
                    let callee = if qualified {
                        let ty = (j >= 3)
                            .then(|| tokens[j - 3].ident().map(str::to_string))
                            .flatten();
                        match ty {
                            Some(ty) => Callee::Qualified(ty, w.clone()),
                            None => Callee::Free(w.clone()),
                        }
                    } else {
                        Callee::Free(w.clone())
                    };
                    if blocking.contains(w.as_str()) {
                        f.blocking.push(BlockSite {
                            what: format!("{w}()"),
                            line: wline,
                        });
                    }
                    if !ignore.contains(w.as_str()) {
                        f.calls.push(Call {
                            callee,
                            line: wline,
                            idx: j,
                        });
                    }
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    f
}

fn prev_is(tokens: &[Token], i: usize, c: char) -> bool {
    i > 0 && tokens[i - 1].is_punct(c)
}

/// Resolve the receiver of `. method (` at dot index `j`: returns
/// `(receiver_is_self, field_name)` for `<expr>.field.method()` shapes.
fn receiver_field(tokens: &[Token], j: usize) -> Option<(bool, String)> {
    // tokens[j-1] must be the field ident, tokens[j-2] a `.`.
    let field = tokens.get(j.checked_sub(1)?)?.ident()?;
    if !prev_is(tokens, j - 1, '.') {
        return None;
    }
    let is_self = j >= 3 && tokens[j - 3].ident() == Some("self");
    Some((is_self, field.to_string()))
}

/// If the call whose argument list opens at `open_paren` is directly
/// chained into `.expect(` / `.unwrap(`, mark that panic site exempt.
fn mark_chained_panic_exempt(tokens: &[Token], open_paren: usize, exempt: &mut HashSet<usize>) {
    if let Some(cp) = matching_paren(tokens, open_paren) {
        if next_is(tokens, cp + 1, '.') {
            if let Some(m) = tokens.get(cp + 2).and_then(Token::ident) {
                if PANIC_METHODS.contains(&m) && next_is(tokens, cp + 3, '(') {
                    exempt.insert(cp + 1);
                }
            }
        }
    }
}

/// Compute the guard-live extent for an acquisition at dot index `j`.
fn guard_extent(tokens: &[Token], depths: &[u32], j: usize, body_close: usize) -> usize {
    let d = depths[j];
    // Find the statement start: walk back to the nearest `;` / `{` / `}`.
    let mut s = j;
    while s > 0 {
        match &tokens[s - 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => s -= 1,
        }
    }
    let is_let = tokens.get(s).and_then(Token::ident) == Some("let");
    // A `let` statement only binds the *guard* when the acquisition
    // chain (plus an optional `.expect(...)`/`.unwrap()`) is the whole
    // initializer: `let g = self.m.lock().expect("...");`. Statements
    // like `let v = *self.m.read().expect("...")` or
    // `let n = self.m.read().expect("...").len();` bind a value copied
    // out of a temporary guard that dies at the statement end.
    let binds_guard = is_let && {
        // Receiver chain start: walk `a.b.c` back from the field ident.
        let mut r = j - 1;
        while r >= 2 && tokens[r - 1].is_punct('.') && tokens[r - 2].ident().is_some() {
            r -= 2;
        }
        let direct_init = r >= 1 && tokens[r - 1].is_punct('=');
        // Acquisition chain end: past `(args)` and chained expect/unwrap.
        let mut e = matching_paren(tokens, j + 2).map(|p| p + 1);
        while let Some(k) = e {
            match (
                tokens.get(k).map(|t| t.is_punct('.')),
                tokens.get(k + 1).and_then(Token::ident),
                tokens.get(k + 2).map(|t| t.is_punct('(')),
            ) {
                (Some(true), Some(m), Some(true)) if PANIC_METHODS.contains(&m) => {
                    e = matching_paren(tokens, k + 2).map(|p| p + 1);
                }
                _ => break,
            }
        }
        direct_init && e.map(|k| next_is(tokens, k, ';')).unwrap_or(false)
    };
    if binds_guard {
        // Bound name (for `drop(name)` detection): `let [mut] name ...`.
        let mut ni = s + 1;
        if tokens.get(ni).and_then(Token::ident) == Some("mut") {
            ni += 1;
        }
        let bound = tokens
            .get(ni)
            .and_then(Token::ident)
            .filter(|_| next_is(tokens, ni + 1, ':') || next_is(tokens, ni + 1, '='))
            .map(str::to_string);
        let mut k = j + 1;
        while k < body_close {
            if tokens[k].is_punct('}') && depths[k] <= d {
                return k;
            }
            if let Some(b) = &bound {
                if tokens[k].ident() == Some("drop")
                    && next_is(tokens, k + 1, '(')
                    && tokens.get(k + 2).and_then(Token::ident) == Some(b.as_str())
                    && next_is(tokens, k + 3, ')')
                {
                    return k;
                }
            }
            k += 1;
        }
        body_close
    } else {
        // Temporary: live to the end of the statement, extended through
        // trailing brace groups at this depth (match bodies, if-let
        // bodies and their `else` arms — Rust 2021 temporary scopes).
        let mut k = j + 1;
        let mut entered_group = false;
        while k < body_close {
            match &tokens[k].tok {
                Tok::Punct(';') if depths[k] == d => return k,
                Tok::Punct('}') if depths[k] <= d => return k,
                Tok::Punct('{') if depths[k] == d => entered_group = true,
                Tok::Punct('}') if depths[k] == d + 1 && entered_group => {
                    // End of the trailing group — unless an `else` chain
                    // continues the same statement.
                    if tokens.get(k + 1).and_then(Token::ident) == Some("else") {
                        k += 1;
                        continue;
                    }
                    return k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        body_close
    }
}

/// Lex + extract a batch of sources (phase A then phase B).
pub fn extract_all(sources: &[(String, String)], cfg: &Config) -> (LockRegistry, Vec<FileFacts>) {
    let mut reg = LockRegistry::default();
    let lexed: Vec<_> = sources.iter().map(|(_, src)| lex(src)).collect();
    for ((path, _), lx) in sources.iter().zip(&lexed) {
        collect_locks(&lx.tokens, path, &mut reg);
    }
    let mut files = Vec::new();
    for ((path, _), lx) in sources.iter().zip(&lexed) {
        let funcs = extract_functions(&lx.tokens, path, &reg, cfg);
        files.push(FileFacts {
            path: path.clone(),
            locks: reg
                .locks
                .iter()
                .filter(|l| &l.file == path)
                .cloned()
                .collect(),
            funcs,
            suppressions: lx.suppressions.clone(),
        });
    }
    (reg, files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts_of(src: &str) -> (LockRegistry, Vec<FileFacts>) {
        extract_all(
            &[("test.rs".to_string(), src.to_string())],
            &Config::default(),
        )
    }

    #[test]
    fn finds_lock_fields() {
        let (reg, _) = facts_of(
            "struct S { a: std::sync::Mutex<u32>, b: RwLock<Vec<u8>>, \
             c: Arc<OnceLock<String>>, d: Condvar, e: usize }",
        );
        let ids: Vec<_> = reg.locks.iter().map(|l| l.id.as_str()).collect();
        assert_eq!(ids, vec!["S.a", "S.b", "S.c", "S.d"]);
        assert_eq!(reg.locks[0].kind, LockKind::Mutex);
        assert_eq!(reg.locks[3].kind, LockKind::Condvar);
    }

    #[test]
    fn let_guard_extends_to_block_close_and_drop() {
        let src = r#"
struct S { m: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.m.lock().expect("poisoned");
        helper();
        drop(g);
        after();
    }
}
fn helper() {}
fn after() {}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        assert_eq!(f.acquires.len(), 1);
        let a = &f.acquires[0];
        let helper = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "helper")
            .unwrap();
        let after = f.calls.iter().find(|c| c.callee.name() == "after").unwrap();
        assert!(
            helper.idx > a.start && helper.idx < a.end,
            "helper under guard"
        );
        assert!(after.idx > a.end, "after must be past drop(g)");
        // Chained poison-expect is exempt.
        assert!(
            f.panics.is_empty(),
            "poison expect must be exempt: {:?}",
            f.panics
        );
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = r#"
struct S { m: RwLock<u32> }
impl S {
    fn f(&self) -> u32 {
        let v = *self.m.read().expect("poisoned");
        helper();
        v
    }
}
fn helper() {}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        let a = &f.acquires[0];
        let helper = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "helper")
            .unwrap();
        // `let v = *...read()...;` — the guard is a temporary inside the
        // let initializer; it dies at the `;`, before helper().
        assert!(
            helper.idx > a.end,
            "helper must not be under the temporary guard"
        );
    }

    #[test]
    fn if_let_temporary_extends_through_body() {
        let src = r#"
struct S { m: RwLock<Option<u32>> }
impl S {
    fn f(&self) {
        if let Some(v) = self.m.read().expect("p").as_ref() {
            inside();
        }
        outside();
    }
}
fn inside() {}
fn outside() {}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        let a = &f.acquires[0];
        let inside = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "inside")
            .unwrap();
        let outside = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "outside")
            .unwrap();
        assert!(
            inside.idx < a.end,
            "if-let body is under the scrutinee temporary"
        );
        assert!(outside.idx >= a.end, "past the if-let the guard is dead");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = r#"
fn real() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn fake() { y.unwrap(); }
}
"#;
        let (_, files) = facts_of(src);
        assert_eq!(files[0].funcs.len(), 1);
        assert_eq!(files[0].funcs[0].name, "real");
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let src = r#"
struct S { sock: TcpStream, m: RwLock<u32> }
impl S {
    fn f(&mut self, buf: &[u8]) {
        self.sock.write(buf).ok();
        let g = self.m.write().expect("p");
    }
}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock, "S.m");
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_type() {
        let src = r#"
struct Foo { m: Mutex<u32> }
impl Clone for Foo {
    fn clone(&self) -> Foo { let g = self.m.lock().unwrap(); Foo::new() }
}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        assert_eq!(f.impl_of.as_deref(), Some("Foo"));
        assert_eq!(f.acquires.len(), 1);
    }

    #[test]
    fn panic_macros_and_methods_are_recorded() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    if x.is_none() { panic!("boom"); }
    x.unwrap()
}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        let whats: Vec<_> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(whats.contains(&"panic!"));
        assert!(whats.contains(&".unwrap()"));
    }

    #[test]
    fn blocking_calls_are_recorded() {
        let src = "fn f() { std::thread::sleep(d); rx.recv(); }";
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        let whats: Vec<_> = f.blocking.iter().map(|b| b.what.as_str()).collect();
        assert!(whats.contains(&"sleep()"));
        assert!(whats.contains(&".recv()"));
    }

    #[test]
    fn get_or_init_holds_for_closure_extent() {
        let src = r#"
struct S { cell: OnceLock<u32> }
impl S {
    fn f(&self) -> u32 {
        let v = *self.cell.get_or_init(|| build());
        after();
        v
    }
}
fn build() -> u32 { 1 }
fn after() {}
"#;
        let (_, files) = facts_of(src);
        let f = &files[0].funcs[0];
        assert_eq!(f.acquires.len(), 1);
        let a = &f.acquires[0];
        let build = f.calls.iter().find(|c| c.callee.name() == "build").unwrap();
        let after = f.calls.iter().find(|c| c.callee.name() == "after").unwrap();
        assert!(build.idx < a.end, "closure body is inside the init extent");
        assert!(after.idx > a.end);
    }
}
