//! Findings, the suppression inventory, and the two output formats
//! (human-readable text and JSON for CI).

use crate::facts::LockField;
use std::fmt::Write as _;

/// One finding from a rule pass.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an `allow` comment covered this finding.
    pub suppressed: Option<String>,
}

/// One observed `held -> acquired` lock pair.
#[derive(Debug, Clone)]
pub struct ObservedEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub holder: String,
    pub via: Option<String>,
}

/// Inventory entry for a valid suppression comment.
#[derive(Debug, Clone)]
pub struct SuppressionEntry {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
    pub used: bool,
}

/// Full analysis output.
#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<SuppressionEntry>,
    pub locks: Vec<LockField>,
    pub edges: Vec<ObservedEdge>,
    pub funcs_analyzed: usize,
    pub hot_funcs: Vec<String>,
}

impl Report {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let unsuppressed = self.unsuppressed().count();
        let _ = writeln!(
            out,
            "dsg-lint: {} function(s), {} lock field(s), {} observed lock edge(s), {} hot-path function(s)",
            self.funcs_analyzed,
            self.locks.len(),
            self.edges.len(),
            self.hot_funcs.len()
        );
        for f in &self.findings {
            match &f.suppressed {
                None => {
                    let _ = writeln!(
                        out,
                        "error[{}]: {}:{}: {}",
                        f.rule, f.file, f.line, f.message
                    );
                }
                Some(reason) => {
                    let _ = writeln!(
                        out,
                        "allowed[{}]: {}:{}: {} (reason: {})",
                        f.rule, f.file, f.line, f.message, reason
                    );
                }
            }
        }
        if !self.suppressions.is_empty() {
            let _ = writeln!(out, "suppression inventory:");
            for s in &self.suppressions {
                let _ = writeln!(
                    out,
                    "  {}:{}: allow({}) reason=\"{}\"{}",
                    s.file,
                    s.line,
                    s.rule,
                    s.reason,
                    if s.used { "" } else { " [unused]" }
                );
            }
        }
        let _ = writeln!(
            out,
            "dsg-lint: {} finding(s), {} unsuppressed",
            self.findings.len(),
            unsuppressed
        );
        out
    }

    /// JSON report for CI (hand-rolled; the crate is std-only).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"functions_analyzed\": {},", self.funcs_analyzed);
        let _ = writeln!(
            out,
            "  \"unsuppressed_findings\": {},",
            self.unsuppressed().count()
        );
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                match &f.suppressed {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
                s.used
            );
            out.push_str(if i + 1 < self.suppressions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"locks\": [\n");
        for (i, l) in self.locks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {}, \"kind\": {}, \"file\": {}, \"line\": {}}}",
                json_str(&l.id),
                json_str(l.kind.name()),
                json_str(&l.file),
                l.line
            );
            out.push_str(if i + 1 < self.locks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"lock_edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"held\": {}, \"acquired\": {}, \"holder\": {}, \"file\": {}, \"line\": {}, \"via\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.holder),
                json_str(&e.file),
                e.line,
                match &e.via {
                    Some(v) => json_str(v),
                    None => "null".to_string(),
                }
            );
            out.push_str(if i + 1 < self.edges.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"hot_functions\": [\n");
        for (i, h) in self.hot_funcs.iter().enumerate() {
            let _ = write!(out, "    {}", json_str(h));
            out.push_str(if i + 1 < self.hot_funcs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let r = Report {
            findings: Vec::new(),
            suppressions: Vec::new(),
            locks: Vec::new(),
            edges: Vec::new(),
            funcs_analyzed: 0,
            hot_funcs: Vec::new(),
        };
        assert!(r.is_clean());
        let j = r.render_json();
        assert!(j.contains("\"unsuppressed_findings\": 0"));
        assert!(j.trim_end().ends_with('}'));
    }
}
