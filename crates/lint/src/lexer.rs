//! A minimal Rust tokenizer, sufficient for fact extraction.
//!
//! The analyzer has the same vendoring constraints as the rest of the
//! workspace (offline build, std only), so there is no `syn`: this lexer
//! produces a flat token stream — identifiers, single-character
//! punctuation, opaque literals, lifetimes — with line numbers, and
//! captures `// dsg-lint: allow(...)` suppression comments on the way.
//! Everything the rule passes need (brace depth, statement boundaries,
//! method-call shapes) is recovered by walking this stream; nothing here
//! attempts full expression parsing.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the extractor distinguishes keywords).
    Ident(String),
    /// A single punctuation character (`{`, `.`, `!`, ...).
    Punct(char),
    /// String / char / numeric literal; contents are irrelevant to the
    /// rules, only that it is not punctuation.
    Lit,
    /// A lifetime such as `'a` (kept distinct so `'a` is never confused
    /// with a char literal or an identifier).
    Lifetime,
}

/// Token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// A `// dsg-lint: allow(<rule>) reason="..."` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub line: u32,
    pub rule: String,
    /// `None` when the comment carried no (or an empty) reason — that is
    /// itself a finding.
    pub reason: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
}

/// Marker that introduces a suppression comment.
pub const SUPPRESS_MARKER: &str = "dsg-lint:";

/// Lex Rust source into a flat token stream.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if matches!(b.get(i + 1), Some('/')) => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                if let Some(s) = parse_suppression(text.trim(), line) {
                    out.suppressions.push(s);
                }
                i = j;
            }
            '/' if matches!(b.get(i + 1), Some('*')) => {
                // Block comment, nestable.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && matches!(b.get(j + 1), Some('*')) {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && matches!(b.get(j + 1), Some('/')) {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let l = line;
                i = skip_string(&b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: l,
                });
            }
            'r' | 'b' if raw_string_hashes(&b, i).is_some() => {
                let l = line;
                i = skip_raw_string(&b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: l,
                });
            }
            'b' if matches!(b.get(i + 1), Some('\'')) => {
                let l = line;
                i = skip_char_lit(&b, i + 1);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: l,
                });
            }
            '\'' => {
                // Lifetime vs char literal: `'a'` / `'\n'` are chars,
                // `'a` / `'static` are lifetimes.
                let is_char = match b.get(i + 1) {
                    Some('\\') => true,
                    Some(&c2) if c2 != '\'' => matches!(b.get(i + 2), Some('\'')),
                    _ => false,
                };
                if is_char {
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    i = skip_char_lit(&b, i);
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // Float part: `1.5`, `1.5e-3` — but not `1.method()`.
                if j < b.len()
                    && b[j] == '.'
                    && matches!(b.get(j + 1), Some(d) if d.is_ascii_digit())
                {
                    j += 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i = j;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let word: String = b[i..j].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
                i = j;
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"..."` / `r#"..."#` / `br#"..."#` detection: returns the number of
/// `#`s when position `i` starts a raw string.
fn raw_string_hashes(b: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if b.get(i) == Some(&'b') && b.get(j) == Some(&'r') {
        j += 1;
    } else if b.get(i) != Some(&'r') {
        return None;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn skip_raw_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let hashes = raw_string_hashes(b, i).unwrap_or(0);
    // Advance past the opening quote.
    let mut j = i;
    while j < b.len() && b[j] != '"' {
        j += 1;
    }
    j += 1;
    'outer: while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
        } else if b[j] == '"' {
            for k in 0..hashes {
                if b.get(j + 1 + k) != Some(&'#') {
                    j += 1;
                    continue 'outer;
                }
            }
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

fn skip_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

fn skip_char_lit(b: &[char], i: usize) -> usize {
    // `i` points at the opening `'`.
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Parse `dsg-lint: allow(rule) reason="why"` from a line-comment body.
fn parse_suppression(text: &str, line: u32) -> Option<Suppression> {
    let rest = text.strip_prefix(SUPPRESS_MARKER)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("reason")
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('='))
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.rfind('"').map(|e| t[..e].trim().to_string()))
        .filter(|r| !r.is_empty());
    Some(Suppression { line, rule, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = r##"let s = "a { b } // not a comment"; let c = 'x'; let r = r#"raw " str"#;"##;
        let toks = lex(src);
        let braces = toks
            .tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .count();
        assert_eq!(
            braces, 0,
            "brace-looking chars inside literals must not tokenize"
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) {}");
        assert!(toks.tokens.iter().any(|t| t.tok == Tok::Lifetime));
        assert!(idents("fn f<'a>(x: &'a str) {}").contains(&"str".to_string()));
    }

    #[test]
    fn suppression_comment_parses() {
        let src = "// dsg-lint: allow(lock-order) reason=\"sanctioned by design\"\nfn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.rule, "lock-order");
        assert_eq!(s.reason.as_deref(), Some("sanctioned by design"));
        assert_eq!(s.line, 1);
    }

    #[test]
    fn suppression_without_reason_is_kept_reasonless() {
        let lexed = lex("// dsg-lint: allow(hot-path-panic)\nfn f() {}");
        assert_eq!(lexed.suppressions.len(), 1);
        assert!(lexed.suppressions[0].reason.is_none());
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "/* a\nb */\nfn f() {\n    \"x\n y\";\n    g();\n}";
        let lexed = lex(src);
        let g = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("g"))
            .expect("g token");
        assert_eq!(g.line, 6);
    }

    #[test]
    fn nested_generics_lex_cleanly() {
        let ids = idents("struct S { m: std::sync::Mutex<Vec<Option<u8>>> }");
        assert!(ids.contains(&"Mutex".to_string()));
    }
}
