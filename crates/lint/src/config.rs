//! `lint.toml` — the checked-in declaration of the workspace's
//! concurrency invariants, parsed with a hand-rolled TOML subset
//! (sections, string values, string arrays, `#` comments) so the
//! analyzer stays std-only.

use std::fmt;

/// Parsed analyzer configuration. Defaults are usable for fixture tests;
/// the workspace run loads `lint.toml` from the repo root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Sanctioned `A < B` pairs: a guard of `A` may be held while
    /// acquiring `B`. Anything not derivable from these is a violation.
    pub order_edges: Vec<(String, String)>,
    /// Locks that must never be held across *any* other acquisition.
    pub leaves: Vec<String>,
    /// Every lock field the workspace is expected to contain. A lock
    /// discovered in source but absent here is an `undeclared-lock`
    /// finding, so new locks must be consciously registered.
    pub declared_locks: Vec<String>,
    /// File basenames whose event-loop code is subject to hot-path rules.
    pub hot_files: Vec<String>,
    /// Root functions of the event loop; hot-path rules apply to the
    /// call-graph closure of these roots intersected with `hot_files`.
    pub hot_roots: Vec<String>,
    /// Method / function names considered blocking on a hot path.
    pub blocking: Vec<String>,
    /// Method names never resolved interprocedurally (std containers and
    /// combinators); prevents false call-graph edges like `map.len()`
    /// resolving to a workspace `len`.
    pub ignore_methods: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            order_edges: Vec::new(),
            leaves: Vec::new(),
            declared_locks: Vec::new(),
            hot_files: Vec::new(),
            hot_roots: Vec::new(),
            blocking: [
                "sleep",
                "wait",
                "wait_timeout",
                "wait_while",
                "recv",
                "recv_timeout",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            ignore_methods: DEFAULT_IGNORE_METHODS
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Common std method names excluded from interprocedural resolution.
const DEFAULT_IGNORE_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "extend",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "as_deref",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "take",
    "replace",
    "entry",
    "or_insert_with",
    "or_insert",
    "or_default",
    "keys",
    "values",
    "values_mut",
    "split",
    "splitn",
    "trim",
    "starts_with",
    "ends_with",
    "find",
    "position",
    "filter",
    "filter_map",
    "collect",
    "join",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "next",
    "peek",
    "count",
    "sum",
    "min",
    "max",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "binary_search",
    "retain",
    "reserve",
    "truncate",
    "resize",
    "copy_from_slice",
    "extend_from_slice",
    "swap",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "parse",
    "chars",
    "bytes",
    "lines",
    "write_all",
    "write_fmt",
    "flush_buf",
    "get_or_init",
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "first",
    "last",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "then",
    "then_some",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "abs",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "powi",
    "powf",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "wrapping_add",
    "elapsed",
    "duration_since",
    "as_secs_f64",
    "as_millis",
    "as_micros",
    "from_secs",
    "from_millis",
    "from_micros",
    "to_le_bytes",
    "from_le_bytes",
    "try_into",
    "into",
    "from",
    "default",
    "new",
    "with_capacity",
    "fill",
    "windows",
    "chunks",
    "all",
    "any",
    "fold",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "step_by",
    "skip",
    "rem_euclid",
];

/// One parse failure with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

impl Config {
    /// Parse a `lint.toml` document, overlaying the defaults.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = match line.split_once('=') {
                Some((k, v)) => (k.trim().to_string(), v.trim().to_string()),
                None => {
                    return Err(ConfigError {
                        line: n + 1,
                        msg: format!("expected `key = value`, got `{line}`"),
                    })
                }
            };
            // Multi-line arrays: keep consuming until the bracket closes.
            if value.starts_with('[') {
                while !value.ends_with(']') {
                    match lines.next() {
                        Some((_, cont)) => {
                            value.push(' ');
                            value.push_str(strip_comment(cont).trim());
                        }
                        None => {
                            return Err(ConfigError {
                                line: n + 1,
                                msg: format!("unterminated array for key `{key}`"),
                            })
                        }
                    }
                }
            }
            let values = parse_value(&value).map_err(|msg| ConfigError { line: n + 1, msg })?;
            cfg.apply(&section, &key, values)
                .map_err(|msg| ConfigError { line: n + 1, msg })?;
        }
        Ok(cfg)
    }

    fn apply(&mut self, section: &str, key: &str, values: Vec<String>) -> Result<(), String> {
        match (section, key) {
            ("lock_order", "edges") => {
                for v in values {
                    let (a, b) = v
                        .split_once('<')
                        .ok_or_else(|| format!("edge `{v}` must look like `A.x < B.y`"))?;
                    self.order_edges
                        .push((a.trim().to_string(), b.trim().to_string()));
                }
            }
            ("lock_order", "leaves") => self.leaves.extend(values),
            ("lock_order", "locks") => self.declared_locks.extend(values),
            ("hot_path", "files") => self.hot_files.extend(values),
            ("hot_path", "roots") => self.hot_roots.extend(values),
            ("hot_path", "blocking") => self.blocking = values,
            ("calls", "ignore_methods") => self.ignore_methods.extend(values),
            _ => return Err(format!("unknown key `[{section}] {key}`")),
        }
        Ok(())
    }

    /// Every lock named anywhere in the config (edges, leaves, explicit
    /// `locks` list) counts as declared.
    pub fn all_declared_locks(&self) -> Vec<String> {
        let mut all: Vec<String> = self.declared_locks.clone();
        for (a, b) in &self.order_edges {
            all.push(a.clone());
            all.push(b.clone());
        }
        all.extend(self.leaves.iter().cloned());
        all.sort();
        all.dedup();
        all
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"x"` or `["a", "b"]` into a list of strings.
fn parse_value(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    if let Some(inner) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(unquote(part)?);
        }
        Ok(out)
    } else {
        Ok(vec![unquote(v)?])
    }
}

/// Split an array body on commas that are outside quotes.
fn split_array(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let src = r#"
# workspace invariants
[lock_order]
edges = [
    "A.x < B.y",  # sanctioned
    "B.y < C.z",
]
leaves = ["D.w"]
locks = ["E.v"]

[hot_path]
files = ["serve.rs"]
roots = ["worker_event_loop"]

[calls]
ignore_methods = ["special_helper"]
"#;
        let cfg = Config::parse(src).expect("parse");
        assert_eq!(
            cfg.order_edges,
            vec![
                ("A.x".to_string(), "B.y".to_string()),
                ("B.y".to_string(), "C.z".to_string())
            ]
        );
        assert_eq!(cfg.leaves, vec!["D.w"]);
        assert_eq!(cfg.hot_files, vec!["serve.rs"]);
        assert_eq!(cfg.hot_roots, vec!["worker_event_loop"]);
        assert!(cfg.ignore_methods.iter().any(|m| m == "special_helper"));
        assert!(
            cfg.ignore_methods.iter().any(|m| m == "len"),
            "defaults preserved"
        );
        let declared = cfg.all_declared_locks();
        for l in ["A.x", "B.y", "C.z", "D.w", "E.v"] {
            assert!(declared.iter().any(|d| d == l), "{l} declared");
        }
    }

    #[test]
    fn rejects_malformed_edge() {
        let err = Config::parse("[lock_order]\nedges = [\"A.x B.y\"]").unwrap_err();
        assert!(err.msg.contains("A.x B.y"));
    }

    #[test]
    fn rejects_unknown_key() {
        assert!(Config::parse("[lock_order]\nbogus = \"x\"").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = Config::parse("[lock_order]\nlocks = [\"A.x#y\"]").expect("parse");
        assert_eq!(cfg.declared_locks, vec!["A.x#y"]);
    }
}
