//! The rule passes: call-graph construction, transitive may-acquire
//! sets, and the three analyses — lock-order, guard-held-across-call,
//! hot-path hygiene — plus suppression application.

use crate::config::Config;
use crate::facts::{Callee, FileFacts, FuncFacts, LockRegistry};
use crate::report::{Finding, ObservedEdge, Report, SuppressionEntry};
use std::collections::{HashMap, HashSet, VecDeque};

/// Rule identifiers, used in findings and `allow(...)` comments.
pub mod rule {
    pub const LOCK_ORDER: &str = "lock-order";
    pub const LOCK_CYCLE: &str = "lock-cycle";
    pub const UNDECLARED_LOCK: &str = "undeclared-lock";
    pub const GUARD_ACROSS_CALL: &str = "guard-across-call";
    pub const HOT_PATH_PANIC: &str = "hot-path-panic";
    pub const HOT_PATH_BLOCKING: &str = "hot-path-blocking";
    pub const INVALID_SUPPRESSION: &str = "invalid-suppression";
    pub const CONFIG: &str = "config";

    pub const ALL: &[&str] = &[
        LOCK_ORDER,
        LOCK_CYCLE,
        UNDECLARED_LOCK,
        GUARD_ACROSS_CALL,
        HOT_PATH_PANIC,
        HOT_PATH_BLOCKING,
        INVALID_SUPPRESSION,
        CONFIG,
    ];
}

/// A function flattened out of its file, with a global index.
struct Flat<'a> {
    file: &'a str,
    func: &'a FuncFacts,
}

/// Run every rule pass over extracted facts and produce the report.
pub fn run(reg: &LockRegistry, files: &[FileFacts], cfg: &Config) -> Report {
    let funcs: Vec<Flat<'_>> = files
        .iter()
        .flat_map(|f| {
            f.funcs.iter().map(move |fu| Flat {
                file: &f.path,
                func: fu,
            })
        })
        .collect();

    let callees = resolve_calls(&funcs);
    let may_acquire = transitive_acquires(&funcs, &callees);
    let mut findings = Vec::new();

    // --- config sanity: the declared order must itself be acyclic ------
    let declared = DeclaredOrder::new(cfg);
    if let Some(cycle) = declared.find_cycle() {
        findings.push(Finding {
            rule: rule::CONFIG.to_string(),
            file: "lint.toml".to_string(),
            line: 0,
            message: format!(
                "declared lock order contains a cycle: {}",
                cycle.join(" < ")
            ),
            suppressed: None,
        });
    }

    // --- undeclared locks ---------------------------------------------
    let declared_locks: HashSet<String> = cfg.all_declared_locks().into_iter().collect();
    for lock in &reg.locks {
        if !declared_locks.contains(&lock.id) {
            findings.push(Finding {
                rule: rule::UNDECLARED_LOCK.to_string(),
                file: lock.file.clone(),
                line: lock.line,
                message: format!(
                    "{} field `{}` is not declared in lint.toml [lock_order]; \
                     register it under `locks`, `leaves`, or an edge",
                    lock.kind.name(),
                    lock.id
                ),
                suppressed: None,
            });
        }
    }

    // --- observed lock-order edges ------------------------------------
    let mut edges: Vec<ObservedEdge> = Vec::new();
    for (gi, fl) in funcs.iter().enumerate() {
        for a in &fl.func.acquires {
            // Direct nesting inside this function.
            for b in &fl.func.acquires {
                if b.start > a.start && b.start < a.end {
                    edges.push(ObservedEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: fl.file.to_string(),
                        line: b.line,
                        holder: fl.func.display(),
                        via: None,
                    });
                }
            }
            // Nesting via calls made while the guard is live.
            for (ci, call) in fl.func.calls.iter().enumerate() {
                if call.idx <= a.start || call.idx >= a.end {
                    continue;
                }
                if let Some(&callee_gi) = callees[gi].get(&ci) {
                    for lock in sorted(&may_acquire[callee_gi]) {
                        edges.push(ObservedEdge {
                            from: a.lock.clone(),
                            to: lock.clone(),
                            file: fl.file.to_string(),
                            line: call.line,
                            holder: fl.func.display(),
                            via: Some(funcs[callee_gi].func.display()),
                        });
                    }
                }
            }
        }
    }
    dedup_edges(&mut edges);

    // --- rule: lock-order ---------------------------------------------
    for e in &edges {
        if let Some(problem) = declared.judge(&e.from, &e.to) {
            let via = e
                .via
                .as_deref()
                .map(|v| format!(" via call to `{v}`"))
                .unwrap_or_default();
            findings.push(Finding {
                rule: rule::LOCK_ORDER.to_string(),
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "`{}` acquires `{}` while holding `{}`{via}: {problem}",
                    e.holder, e.to, e.from
                ),
                suppressed: None,
            });
        }
    }

    // --- rule: lock-cycle (on observed edges) -------------------------
    for cycle in find_cycles(&edges) {
        let site = edges
            .iter()
            .find(|e| e.from == cycle[0])
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_default();
        findings.push(Finding {
            rule: rule::LOCK_CYCLE.to_string(),
            file: site.0,
            line: site.1,
            message: format!(
                "observed lock acquisitions form a cycle: {} -> {}",
                cycle.join(" -> "),
                cycle[0]
            ),
            suppressed: None,
        });
    }

    // --- rule: guard-across-call --------------------------------------
    // Holding a guard while calling a function whose transitive
    // acquisitions include a lock *defined in another module*. Matching
    // on the lock's home (not the callee's file) catches the PR-5 shape
    // where the cross-module work was laundered through a local helper.
    let lock_home: HashMap<&str, &str> = reg
        .locks
        .iter()
        .map(|l| (l.id.as_str(), l.file.as_str()))
        .collect();
    for (gi, fl) in funcs.iter().enumerate() {
        for a in &fl.func.acquires {
            for (ci, call) in fl.func.calls.iter().enumerate() {
                if call.idx <= a.start || call.idx >= a.end {
                    continue;
                }
                let Some(&callee_gi) = callees[gi].get(&ci) else {
                    continue;
                };
                let foreign: Vec<String> = sorted(&may_acquire[callee_gi])
                    .into_iter()
                    .filter(|l| lock_home.get(l.as_str()).copied() != Some(fl.file))
                    .collect();
                if foreign.is_empty() {
                    continue;
                }
                let callee = &funcs[callee_gi];
                findings.push(Finding {
                    rule: rule::GUARD_ACROSS_CALL.to_string(),
                    file: fl.file.to_string(),
                    line: call.line,
                    message: format!(
                        "`{}` holds `{}` across a call to `{}` which may acquire \
                         another module's lock(s): {}",
                        fl.func.display(),
                        a.lock,
                        callee.func.display(),
                        foreign.join(", ")
                    ),
                    suppressed: None,
                });
            }
        }
    }

    // --- rule: hot-path hygiene ---------------------------------------
    let hot = hot_functions(&funcs, &callees, cfg);
    let mut hot_names: Vec<String> = hot
        .iter()
        .map(|&gi| {
            format!(
                "{} ({})",
                funcs[gi].func.display(),
                basename(funcs[gi].file)
            )
        })
        .collect();
    hot_names.sort();
    for &gi in &hot {
        let fl = &funcs[gi];
        for p in &fl.func.panics {
            findings.push(Finding {
                rule: rule::HOT_PATH_PANIC.to_string(),
                file: fl.file.to_string(),
                line: p.line,
                message: format!(
                    "`{}` is on the event-loop hot path but contains `{}`",
                    fl.func.display(),
                    p.what
                ),
                suppressed: None,
            });
        }
        for b in &fl.func.blocking {
            findings.push(Finding {
                rule: rule::HOT_PATH_BLOCKING.to_string(),
                file: fl.file.to_string(),
                line: b.line,
                message: format!(
                    "`{}` is on the event-loop hot path but calls blocking `{}`",
                    fl.func.display(),
                    b.what
                ),
                suppressed: None,
            });
        }
    }

    // --- suppressions --------------------------------------------------
    let suppressions = apply_suppressions(files, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Report {
        findings,
        suppressions,
        locks: reg.locks.clone(),
        edges,
        funcs_analyzed: funcs.len(),
        hot_funcs: hot_names,
    }
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn sorted(set: &HashSet<String>) -> Vec<String> {
    let mut v: Vec<String> = set.iter().cloned().collect();
    v.sort();
    v
}

fn dedup_edges(edges: &mut Vec<ObservedEdge>) {
    let mut seen = HashSet::new();
    edges.retain(|e| {
        seen.insert((
            e.from.clone(),
            e.to.clone(),
            e.file.clone(),
            e.line,
            e.via.clone(),
        ))
    });
}

/// The declared partial order from lint.toml.
struct DeclaredOrder {
    adj: HashMap<String, Vec<String>>,
    leaves: HashSet<String>,
}

impl DeclaredOrder {
    fn new(cfg: &Config) -> Self {
        let mut adj: HashMap<String, Vec<String>> = HashMap::new();
        for (a, b) in &cfg.order_edges {
            adj.entry(a.clone()).or_default().push(b.clone());
        }
        DeclaredOrder {
            adj,
            leaves: cfg.leaves.iter().cloned().collect(),
        }
    }

    fn reachable(&self, from: &str, to: &str) -> bool {
        let mut q = VecDeque::from([from.to_string()]);
        let mut seen = HashSet::new();
        while let Some(n) = q.pop_front() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(next) = self.adj.get(&n) {
                for m in next {
                    if m == to {
                        return true;
                    }
                    q.push_back(m.clone());
                }
            }
        }
        false
    }

    /// `None` when the observed edge `from -> to` is sanctioned,
    /// otherwise a description of why it is not.
    fn judge(&self, from: &str, to: &str) -> Option<String> {
        if from == to {
            return Some(format!(
                "re-entrant acquisition of `{from}` would self-deadlock"
            ));
        }
        if self.leaves.contains(from) {
            return Some(format!(
                "`{from}` is declared a leaf lock and must never be held across another acquisition"
            ));
        }
        if self.leaves.contains(to) || self.reachable(from, to) {
            return None;
        }
        Some(format!(
            "no declared `{from} < {to}` path in lint.toml [lock_order]"
        ))
    }

    /// A cycle in the *declared* order is a config bug.
    fn find_cycle(&self) -> Option<Vec<String>> {
        let nodes: Vec<&String> = self.adj.keys().collect();
        for start in nodes {
            if self.reachable(start, start) {
                return Some(vec![start.clone()]);
            }
        }
        None
    }
}

/// Cycles over the observed edge graph (each reported once, rotated to
/// its lexicographically smallest node).
fn find_cycles(edges: &[ObservedEdge]) -> Vec<Vec<String>> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_cycles: HashSet<Vec<String>> = HashSet::new();
    let mut nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.sort();
    for &start in &nodes {
        // DFS from each node looking for a path back to it.
        let mut stack = vec![(start, vec![start.to_string()])];
        let mut visited = HashSet::new();
        while let Some((n, path)) = stack.pop() {
            if !visited.insert(n) && path.len() > 1 {
                continue;
            }
            for &m in adj.get(n).map(Vec::as_slice).unwrap_or_default() {
                if m == start {
                    let mut cyc = path.clone();
                    // Rotate so the smallest element leads.
                    let min = cyc.iter().enumerate().min_by_key(|(_, v)| (*v).clone());
                    if let Some((mi, _)) = min {
                        cyc.rotate_left(mi);
                    }
                    if seen_cycles.insert(cyc.clone()) {
                        cycles.push(cyc);
                    }
                } else if !path.contains(&m.to_string()) {
                    let mut p = path.clone();
                    p.push(m.to_string());
                    stack.push((m, p));
                }
            }
        }
    }
    cycles
}

/// Resolve every call site to a global function index where possible.
/// Returns, per function, a map call-index -> callee global index.
fn resolve_calls(funcs: &[Flat<'_>]) -> Vec<HashMap<usize, usize>> {
    let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut method_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_impl_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (gi, fl) in funcs.iter().enumerate() {
        match &fl.func.impl_of {
            Some(t) => {
                method_by_name.entry(&fl.func.name).or_default().push(gi);
                by_impl_name.entry((t, &fl.func.name)).or_default().push(gi);
            }
            None => free_by_name.entry(&fl.func.name).or_default().push(gi),
        }
    }
    let pick = |cands: Option<&Vec<usize>>, same_file: Option<&str>| -> Option<usize> {
        let cands = cands?;
        if let Some(file) = same_file {
            let local: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&gi| funcs[gi].file == file)
                .collect();
            if local.len() == 1 {
                return Some(local[0]);
            }
            if !local.is_empty() {
                return None;
            }
        }
        (cands.len() == 1).then(|| cands[0])
    };

    funcs
        .iter()
        .map(|fl| {
            let mut out = HashMap::new();
            for (ci, call) in fl.func.calls.iter().enumerate() {
                let resolved = match &call.callee {
                    Callee::Free(n) => pick(free_by_name.get(n.as_str()), Some(fl.file))
                        .or_else(|| pick(free_by_name.get(n.as_str()), None)),
                    Callee::Method(n) => {
                        let own = fl.func.impl_of.as_deref().and_then(|t| {
                            pick(by_impl_name.get(&(t, n.as_str())), Some(fl.file))
                                .or_else(|| pick(by_impl_name.get(&(t, n.as_str())), None))
                        });
                        own.or_else(|| pick(method_by_name.get(n.as_str()), Some(fl.file)))
                            .or_else(|| pick(method_by_name.get(n.as_str()), None))
                    }
                    Callee::Qualified(ty, n) => {
                        let ty = if ty == "Self" {
                            fl.func.impl_of.as_deref().unwrap_or("Self")
                        } else {
                            ty.as_str()
                        };
                        pick(by_impl_name.get(&(ty, n.as_str())), Some(fl.file))
                            .or_else(|| pick(by_impl_name.get(&(ty, n.as_str())), None))
                            .or_else(|| pick(free_by_name.get(n.as_str()), None))
                    }
                };
                if let Some(gi) = resolved {
                    out.insert(ci, gi);
                }
            }
            out
        })
        .collect()
}

/// Fixpoint: the set of locks each function may acquire, transitively.
fn transitive_acquires(
    funcs: &[Flat<'_>],
    callees: &[HashMap<usize, usize>],
) -> Vec<HashSet<String>> {
    let mut sets: Vec<HashSet<String>> = funcs
        .iter()
        .map(|fl| fl.func.acquires.iter().map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for gi in 0..funcs.len() {
            for &callee_gi in callees[gi].values() {
                if callee_gi == gi {
                    continue;
                }
                let add: Vec<String> = sets[callee_gi]
                    .iter()
                    .filter(|l| !sets[gi].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    sets[gi].extend(add);
                }
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// Call-graph closure of the configured hot roots, restricted (for
/// reporting) to functions defined in hot files.
fn hot_functions(
    funcs: &[Flat<'_>],
    callees: &[HashMap<usize, usize>],
    cfg: &Config,
) -> Vec<usize> {
    let roots: Vec<usize> = funcs
        .iter()
        .enumerate()
        .filter(|(_, fl)| {
            cfg.hot_roots
                .iter()
                .any(|r| *r == fl.func.name || *r == fl.func.display())
        })
        .map(|(gi, _)| gi)
        .collect();
    let mut reach: HashSet<usize> = HashSet::new();
    let mut q: VecDeque<usize> = roots.into_iter().collect();
    while let Some(gi) = q.pop_front() {
        if !reach.insert(gi) {
            continue;
        }
        for &c in callees[gi].values() {
            q.push_back(c);
        }
    }
    let mut hot: Vec<usize> = reach
        .into_iter()
        .filter(|&gi| {
            cfg.hot_files
                .iter()
                .any(|h| basename(funcs[gi].file) == h.as_str())
        })
        .collect();
    hot.sort();
    hot
}

/// Match findings against `// dsg-lint: allow(...)` comments (same line
/// or the line directly above). Reasonless suppressions do not suppress
/// and are themselves findings.
fn apply_suppressions(files: &[FileFacts], findings: &mut Vec<Finding>) -> Vec<SuppressionEntry> {
    let mut entries: Vec<SuppressionEntry> = Vec::new();
    let mut index: HashMap<(String, String, u32), usize> = HashMap::new();
    for f in files {
        for s in &f.suppressions {
            let ei = entries.len();
            if !rule::ALL.contains(&s.rule.as_str()) {
                findings.push(Finding {
                    rule: rule::INVALID_SUPPRESSION.to_string(),
                    file: f.path.clone(),
                    line: s.line,
                    message: format!(
                        "unknown rule `{}` in dsg-lint allow comment (known: {})",
                        s.rule,
                        rule::ALL.join(", ")
                    ),
                    suppressed: None,
                });
                continue;
            }
            if s.reason.is_none() {
                findings.push(Finding {
                    rule: rule::INVALID_SUPPRESSION.to_string(),
                    file: f.path.clone(),
                    line: s.line,
                    message: format!(
                        "suppression of `{}` has no reason; write `dsg-lint: allow({}) reason=\"...\"`",
                        s.rule, s.rule
                    ),
                    suppressed: None,
                });
                continue;
            }
            entries.push(SuppressionEntry {
                file: f.path.clone(),
                line: s.line,
                rule: s.rule.clone(),
                reason: s.reason.clone().unwrap_or_default(),
                used: false,
            });
            // A suppression covers its own line and the next line.
            index.insert((f.path.clone(), s.rule.clone(), s.line), ei);
            index.insert((f.path.clone(), s.rule.clone(), s.line + 1), ei);
        }
    }
    for finding in findings.iter_mut() {
        if finding.rule == rule::INVALID_SUPPRESSION {
            continue;
        }
        if let Some(&ei) = index.get(&(finding.file.clone(), finding.rule.clone(), finding.line)) {
            entries[ei].used = true;
            finding.suppressed = Some(entries[ei].reason.clone());
        }
    }
    entries
}
