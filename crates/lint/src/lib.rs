//! # dsg-lint — workspace concurrency-invariant analyzer
//!
//! PR 5 and PR 6 each shipped (and then fixed) a real serve-path
//! deadlock that 400+ tests missed, because lock ordering and
//! backpressure invariants lived only in reviewers' heads. This crate
//! encodes them as a machine-checked static pass, run as
//! `cargo run -p dsg-lint -- --workspace` and wired into CI as a hard
//! gate.
//!
//! It is a *source-level* analyzer with the same vendoring constraints
//! as the rest of the workspace (offline, std-only — no syn): a
//! hand-rolled lexer tokenizes every workspace `.rs` file, fact
//! extraction models lock fields / guard lifetimes / calls, and three
//! rule passes run over an interprocedural call graph:
//!
//! 1. **lock-order** / **lock-cycle** — every observed "acquire B while
//!    holding A" pair must be sanctioned by the declared partial order
//!    in `lint.toml`, and the observed graph must be acyclic.
//! 2. **guard-across-call** — holding a guard while calling into a
//!    lock-acquiring function in another module (the exact shape of the
//!    PR-5 warm-seed and PR-6 serve-path bugs).
//! 3. **hot-path-panic** / **hot-path-blocking** — no `unwrap`/`expect`/
//!    `panic!`-family macros and no blocking calls in the event-loop
//!    call-graph closure inside the hot files (`serve.rs`,
//!    `readiness.rs`, `frame.rs`).
//!
//! Findings can be suppressed with `// dsg-lint: allow(<rule>)
//! reason="..."` on (or directly above) the offending line; the reason
//! is mandatory and every suppression is inventoried in the report.

#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod config;
pub mod facts;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::Config;
pub use report::{Finding, Report};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyze a batch of in-memory sources (used by the fixture tests).
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Report {
    let (reg, files) = facts::extract_all(sources, cfg);
    rules::run(&reg, &files, cfg)
}

/// Path components that exclude a file from analysis: test and bench
/// code is allowed to unwrap and sleep, and lint fixtures deliberately
/// violate every rule.
const EXCLUDED_DIRS: &[&str] = &["tests", "benches", "fixtures", "target", "examples"];

/// Collect every analyzable `.rs` file under the workspace root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for e in entries {
            let src = e.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        collect_rs(&r, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name.as_str()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze the workspace rooted at `root` with the given config.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(f)?));
    }
    Ok(analyze_sources(&sources, cfg))
}

/// Locate the workspace root: walk upward from `start` until a directory
/// containing `lint.toml` (or a workspace `Cargo.toml`) is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Load `lint.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::parse(&src).map_err(|e| e.to_string())
}
