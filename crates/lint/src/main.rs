//! `dsg-lint` CLI: analyze the workspace against `lint.toml`.
//!
//! ```text
//! dsg-lint --workspace [--json] [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.
//! With `--json` the machine-readable report goes to stdout and the
//! human-readable findings to stderr, so CI can capture the artifact
//! with a plain redirect.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "dsg-lint — workspace concurrency-invariant analyzer\n\n\
                     USAGE: dsg-lint --workspace [--json] [--root DIR] [--config FILE]\n\n\
                     Rules: lock-order, lock-cycle, undeclared-lock, guard-across-call,\n\
                     hot-path-panic, hot-path-blocking, invalid-suppression.\n\
                     Suppress with: // dsg-lint: allow(<rule>) reason=\"...\""
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsg-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| dsg_lint::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dsg-lint: cannot locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let cfg = match config {
        Some(path) => std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|src| dsg_lint::Config::parse(&src).map_err(|e| e.to_string())),
        None => dsg_lint::load_config(&root),
    };
    let cfg = match cfg {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dsg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match dsg_lint::analyze_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dsg-lint: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
        eprint!("{}", report.render_human());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
