//! The live workspace must be clean under its own checked-in lint.toml —
//! the same gate CI enforces. This test also pins the shape of the
//! analysis (lock inventory, sanctioned edges, hot-path closure) so a
//! silent analyzer regression — e.g. the resolver going blind and
//! reporting zero locks — fails loudly instead of passing vacuously.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let root = workspace_root();
    let cfg = dsg_lint::load_config(root).expect("lint.toml parses");
    let report = dsg_lint::analyze_workspace(root, &cfg).expect("analysis runs");
    let findings: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("[{}] {}:{}: {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "dsg-lint found unsuppressed findings in the workspace:\n{}",
        findings.join("\n")
    );
}

#[test]
fn analysis_shape_is_sane_not_vacuous() {
    let root = workspace_root();
    let cfg = dsg_lint::load_config(root).expect("lint.toml parses");
    let report = dsg_lint::analyze_workspace(root, &cfg).expect("analysis runs");

    // The engine's full lock inventory must be visible.
    for lock in [
        "GraphCatalog.entries",
        "GraphCatalog.named",
        "NamedGraph.state",
        "NamedGraph.snapshot",
        "Engine.seeds",
        "ResultCache.inner",
        "ResultCache.floors",
        "ConnGate.used",
        "WorkerSlot.intake",
        "ShardQueue.backlog",
        "RouterSlot.arrivals",
        "RouterSlot.completions",
        "Slot.cell",
    ] {
        assert!(
            report.locks.iter().any(|l| l.id == lock),
            "lock inventory must contain {lock}; got {:?}",
            report.locks.iter().map(|l| &l.id).collect::<Vec<_>>()
        );
    }

    // The two deliberate mutate_named nestings must be observed (they
    // are what the declared edges in lint.toml sanction).
    for (from, to) in [
        ("NamedGraph.state", "NamedGraph.snapshot"),
        ("NamedGraph.state", "GraphCatalog.named"),
    ] {
        assert!(
            report.edges.iter().any(|e| e.from == from && e.to == to),
            "expected observed edge {from} -> {to}"
        );
    }

    // The hot-path closure must cover the event loops and the frame
    // decoder — the regression surface of the PR-6 fixes plus the
    // sharded router loop.
    for f in [
        "worker_event_loop",
        "router_event_loop",
        "Connection::process_one",
        "decode_request_payload",
    ] {
        assert!(
            report.hot_funcs.iter().any(|h| h.starts_with(f)),
            "hot-path closure must contain {f}; got {:?}",
            report.hot_funcs
        );
    }

    // No suppressions exist in the tree today; adding one must be a
    // conscious decision (this assertion is the reminder).
    assert!(
        report.suppressions.is_empty(),
        "unexpected suppression comments in the workspace: {:?}",
        report.suppressions
    );
}

#[test]
fn regression_serve_path_panics_stay_fixed() {
    // PR 7 removed the `unreachable!` arms in serve.rs run_mutation /
    // process_one and the decode-path expect in frame.rs. The hot-path
    // rule guards all three; this pins the specific files as
    // panic-free so the failure message names the regression directly.
    let root = workspace_root();
    let cfg = dsg_lint::load_config(root).expect("lint.toml parses");
    let report = dsg_lint::analyze_workspace(root, &cfg).expect("analysis runs");
    let offenders: Vec<String> = report
        .unsuppressed()
        .filter(|f| f.rule == "hot-path-panic" || f.rule == "hot-path-blocking")
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect();
    assert!(
        offenders.is_empty(),
        "serve/readiness/frame hot path regressed:\n{}",
        offenders.join("\n")
    );
}
