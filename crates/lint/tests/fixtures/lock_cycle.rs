//! Fixture: two functions acquiring the same pair of locks in opposite
//! orders — the classic AB/BA deadlock. `forward` follows the declared
//! `Alpha.m < Beta.n` order; `backward` must fire `lock-order`, and the
//! pair together must fire `lock-cycle`.

pub struct Alpha {
    pub m: std::sync::Mutex<u32>,
}

pub struct Beta {
    pub n: std::sync::Mutex<u32>,
}

pub fn forward(a: &Alpha, b: &Beta) -> u32 {
    let ga = a.m.lock().expect("alpha poisoned");
    let gb = b.n.lock().expect("beta poisoned");
    let sum = *ga + *gb;
    drop(gb);
    drop(ga);
    sum
}

pub fn backward(a: &Alpha, b: &Beta) -> u32 {
    let gb = b.n.lock().expect("beta poisoned");
    let ga = a.m.lock().expect("alpha poisoned");
    let sum = *ga + *gb;
    drop(ga);
    drop(gb);
    sum
}
