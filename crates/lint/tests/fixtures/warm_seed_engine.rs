//! Fixture: the pre-fix PR-5 warm-seed shape. `warm_decision_prefix`
//! holds the engine's seeds mutex while calling into the catalog module
//! to verify a candidate (which takes the catalog's meta lock) — the
//! exact guard-held-across-call bug PR 5's review fixed by moving the
//! verification outside the critical section, as `warm_decision_fixed`
//! does.

pub struct WarmEngine {
    pub seeds: std::sync::Mutex<Vec<u64>>,
}

impl WarmEngine {
    pub fn warm_decision_prefix(&self, key: u64) -> bool {
        let guard = self.seeds.lock().expect("seeds poisoned");
        let ok = verify_candidate(key) && !guard.is_empty();
        drop(guard);
        ok
    }

    pub fn warm_decision_fixed(&self, key: u64) -> bool {
        let candidate = {
            let guard = self.seeds.lock().expect("seeds poisoned");
            guard.first().copied()
        };
        match candidate {
            Some(c) => c == key && verify_candidate(key),
            None => false,
        }
    }
}

fn verify_candidate(key: u64) -> bool {
    lookup_meta(key)
}
