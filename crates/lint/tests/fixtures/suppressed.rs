//! Fixture: suppression mechanics. A reasoned `allow` comment silences
//! the finding on the next line but is inventoried; a reasonless one
//! suppresses nothing and is itself an `invalid-suppression` finding.

pub struct Pair {
    pub a: std::sync::Mutex<u32>,
    pub b: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn crossed_allowed(&self) -> u32 {
        let gb = self.b.lock().expect("b poisoned");
        // dsg-lint: allow(lock-order) reason="fixture: demonstrates a reasoned suppression"
        let ga = self.a.lock().expect("a poisoned");
        let sum = *ga + *gb;
        drop(ga);
        drop(gb);
        sum
    }

    pub fn crossed_no_reason(&self) -> u32 {
        let gb = self.b.lock().expect("b poisoned");
        // dsg-lint: allow(lock-order)
        let ga = self.a.lock().expect("a poisoned");
        let sum = *ga + *gb;
        drop(ga);
        drop(gb);
        sum
    }
}
