//! Fixture: the pre-fix PR-6 write-backlog flush shape. The event loop
//! drains a connection's write backlog by blocking and retrying inline
//! (`thread::sleep` + `.unwrap()`), stalling every other connection the
//! worker owns — the bug PR 6's review fixed by flushing on writable
//! readiness instead. Both the blocking call and the panic sites must
//! fire under the hot-path rules; the non-hot helpers must not.

pub struct Conn {
    pub wbuf: Vec<u8>,
}

pub struct Gate {
    pub used: std::sync::Mutex<usize>,
}

impl Conn {
    pub fn flush_backlog(&mut self) {
        while !self.wbuf.is_empty() {
            let n = write_some(&self.wbuf).unwrap();
            if n == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            self.wbuf.drain(..n);
        }
    }
}

impl Gate {
    pub fn release(&self) {
        // Poison propagation on a known lock is sanctioned: this expect
        // must NOT count as a hot-path panic.
        let mut used = self.used.lock().expect("gate poisoned");
        *used -= 1;
    }
}

pub fn worker_event_loop(conn: &mut Conn, gate: &Gate, op: u8) {
    dispatch(op, conn);
    gate.release();
}

pub fn dispatch(op: u8, conn: &mut Conn) {
    match op {
        0 => conn.flush_backlog(),
        other => unreachable!("op {other}"),
    }
}

/// Not reachable from the event loop: its unwrap is out of scope.
pub fn summarize(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap()
}

fn write_some(buf: &[u8]) -> Option<usize> {
    Some(buf.len())
}
