//! Fixture: a lock field that is not registered in lint.toml must fire
//! `undeclared-lock`, so new synchronization primitives are always
//! consciously added to the declared order.

pub struct Rogue {
    pub hidden: std::sync::Mutex<u8>,
}
