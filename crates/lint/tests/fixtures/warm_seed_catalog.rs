//! Fixture: the "catalog" module of the warm-seed shape — a different
//! file whose lookup path acquires its own lock, making the cross-module
//! call in `warm_seed_engine.rs` a guard-held-across-call finding.

pub struct WarmCatalog {
    pub meta: std::sync::RwLock<u64>,
}

impl WarmCatalog {
    pub fn has_key(&self, key: u64) -> bool {
        let meta = self.meta.read().expect("meta poisoned");
        *meta == key
    }
}

pub fn lookup_meta(key: u64) -> bool {
    global_catalog().has_key(key)
}

fn global_catalog() -> &'static WarmCatalog {
    unimplemented_catalog()
}

fn unimplemented_catalog() -> &'static WarmCatalog {
    loop {}
}
