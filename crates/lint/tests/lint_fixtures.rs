//! Fixture-based tests for each dsg-lint rule: known-bad snippets must
//! fire, known-good shapes must stay silent, and suppressions must
//! behave per policy. The fixtures under `tests/fixtures/` reproduce the
//! pre-fix shapes of the two real serve-path bugs (PR-5 warm-seed
//! guard-held-across-call, PR-6 write-backlog flush) so the analyzer is
//! proven to catch the class of bug it was built for.

use dsg_lint::{analyze_sources, Config, Report};
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    (
        name.to_string(),
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display())),
    )
}

fn run(fixtures: &[&str], config: &str) -> Report {
    let sources: Vec<_> = fixtures.iter().map(|f| fixture(f)).collect();
    let cfg = Config::parse(config).expect("fixture config parses");
    analyze_sources(&sources, &cfg)
}

/// (rule, file, line) triples of unsuppressed findings.
fn unsuppressed(report: &Report) -> Vec<(String, String, u32)> {
    report
        .unsuppressed()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect()
}

#[test]
fn ab_ba_cycle_fires_lock_order_and_cycle() {
    let report = run(
        &["lock_cycle.rs"],
        r#"
[lock_order]
edges = ["Alpha.m < Beta.n"]
"#,
    );
    let findings = unsuppressed(&report);
    // `forward` is sanctioned; `backward` (line 25: acquires Alpha.m
    // while holding Beta.n) violates the declared order.
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "lock-order" && (24..=28).contains(l)),
        "expected a lock-order finding in backward(), got {findings:?}"
    );
    assert!(
        findings.iter().any(|(r, _, _)| r == "lock-cycle"),
        "expected a lock-cycle finding, got {findings:?}"
    );
    // The sanctioned direction alone must not fire.
    assert!(
        !findings
            .iter()
            .any(|(r, _, l)| r == "lock-order" && (15..=21).contains(l)),
        "forward() follows the declared order, got {findings:?}"
    );
}

#[test]
fn declared_order_alone_is_clean() {
    // Same fixture, but with only the sanctioned function present — a
    // config declaring both directions would be a config cycle, so
    // instead verify the clean case by declaring the observed edge.
    let (name, src) = fixture("lock_cycle.rs");
    let forward_only: String = src
        .lines()
        .take_while(|l| !l.contains("pub fn backward"))
        .collect::<Vec<_>>()
        .join("\n");
    let cfg = Config::parse("[lock_order]\nedges = [\"Alpha.m < Beta.n\"]").unwrap();
    let report = analyze_sources(&[(name, forward_only)], &cfg);
    assert!(
        report.is_clean(),
        "forward-only fixture must be clean, got {:?}",
        unsuppressed(&report)
    );
}

#[test]
fn undeclared_lock_fires() {
    let report = run(&["undeclared_lock.rs"], "[lock_order]\nlocks = []");
    let findings = unsuppressed(&report);
    assert_eq!(findings.len(), 1, "got {findings:?}");
    assert_eq!(findings[0].0, "undeclared-lock");
    // Declaring it silences the finding.
    let clean = run(
        &["undeclared_lock.rs"],
        "[lock_order]\nlocks = [\"Rogue.hidden\"]",
    );
    assert!(clean.is_clean());
}

#[test]
fn warm_seed_prefix_shape_fires_guard_across_call() {
    let config = r#"
[lock_order]
leaves = ["WarmEngine.seeds", "WarmCatalog.meta"]
"#;
    let report = run(&["warm_seed_engine.rs", "warm_seed_catalog.rs"], config);
    let findings = unsuppressed(&report);
    // The pre-fix shape holds the seeds mutex across a call into the
    // catalog module (which acquires its meta lock): both the
    // cross-module hold and the leaf-order violation fire.
    assert!(
        findings
            .iter()
            .any(|(r, f, _)| r == "guard-across-call" && f == "warm_seed_engine.rs"),
        "expected guard-across-call in warm_decision_prefix, got {findings:?}"
    );
    assert!(
        findings.iter().any(|(r, _, _)| r == "lock-order"),
        "holding a leaf lock across an acquiring call also violates lock-order, got {findings:?}"
    );
    // The fixed shape (verification outside the critical section) is in
    // the same file; every finding must sit inside warm_decision_prefix
    // (lines 14-19), none in warm_decision_fixed (lines 21-30).
    for (rule, file, line) in &findings {
        if file == "warm_seed_engine.rs" {
            assert!(
                (14..=19).contains(line),
                "{rule} at {file}:{line} is outside the pre-fix function"
            );
        }
    }
}

#[test]
fn flush_backlog_shape_fires_hot_path_rules() {
    let config = r#"
[lock_order]
leaves = ["Gate.used"]

[hot_path]
files = ["flush_backlog.rs"]
roots = ["worker_event_loop"]
"#;
    let report = run(&["flush_backlog.rs"], config);
    let findings = unsuppressed(&report);
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "hot-path-blocking" && *l == 21),
        "expected hot-path-blocking on the sleep, got {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "hot-path-panic" && *l == 19),
        "expected hot-path-panic on the unwrap, got {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "hot-path-panic" && *l == 45),
        "expected hot-path-panic on dispatch's unreachable!, got {findings:?}"
    );
    // The poison-propagation expect in Gate::release is exempt, and
    // summarize() is not reachable from the event loop.
    assert!(
        !findings.iter().any(|(_, _, l)| *l == 32),
        "poison expect must be exempt, got {findings:?}"
    );
    assert!(
        !findings.iter().any(|(_, _, l)| *l == 51),
        "summarize() is not hot, got {findings:?}"
    );
}

#[test]
fn reasoned_suppression_silences_and_is_inventoried() {
    let config = r#"
[lock_order]
edges = ["Pair.a < Pair.b"]
"#;
    let report = run(&["suppressed.rs"], config);
    let findings = unsuppressed(&report);
    // crossed_allowed's violation is suppressed; crossed_no_reason's is
    // not, and the reasonless comment is itself a finding.
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "lock-order" && *l == 24),
        "reasonless suppression must not silence, got {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(r, _, l)| r == "invalid-suppression" && *l == 23),
        "reasonless suppression is a finding, got {findings:?}"
    );
    assert!(
        !findings
            .iter()
            .any(|(r, _, l)| r == "lock-order" && *l == 14),
        "reasoned suppression must silence line 14, got {findings:?}"
    );
    let suppressed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_some())
        .collect();
    assert_eq!(suppressed.len(), 1, "exactly one suppressed finding");
    assert_eq!(
        report.suppressions.len(),
        1,
        "inventory has the valid entry"
    );
    assert!(report.suppressions[0].used);
    assert!(report.suppressions[0].reason.contains("fixture"));
}

#[test]
fn unknown_rule_in_suppression_is_a_finding() {
    let src = "// dsg-lint: allow(made-up-rule) reason=\"nope\"\nfn f() {}\n";
    let cfg = Config::parse("").unwrap();
    let report = analyze_sources(&[("x.rs".to_string(), src.to_string())], &cfg);
    let findings = unsuppressed(&report);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].0, "invalid-suppression");
}

#[test]
fn config_cycle_is_reported() {
    let cfg = Config::parse("[lock_order]\nedges = [\"A.x < B.y\", \"B.y < A.x\"]").unwrap();
    let report = analyze_sources(&[], &cfg);
    assert!(report.findings.iter().any(|f| f.rule == "config"));
}

#[test]
fn json_report_is_parseable_shape() {
    let report = run(
        &["lock_cycle.rs"],
        "[lock_order]\nedges = [\"Alpha.m < Beta.n\"]",
    );
    let json = report.render_json();
    assert!(json.contains("\"findings\""));
    assert!(json.contains("\"lock_edges\""));
    assert!(json.contains("\"lock-order\""));
    // Balanced braces/brackets as a cheap well-formedness check.
    let opens = json.matches('{').count() + json.matches('[').count();
    let closes = json.matches('}').count() + json.matches(']').count();
    assert_eq!(opens, closes);
}
