//! Dinic's maximum-flow algorithm over `f64` capacities.
//!
//! Dinic runs in `O(V²E)` in general and much faster on the shallow,
//! unit-ish networks produced by Goldberg's densest-subgraph reduction.
//! Floating-point capacities require an explicit tolerance: residual
//! capacities below [`Dinic::EPS`] are treated as saturated, which is safe
//! for the reduction because the binary search in
//! [`crate::goldberg`] only needs cut values to precision `1/n²` scaled by
//! the edge weights.

/// A directed edge in the residual network.
#[derive(Clone, Debug)]
struct FlowEdge {
    to: u32,
    /// Remaining capacity.
    cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: u32,
}

/// The result of a minimum-cut query: reachable side and cut value.
#[derive(Clone, Debug)]
pub struct MinCut {
    /// Nodes reachable from the source in the final residual network
    /// (the source side of a minimum cut), as a boolean per node.
    pub source_side: Vec<bool>,
    /// The max-flow value (= min-cut capacity).
    pub value: f64,
}

/// Dinic's max-flow solver. Build with [`Dinic::new`], add edges with
/// [`Dinic::add_edge`], then call [`Dinic::max_flow`].
pub struct Dinic {
    graph: Vec<Vec<FlowEdge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Residual capacities below this threshold count as zero.
    pub const EPS: f64 = 1e-9;

    /// Creates a solver over `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap` (and a
    /// zero-capacity reverse edge).
    pub fn add_edge(&mut self, from: u32, to: u32, cap: f64) {
        assert!(cap >= 0.0, "negative capacity {cap}");
        assert_ne!(
            from, to,
            "self-loop edges are not allowed in the flow network"
        );
        let from_idx = self.graph[to as usize].len() as u32;
        let to_idx = self.graph[from as usize].len() as u32;
        self.graph[from as usize].push(FlowEdge {
            to,
            cap,
            rev: from_idx,
        });
        self.graph[to as usize].push(FlowEdge {
            to: from,
            cap: 0.0,
            rev: to_idx,
        });
    }

    /// Adds an undirected edge: capacity `cap` in both directions.
    pub fn add_bidirectional_edge(&mut self, a: u32, b: u32, cap: f64) {
        assert!(cap >= 0.0);
        assert_ne!(a, b);
        let a_idx = self.graph[b as usize].len() as u32;
        let b_idx = self.graph[a as usize].len() as u32;
        self.graph[a as usize].push(FlowEdge {
            to: b,
            cap,
            rev: a_idx,
        });
        self.graph[b as usize].push(FlowEdge {
            to: a,
            cap,
            rev: b_idx,
        });
    }

    /// BFS phase: builds the level graph. Returns `true` if `t` is
    /// reachable.
    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in &self.graph[u as usize] {
                if e.cap > Self::EPS && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[u as usize] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    /// DFS phase: sends blocking flow along the level graph.
    fn dfs(&mut self, u: u32, t: u32, pushed: f64) -> f64 {
        if u == t {
            return pushed;
        }
        while self.iter[u as usize] < self.graph[u as usize].len() {
            let i = self.iter[u as usize];
            let (to, cap, rev) = {
                let e = &self.graph[u as usize][i];
                (e.to, e.cap, e.rev)
            };
            if cap > Self::EPS && self.level[to as usize] == self.level[u as usize] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > Self::EPS {
                    self.graph[u as usize][i].cap -= d;
                    self.graph[to as usize][rev as usize].cap += d;
                    return d;
                }
            }
            self.iter[u as usize] += 1;
        }
        0.0
    }

    /// Computes the maximum `s`-`t` flow, mutating the internal residual
    /// network. Call once per instance.
    pub fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        assert_ne!(s, t);
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= Self::EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Computes max-flow and returns the source side of a minimum cut.
    pub fn min_cut(&mut self, s: u32, t: u32) -> MinCut {
        let value = self.max_flow(s, t);
        // Nodes reachable in the residual network form the source side.
        let mut source_side = vec![false; self.graph.len()];
        let mut stack = vec![s];
        source_side[s as usize] = true;
        while let Some(u) = stack.pop() {
            for e in &self.graph[u as usize] {
                if e.cap > Self::EPS && !source_side[e.to as usize] {
                    source_side[e.to as usize] = true;
                    stack.push(e.to);
                }
            }
        }
        MinCut { source_side, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 3.5);
        assert!((d.max_flow(0, 1) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn series_bottleneck() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5.0);
        d.add_edge(1, 2, 2.0);
        assert!((d.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(1, 3, 1.0);
        d.add_edge(0, 2, 2.0);
        d.add_edge(2, 3, 2.0);
        assert!((d.max_flow(0, 3) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut d = Dinic::new(6);
        let (s, v1, v2, v3, v4, t) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32);
        d.add_edge(s, v1, 16.0);
        d.add_edge(s, v2, 13.0);
        d.add_edge(v1, v3, 12.0);
        d.add_edge(v2, v1, 4.0);
        d.add_edge(v2, v4, 14.0);
        d.add_edge(v3, v2, 9.0);
        d.add_edge(v3, t, 20.0);
        d.add_edge(v4, v3, 7.0);
        d.add_edge(v4, t, 4.0);
        assert!((d.max_flow(s, t) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn requires_augmenting_via_reverse_edge() {
        // The classic case where flow must be rerouted through a residual
        // (reverse) edge.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(0, 2, 1.0);
        d.add_edge(1, 2, 1.0);
        d.add_edge(1, 3, 1.0);
        d.add_edge(2, 3, 1.0);
        assert!((d.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10.0);
        d.add_edge(1, 2, 1.0); // bottleneck
        d.add_edge(2, 3, 10.0);
        let cut = d.min_cut(0, 3);
        assert!((cut.value - 1.0).abs() < 1e-9);
        assert_eq!(cut.source_side, vec![true, true, false, false]);
    }

    #[test]
    fn disconnected_target_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 4.0);
        let cut = d.min_cut(0, 2);
        assert_eq!(cut.value, 0.0);
        assert!(cut.source_side[0] && cut.source_side[1]);
        assert!(!cut.source_side[2]);
    }

    #[test]
    fn bidirectional_edges() {
        let mut d = Dinic::new(3);
        d.add_bidirectional_edge(0, 1, 2.0);
        d.add_bidirectional_edge(1, 2, 2.0);
        assert!((d.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacities() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 0.25);
        d.add_edge(0, 2, 0.5);
        d.add_edge(1, 2, 1.0);
        assert!((d.max_flow(0, 2) - 0.75).abs() < 1e-9);
    }
}
