//! Highest-label push–relabel maximum flow (Goldberg–Tarjan 1988), with
//! the gap heuristic.
//!
//! A second, independent max-flow implementation. Two reasons to have it:
//! the paper's exact baseline is literally "parametric flow" \[29\] — whose
//! standard realization is push–relabel — and an independent solver gives
//! the test suite a cross-check oracle for [`crate::dinic`] (two solvers
//! agreeing on thousands of random networks is a far stronger guarantee
//! than either alone).

/// An edge of the residual network.
#[derive(Clone, Debug)]
struct PrEdge {
    to: u32,
    cap: f64,
    rev: u32,
}

/// Highest-label push–relabel solver.
pub struct PushRelabel {
    graph: Vec<Vec<PrEdge>>,
    excess: Vec<f64>,
    height: Vec<u32>,
    /// `count[h]` = number of nodes at height `h` (gap heuristic).
    count: Vec<u32>,
    /// Buckets of active nodes by height.
    active: Vec<Vec<u32>>,
    highest: usize,
}

impl PushRelabel {
    /// Capacities below this threshold count as zero.
    pub const EPS: f64 = 1e-9;

    /// Creates a solver over `n` nodes.
    pub fn new(n: usize) -> Self {
        PushRelabel {
            graph: vec![Vec::new(); n],
            excess: vec![0.0; n],
            height: vec![0; n],
            count: vec![0; 2 * n + 1],
            active: vec![Vec::new(); 2 * n + 1],
            highest: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap`.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: f64) {
        assert!(cap >= 0.0, "negative capacity {cap}");
        assert_ne!(from, to, "self-loops are not allowed");
        let from_idx = self.graph[to as usize].len() as u32;
        let to_idx = self.graph[from as usize].len() as u32;
        self.graph[from as usize].push(PrEdge {
            to,
            cap,
            rev: from_idx,
        });
        self.graph[to as usize].push(PrEdge {
            to: from,
            cap: 0.0,
            rev: to_idx,
        });
    }

    fn push(&mut self, u: u32, i: usize) {
        let (to, cap, rev) = {
            let e = &self.graph[u as usize][i];
            (e.to, e.cap, e.rev)
        };
        let delta = self.excess[u as usize].min(cap);
        if delta <= Self::EPS {
            return;
        }
        self.graph[u as usize][i].cap -= delta;
        self.graph[to as usize][rev as usize].cap += delta;
        self.excess[u as usize] -= delta;
        let was_inactive = self.excess[to as usize] <= Self::EPS;
        self.excess[to as usize] += delta;
        if was_inactive && self.excess[to as usize] > Self::EPS {
            let h = self.height[to as usize] as usize;
            self.active[h].push(to);
        }
    }

    fn relabel(&mut self, u: u32, s: u32, t: u32) {
        let n = self.graph.len() as u32;
        let old = self.height[u as usize];
        let mut min_h = 2 * n;
        for e in &self.graph[u as usize] {
            if e.cap > Self::EPS {
                min_h = min_h.min(self.height[e.to as usize] + 1);
            }
        }
        self.count[old as usize] -= 1;
        // Gap heuristic: if no node remains at `old`, every node above
        // `old` (except s, t) can never route to t — lift them past n.
        if self.count[old as usize] == 0 && old < n {
            for v in 0..self.graph.len() as u32 {
                if v != s && v != t && self.height[v as usize] > old && self.height[v as usize] <= n
                {
                    let h = self.height[v as usize];
                    self.count[h as usize] -= 1;
                    self.height[v as usize] = n + 1;
                    self.count[(n + 1) as usize] += 1;
                }
            }
        }
        let new_h = min_h.min(2 * n);
        self.height[u as usize] = new_h;
        self.count[new_h as usize] += 1;
        if self.excess[u as usize] > Self::EPS {
            self.active[new_h as usize].push(u);
            self.highest = self.highest.max(new_h as usize);
        }
    }

    /// Computes the maximum `s`-`t` flow. Call once per instance.
    pub fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        assert_ne!(s, t);
        let n = self.graph.len() as u32;
        // Initialize: s at height n, saturate its out-edges.
        self.height[s as usize] = n;
        self.count[0] = n - 1;
        self.count[n as usize] += 1;
        self.excess[s as usize] = f64::INFINITY;
        for i in 0..self.graph[s as usize].len() {
            self.push(s, i);
        }
        self.excess[s as usize] = 0.0;
        self.highest = self.active.len() - 1;

        loop {
            // Find the highest active node (skip s, t, and stale entries).
            while self.highest > 0 && self.active[self.highest].is_empty() {
                self.highest -= 1;
            }
            let u = loop {
                match self.active[self.highest].pop() {
                    None => break None,
                    Some(u) => {
                        if u != s
                            && u != t
                            && self.excess[u as usize] > Self::EPS
                            && self.height[u as usize] as usize == self.highest
                        {
                            break Some(u);
                        }
                    }
                }
            };
            let Some(u) = u else {
                if self.highest == 0 {
                    break;
                }
                continue;
            };
            // Discharge u.
            while self.excess[u as usize] > Self::EPS {
                let uh = self.height[u as usize];
                let mut pushed = false;
                for i in 0..self.graph[u as usize].len() {
                    let (to, cap) = {
                        let e = &self.graph[u as usize][i];
                        (e.to, e.cap)
                    };
                    if cap > Self::EPS && uh == self.height[to as usize] + 1 {
                        self.push(u, i);
                        pushed = true;
                        if self.excess[u as usize] <= Self::EPS {
                            break;
                        }
                    }
                }
                if !pushed {
                    self.relabel(u, s, t);
                    break;
                }
            }
        }
        self.excess[t as usize]
    }

    /// Computes max-flow and returns the **source side** of a minimum cut
    /// (nodes from which `t` is unreachable in the residual network are
    /// identified by residual reachability from `s`).
    pub fn min_cut(&mut self, s: u32, t: u32) -> (Vec<bool>, f64) {
        let value = self.max_flow(s, t);
        let mut source_side = vec![false; self.graph.len()];
        let mut stack = vec![s];
        source_side[s as usize] = true;
        while let Some(u) = stack.pop() {
            for e in &self.graph[u as usize] {
                if e.cap > Self::EPS && !source_side[e.to as usize] {
                    source_side[e.to as usize] = true;
                    stack.push(e.to);
                }
            }
        }
        (source_side, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;
    use dsg_graph::SplitMix64;

    #[test]
    fn single_edge() {
        let mut pr = PushRelabel::new(2);
        pr.add_edge(0, 1, 2.5);
        assert!((pr.max_flow(0, 1) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_network() {
        let mut pr = PushRelabel::new(6);
        let (s, v1, v2, v3, v4, t) = (0u32, 1, 2, 3, 4, 5);
        pr.add_edge(s, v1, 16.0);
        pr.add_edge(s, v2, 13.0);
        pr.add_edge(v1, v3, 12.0);
        pr.add_edge(v2, v1, 4.0);
        pr.add_edge(v2, v4, 14.0);
        pr.add_edge(v3, v2, 9.0);
        pr.add_edge(v3, t, 20.0);
        pr.add_edge(v4, v3, 7.0);
        pr.add_edge(v4, t, 4.0);
        assert!((pr.max_flow(s, t) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_target() {
        let mut pr = PushRelabel::new(3);
        pr.add_edge(0, 1, 5.0);
        assert_eq!(pr.max_flow(0, 2), 0.0);
    }

    #[test]
    fn min_cut_separates() {
        let mut pr = PushRelabel::new(4);
        pr.add_edge(0, 1, 10.0);
        pr.add_edge(1, 2, 1.0);
        pr.add_edge(2, 3, 10.0);
        let (side, value) = pr.min_cut(0, 3);
        assert!((value - 1.0).abs() < 1e-9);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        let mut rng = SplitMix64::new(0xF10E);
        for trial in 0..60 {
            let n = 4 + (trial % 12) as usize;
            let m = n * 3;
            let mut edges = Vec::new();
            for _ in 0..m {
                let u = rng.range_u32(n as u32);
                let v = rng.range_u32(n as u32);
                if u != v {
                    edges.push((u, v, (rng.next_f64() * 10.0).round()));
                }
            }
            let s = 0u32;
            let t = (n - 1) as u32;
            let mut dinic = Dinic::new(n);
            let mut pr = PushRelabel::new(n);
            for &(u, v, c) in &edges {
                dinic.add_edge(u, v, c);
                pr.add_edge(u, v, c);
            }
            let fd = dinic.max_flow(s, t);
            let fp = pr.max_flow(s, t);
            assert!(
                (fd - fp).abs() < 1e-6,
                "trial {trial}: dinic {fd} vs push-relabel {fp} on {edges:?}"
            );
        }
    }

    #[test]
    fn min_cut_agrees_with_dinic_value() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..20 {
            let n = 8;
            let mut dinic = Dinic::new(n);
            let mut pr = PushRelabel::new(n);
            for _ in 0..20 {
                let u = rng.range_u32(n as u32);
                let v = rng.range_u32(n as u32);
                if u != v {
                    let c = (rng.next_f64() * 5.0).round();
                    dinic.add_edge(u, v, c);
                    pr.add_edge(u, v, c);
                }
            }
            let dc = dinic.min_cut(0, 7);
            let (side, value) = pr.min_cut(0, 7);
            assert!((dc.value - value).abs() < 1e-6);
            assert!(side[0]);
            assert!(!side[7]);
        }
    }
}
