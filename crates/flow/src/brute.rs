//! Exhaustive densest-subgraph oracles for tiny graphs.
//!
//! These are deliberately simple `O(2^n)` / `O(4^n)` enumerations used as
//! ground truth in tests of the flow solver and the streaming algorithms.

use dsg_graph::{CsrDirected, CsrUndirected, NodeSet};

/// Exact undirected densest subgraph by subset enumeration.
///
/// Returns `(best_set, best_density)`. Panics if the graph has more than
/// 24 nodes (2^24 subsets is the practical limit for a test helper).
pub fn brute_force_densest(g: &CsrUndirected) -> (NodeSet, f64) {
    let n = g.num_nodes();
    assert!(n <= 24, "brute force limited to 24 nodes (got {n})");
    if n == 0 {
        return (NodeSet::empty(0), 0.0);
    }
    // Adjacency bitmasks; weighted graphs fall back to explicit summation.
    let weighted = g.is_weighted();
    let adj: Vec<u32> = (0..n as u32)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .fold(0u32, |acc, &v| acc | (1u32 << v))
        })
        .collect();

    let mut best_mask = 0u32;
    let mut best_density = 0.0f64;
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as f64;
        let weight = if weighted {
            let set = mask_to_set(mask, n);
            g.induced_edge_weight(&set)
        } else {
            // Σ_u popcount(adj[u] & mask & bits_above_u) counts each edge once.
            let mut m = mask;
            let mut count = 0u32;
            while m != 0 {
                let u = m.trailing_zeros();
                m &= m - 1;
                count += (adj[u as usize] & mask & !((1u32 << u) | ((1u32 << u) - 1))).count_ones();
            }
            count as f64
        };
        let density = weight / size;
        if density > best_density {
            best_density = density;
            best_mask = mask;
        }
    }
    (mask_to_set(best_mask, n), best_density)
}

fn mask_to_set(mask: u32, n: usize) -> NodeSet {
    NodeSet::from_iter(n, (0..n as u32).filter(|&i| mask & (1 << i) != 0))
}

/// Exact directed densest subgraph `max_{S,T} |E(S,T)|/sqrt(|S||T|)` by
/// enumerating all pairs of non-empty subsets (`S` and `T` may overlap).
///
/// Returns `(S, T, density)`. Panics above 12 nodes (4^12 ≈ 16M pairs).
pub fn brute_force_densest_directed(g: &CsrDirected) -> (NodeSet, NodeSet, f64) {
    let n = g.num_nodes();
    assert!(
        n <= 12,
        "directed brute force limited to 12 nodes (got {n})"
    );
    if n == 0 {
        return (NodeSet::empty(0), NodeSet::empty(0), 0.0);
    }
    // out_mask[u] = bitmask of targets of u.
    let out_mask: Vec<u32> = (0..n as u32)
        .map(|u| {
            g.out_neighbors(u)
                .iter()
                .fold(0u32, |acc, &v| acc | (1u32 << v))
        })
        .collect();

    let mut best = (0u32, 0u32, 0.0f64);
    for s_mask in 1u32..(1u32 << n) {
        let s_size = s_mask.count_ones() as f64;
        // Precompute the multiset of arcs leaving S.
        for t_mask in 1u32..(1u32 << n) {
            let t_size = t_mask.count_ones() as f64;
            let mut edges = 0u32;
            let mut m = s_mask;
            while m != 0 {
                let u = m.trailing_zeros();
                m &= m - 1;
                edges += (out_mask[u as usize] & t_mask).count_ones();
            }
            let density = edges as f64 / (s_size * t_size).sqrt();
            if density > best.2 {
                best = (s_mask, t_mask, density);
            }
        }
    }
    (mask_to_set(best.0, n), mask_to_set(best.1, n), best.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::{CsrDirected, EdgeList};

    #[test]
    fn brute_clique_plus_tail() {
        // K5 with a path attached: optimum is the K5, density 2.
        let mut g = gen::clique(5);
        g.num_nodes = 8;
        g.push(4, 5);
        g.push(5, 6);
        g.push(6, 7);
        let csr = CsrUndirected::from_edge_list(&g);
        let (set, d) = brute_force_densest(&csr);
        assert!((d - 2.0).abs() < 1e-12);
        assert_eq!(set.to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn brute_weighted() {
        let mut g = EdgeList::new_undirected(4);
        g.push_weighted(0, 1, 6.0);
        g.push_weighted(2, 3, 1.0);
        let csr = CsrUndirected::from_edge_list(&g);
        let (set, d) = brute_force_densest(&csr);
        assert!((d - 3.0).abs() < 1e-12);
        assert_eq!(set.to_vec(), vec![0, 1]);
    }

    #[test]
    fn brute_empty_graph() {
        let csr = CsrUndirected::from_edge_list(&EdgeList::new_undirected(4));
        let (_, d) = brute_force_densest(&csr);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn brute_directed_bipartite() {
        // All arcs from {0,1,2} to {3,4}: ρ = 6/sqrt(6) = sqrt(6).
        let mut g = EdgeList::new_directed(5);
        for u in 0..3 {
            for v in 3..5 {
                g.push(u, v);
            }
        }
        let csr = CsrDirected::from_edge_list(&g);
        let (s, t, d) = brute_force_densest_directed(&csr);
        assert!((d - 6.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.to_vec(), vec![0, 1, 2]);
        assert_eq!(t.to_vec(), vec![3, 4]);
    }

    #[test]
    fn brute_directed_prefers_asymmetric_hub() {
        // Many nodes all pointing at node 0: S = followers, T = {0}.
        let mut g = EdgeList::new_directed(7);
        for u in 1..7 {
            g.push(u, 0);
        }
        let csr = CsrDirected::from_edge_list(&g);
        let (s, t, d) = brute_force_densest_directed(&csr);
        assert_eq!(t.to_vec(), vec![0]);
        assert_eq!(s.len(), 6);
        assert!((d - 6.0 / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn brute_directed_overlapping_sets() {
        // A directed 3-cycle: best with S = T = {0,1,2}: 3 arcs / 3 = 1.
        let mut g = EdgeList::new_directed(3);
        g.push(0, 1);
        g.push(1, 2);
        g.push(2, 0);
        let csr = CsrDirected::from_edge_list(&g);
        let (s, t, d) = brute_force_densest_directed(&csr);
        // Several optima tie at ρ = 1 (e.g. S={u}, T={succ(u)} or S=T=V).
        assert!((d - 1.0).abs() < 1e-12);
        assert!(!s.is_empty() && !t.is_empty());
        // Verify the certificate: recomputed density matches.
        assert!((csr.density_of(&s, &t) - d).abs() < 1e-12);
    }
}
