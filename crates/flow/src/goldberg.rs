//! Goldberg's exact maximum-density subgraph algorithm (Goldberg 1984;
//! reference \[22\] of the paper).
//!
//! For a density guess `g`, build the network
//!
//! ```text
//! s --W--> v            for every node v          (W = total edge weight)
//! v --(W + 2g - deg(v))--> t
//! u <--w(u,v)--> v      for every edge (u, v)
//! ```
//!
//! A source-side cut `{s} ∪ S` has value `W·n + 2g·|S| - 2·w(E(S))`, so the
//! minimum cut is below `W·n` **iff** some subset has density above `g`.
//! Binary search over `g` then pins down the exact optimum: for unweighted
//! graphs any two distinct densities `a/b`, `a'/b'` (`b, b' ≤ n`) differ by
//! at least `1/(n(n-1))`, so `O(log n)` flow computations suffice — the
//! same bound Goldberg proved.
//!
//! This replaces the paper's COIN-OR CLP linear program: Charikar showed
//! the LP optimum equals `ρ*(G)`, and so does this min-cut construction,
//! so the measured "quality of approximation" (Table 2) is identical.

use crate::dinic::Dinic;
use crate::push_relabel::PushRelabel;
use dsg_graph::{CsrUndirected, NodeSet};

/// Which max-flow solver backs the binary search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlowBackend {
    /// Dinic's algorithm (default — fastest on these shallow networks).
    #[default]
    Dinic,
    /// Highest-label push–relabel with the gap heuristic.
    PushRelabel,
}

/// The exact densest subgraph of an undirected graph.
#[derive(Clone, Debug)]
pub struct ExactDensest {
    /// The maximum-density node set.
    pub set: NodeSet,
    /// Its density `ρ(S) = w(E(S))/|S|` — equals `ρ*(G)`.
    pub density: f64,
    /// Number of max-flow computations performed.
    pub flow_calls: u32,
}

/// Computes the exact densest subgraph via Goldberg's reduction.
///
/// For unweighted graphs the returned set is exactly optimal. For weighted
/// graphs the binary search runs to a relative precision of `1e-9`, which
/// is exact for all practical purposes (the returned density is always the
/// true density of the returned set, never an estimate).
///
/// Complexity: `O(log n)` Dinic max-flows on a network with `n + 2` nodes
/// and `n·2 + 2m` arcs.
///
/// ```
/// use dsg_graph::{gen, CsrUndirected};
/// use dsg_flow::exact_densest;
///
/// // Densest subgraph of a star is the whole star: ρ = (n-1)/n.
/// let g = CsrUndirected::from_edge_list(&gen::star(10));
/// let r = exact_densest(&g);
/// assert!((r.density - 0.9).abs() < 1e-9);
/// assert_eq!(r.set.len(), 10);
/// ```
pub fn exact_densest(g: &CsrUndirected) -> ExactDensest {
    exact_densest_with(g, FlowBackend::Dinic)
}

/// [`exact_densest`] with an explicit max-flow backend.
pub fn exact_densest_with(g: &CsrUndirected, backend: FlowBackend) -> ExactDensest {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return ExactDensest {
            set: NodeSet::empty(n),
            density: 0.0,
            flow_calls: 0,
        };
    }
    let total_w = g.total_weight();
    let nf = n as f64;

    // Bounds: ρ* ∈ [W/n (the whole graph), max_deg/2].
    let max_deg = (0..n as u32)
        .map(|u| g.weighted_degree(u))
        .fold(0.0f64, f64::max);
    let mut lo = total_w / nf;
    let mut hi = max_deg / 2.0 + 1e-12;

    // Best certificate so far: the whole node set (density W/n).
    let mut best = NodeSet::full(n);
    let mut best_density = total_w / nf;

    // Unweighted graphs: stop when the interval is below the minimum gap
    // between distinct densities. Weighted: fixed relative precision.
    let gap = if g.is_weighted() {
        (total_w / nf).max(1.0) * 1e-9
    } else {
        1.0 / (nf * (nf + 1.0))
    };

    let mut flow_calls = 0u32;
    while hi - lo > gap {
        let guess = 0.5 * (lo + hi);
        flow_calls += 1;
        match denser_than(g, guess, total_w, backend) {
            Some(set) => {
                let density = g.density_of(&set);
                if density > best_density {
                    best_density = density;
                    best = set;
                }
                lo = guess;
            }
            None => {
                hi = guess;
            }
        }
        // Safety valve: f64 binary search always terminates well under 100
        // iterations, but guard against pathological NaN propagation.
        assert!(flow_calls < 200, "binary search failed to converge");
    }

    ExactDensest {
        set: best,
        density: best_density,
        flow_calls,
    }
}

/// One Goldberg min-cut query: returns a set with `ρ(S) > guess` if one
/// exists, `None` otherwise.
fn denser_than(
    g: &CsrUndirected,
    guess: f64,
    total_w: f64,
    backend: FlowBackend,
) -> Option<NodeSet> {
    let n = g.num_nodes();
    let s = n as u32;
    let t = n as u32 + 1;
    // Build the network through a tiny closure-based facade so both
    // solvers share the construction.
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(2 * n + 2 * g.num_edges());
    for u in 0..n as u32 {
        edges.push((s, u, total_w));
        let cap = total_w + 2.0 * guess - g.weighted_degree(u);
        // Capacity is non-negative whenever guess >= 0 and deg <= W + 2g;
        // deg(u) <= 2W always, but for small graphs W + 2g can undershoot a
        // hub degree only if g < deg/2 - W/2 <= 0 — clamp defensively.
        edges.push((u, t, cap.max(0.0)));
        for (v, w) in g.neighbors_weighted(u) {
            // Each undirected edge appears twice in the CSR; adding the
            // directed arc from each visit yields capacity w in both
            // directions — exactly the construction.
            if u != v {
                edges.push((u, v, w));
            }
        }
    }
    let (source_side, cut_value) = match backend {
        FlowBackend::Dinic => {
            let mut dinic = Dinic::new(n + 2);
            for &(a, b, c) in &edges {
                dinic.add_edge(a, b, c);
            }
            let cut = dinic.min_cut(s, t);
            (cut.source_side, cut.value)
        }
        FlowBackend::PushRelabel => {
            let mut pr = PushRelabel::new(n + 2);
            for &(a, b, c) in &edges {
                pr.add_edge(a, b, c);
            }
            pr.min_cut(s, t)
        }
    };
    // Cut below W*n means a dense set exists on the source side.
    let tol = total_w.max(1.0) * 1e-7;
    if cut_value < total_w * n as f64 - tol {
        let mut set = NodeSet::empty(n);
        for u in 0..n as u32 {
            if source_side[u as usize] {
                set.insert(u);
            }
        }
        if set.is_empty() {
            None
        } else {
            Some(set)
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;
    use dsg_graph::EdgeList;

    fn csr(list: &EdgeList) -> CsrUndirected {
        CsrUndirected::from_edge_list(list)
    }

    #[test]
    fn clique_is_its_own_densest() {
        let g = csr(&gen::clique(8));
        let r = exact_densest(&g);
        assert!((r.density - 3.5).abs() < 1e-9);
        assert_eq!(r.set.len(), 8);
    }

    #[test]
    fn star_densest_is_whole_star() {
        // For a star on n nodes every subset containing the center and k
        // leaves has density k/(k+1), maximized at k = n-1.
        let g = csr(&gen::star(10));
        let r = exact_densest(&g);
        assert!((r.density - 0.9).abs() < 1e-9);
        assert_eq!(r.set.len(), 10);
    }

    #[test]
    fn planted_clique_found_exactly() {
        let pg = gen::planted_clique(120, 150, 12, 77);
        let g = csr(&pg.graph);
        let r = exact_densest(&g);
        // Optimum is at least the planted clique density (background edges
        // inside the community only help).
        assert!(r.density + 1e-9 >= 5.5, "density {}", r.density);
        // The planted nodes should be inside the returned set.
        assert!(
            pg.planted.intersection_len(&r.set) >= 11,
            "planted clique mostly recovered"
        );
    }

    #[test]
    fn two_cliques_picks_larger() {
        // K6 (density 2.5) ∪ K4 (density 1.5): optimum is K6 alone.
        let mut g = gen::clique(6);
        g.disjoint_union(&gen::clique(4));
        let r = exact_densest(&csr(&g));
        assert!((r.density - 2.5).abs() < 1e-9);
        assert_eq!(r.set.to_vec(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let r = exact_densest(&csr(&EdgeList::new_undirected(0)));
        assert_eq!(r.density, 0.0);
        let r = exact_densest(&csr(&EdgeList::new_undirected(5)));
        assert_eq!(r.density, 0.0);
        let mut one = EdgeList::new_undirected(2);
        one.push(0, 1);
        let r = exact_densest(&csr(&one));
        assert!((r.density - 0.5).abs() < 1e-9);
        assert_eq!(r.set.len(), 2);
    }

    #[test]
    fn weighted_graph_prefers_heavy_edge_cluster() {
        // Triangle with weight 10 edges vs a big sparse remainder.
        let mut g = EdgeList::new_undirected(10);
        g.push_weighted(0, 1, 10.0);
        g.push_weighted(1, 2, 10.0);
        g.push_weighted(0, 2, 10.0);
        for v in 3..10 {
            g.push_weighted(0, v, 0.1);
        }
        let r = exact_densest(&csr(&g));
        assert!((r.density - 10.0).abs() < 1e-6, "density {}", r.density);
        assert_eq!(r.set.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let list = gen::gnp(14, 0.3, seed);
            let g = csr(&list);
            let brute = crate::brute::brute_force_densest(&g);
            let exact = exact_densest(&g);
            assert!(
                (exact.density - brute.1).abs() < 1e-9,
                "seed {seed}: flow {} vs brute {}",
                exact.density,
                brute.1
            );
        }
    }

    #[test]
    fn both_backends_agree() {
        for seed in 0..5 {
            let list = gen::gnp(60, 0.1, seed);
            let g = csr(&list);
            let a = exact_densest_with(&g, FlowBackend::Dinic);
            let b = exact_densest_with(&g, FlowBackend::PushRelabel);
            assert!(
                (a.density - b.density).abs() < 1e-9,
                "seed {seed}: dinic {} vs push-relabel {}",
                a.density,
                b.density
            );
            assert_eq!(a.set.to_vec(), b.set.to_vec());
        }
    }

    #[test]
    fn flow_call_budget_is_logarithmic() {
        let g = csr(&gen::gnp(200, 0.05, 3));
        let r = exact_densest(&g);
        // Interval (max_deg/2) / gap(1/(n(n+1))) halves per call: ≤ ~35.
        assert!(r.flow_calls <= 40, "used {} flow calls", r.flow_calls);
    }
}
