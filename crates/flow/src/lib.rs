//! # dsg-flow — exact densest subgraph via maximum flow
//!
//! The paper measures the quality of its streaming algorithm against the
//! exact optimum `ρ*(G)`, which it obtains from Charikar's LP (§6.2). The
//! LP value equals the value of Goldberg's classic max-flow formulation
//! (Goldberg 1984, referenced as \[22\] in the paper), so this crate solves
//! the same problem without an external LP solver:
//!
//! * [`dinic`] — a self-contained Dinic's max-flow solver over `f64`
//!   capacities.
//! * [`goldberg`] — the binary-search-over-densities reduction that yields
//!   the exact maximum-density subgraph of an undirected (optionally
//!   weighted) graph.
//! * [`brute`] — exhaustive-search oracles for tiny graphs (≤ ~22 nodes
//!   undirected, ≤ ~12 directed), used to validate both the flow solver
//!   and the approximation algorithms in tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod brute;
pub mod dinic;
pub mod goldberg;
pub mod push_relabel;

pub use brute::{brute_force_densest, brute_force_densest_directed};
pub use dinic::{Dinic, MinCut};
pub use goldberg::{exact_densest, exact_densest_with, ExactDensest, FlowBackend};
pub use push_relabel::PushRelabel;
