//! A typed, thread-pool MapReduce engine.
//!
//! One [`run_round`] call = one MapReduce round: every input split is
//! mapped in parallel, key/value pairs are hash-partitioned into
//! `num_reducers` shuffle buckets, each bucket is sorted by key (as a real
//! shuffle would) and reduced in parallel. Outputs come back as one
//! `Vec` per reducer, which can feed the next round as input splits —
//! exactly the chained-round structure of the paper's §5.2 dataflow.
//!
//! Determinism: partitioning uses a fixed hash (FxHash), buckets are
//! sorted by key before reduction, and values within a key preserve
//! `(split index, emission order)` — so every run of a round produces
//! identical output regardless of thread scheduling.
//!
//! ## The external (spill-to-disk) shuffle
//!
//! A real MapReduce shuffle does not hold the shuffled data in RAM: map
//! tasks sort-and-spill buffer overflows to disk and reducers merge-read
//! the sorted runs. [`ShuffleBackend::External`] reproduces exactly that
//! model: each worker's per-partition buffer is capped at a configurable
//! number of encoded bytes; a buffer over budget is sorted by
//! `(key, emission tag)` and written to a temp-file run, and reducers
//! k-way merge the runs with the in-RAM leftovers. Because the merge and
//! the in-memory sort use the same strict total order, the reducer sees
//! the identical record sequence either way — the external shuffle is
//! **bit-identical** to [`ShuffleBackend::InMemory`], which the tests
//! assert. Byte-level accounting (total shuffled bytes, spilled bytes,
//! run count) is surfaced in [`RoundStats`].
//!
//! Spilling requires a byte codec for keys and values: the [`Spillable`]
//! trait, implemented here for the primitive types and provided for job
//! types by the jobs themselves (see `densest.rs`).
//!
//! Spill files are engine-owned infrastructure in the system temp dir:
//! an I/O failure on them (disk full, fd limit, external deletion
//! mid-round) aborts the round with a panic carrying the failing step —
//! the same policy as a crashed worker thread — rather than a typed
//! error. Typed errors are reserved for *user* input (see `dsg-graph`).

use std::fs::File;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rustc_hash::FxHasher;

/// A tagged shuffle record: key and `(emission tag, value)`.
type Rec<K, V> = (K, (u64, V));

/// Fixed buffer size for spill-run writes and merge-reads (64 KiB per
/// open run — reducers hold `O(runs)` such buffers, never a whole run).
const SPILL_IO_BUFFER: usize = 64 * 1024;

/// Byte codec for spillable shuffle keys and values.
///
/// [`Spillable::encode`] must append **exactly**
/// [`Spillable::spill_bytes`] bytes, and [`Spillable::decode`] must
/// consume exactly what `encode` wrote. The same byte size feeds the
/// in-RAM budget accounting, so the numbers in [`RoundStats`] are the
/// numbers on disk.
pub trait Spillable: Sized {
    /// Exact encoded size in bytes.
    fn spill_bytes(&self) -> usize;
    /// Appends the encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reads one value back from `input`.
    fn decode(input: &mut dyn Read) -> std::io::Result<Self>;
}

macro_rules! spillable_int {
    ($($t:ty),* $(,)?) => {$(
        impl Spillable for $t {
            fn spill_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                input.read_exact(&mut b)?;
                Ok(<$t>::from_le_bytes(b))
            }
        }
    )*};
}

spillable_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Spillable for usize {
    fn spill_bytes(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok(u64::decode(input)? as usize)
    }
}

impl Spillable for f64 {
    fn spill_bytes(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Spillable for bool {
    fn spill_bytes(&self) -> usize {
        1
    }
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok(u8::decode(input)? != 0)
    }
}

impl Spillable for String {
    fn spill_bytes(&self) -> usize {
        4 + self.len()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        let len = u32::decode(input)? as usize;
        let mut bytes = vec![0u8; len];
        input.read_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl<A: Spillable, B: Spillable> Spillable for (A, B) {
    fn spill_bytes(&self) -> usize {
        self.0.spill_bytes() + self.1.spill_bytes()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Spillable, B: Spillable, C: Spillable> Spillable for (A, B, C) {
    fn spill_bytes(&self) -> usize {
        self.0.spill_bytes() + self.1.spill_bytes() + self.2.spill_bytes()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

/// How shuffle data is held between the map and reduce phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShuffleBackend {
    /// All shuffle records stay in RAM until reduced.
    #[default]
    InMemory,
    /// Hadoop-style external shuffle: a worker's per-partition buffer
    /// exceeding the budget is sorted and spilled to a temp-file run;
    /// reducers merge-read the runs. Bit-identical output to
    /// [`ShuffleBackend::InMemory`].
    ///
    /// A reducer holds one open file (+ 64 KiB buffer) per run of its
    /// partition during the merge, so runs-per-partition ≈
    /// `workers × bucket_bytes / budget` should stay below the process
    /// fd limit — budgets of a few KiB and up are fine in practice;
    /// degenerate budgets (`0` spills after every record) are for tests.
    External {
        /// Per-worker, per-partition in-RAM budget, in encoded bytes
        /// ([`Spillable::spill_bytes`]). `0` spills after every record.
        spill_budget_bytes: usize,
    },
}

impl ShuffleBackend {
    fn budget(self) -> Option<usize> {
        match self {
            ShuffleBackend::InMemory => None,
            ShuffleBackend::External { spill_budget_bytes } => Some(spill_budget_bytes),
        }
    }
}

/// Worker-pool and shuffle configuration.
#[derive(Clone, Copy, Debug)]
pub struct MapReduceConfig {
    /// Number of worker threads executing map and reduce tasks.
    pub num_workers: usize,
    /// Number of reduce partitions (the paper used 2000 on Hadoop).
    pub num_reducers: usize,
    /// Run map-side combiners where a job supports them (Hadoop's
    /// standard shuffle-volume optimization; the degree job of §5.2 is
    /// combinable because degree counting is an associative sum).
    pub combine: bool,
    /// Shuffle placement: in-RAM, or spill-to-disk above a byte budget.
    pub shuffle: ShuffleBackend,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        MapReduceConfig {
            num_workers: workers,
            num_reducers: workers * 4,
            combine: true,
            shuffle: ShuffleBackend::InMemory,
        }
    }
}

/// Accounting for one MapReduce round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundStats {
    /// Records consumed by mappers.
    pub map_input_records: u64,
    /// Key/value pairs emitted by mappers (= records shuffled).
    pub shuffle_records: u64,
    /// Encoded size of every shuffled record
    /// ([`Spillable::spill_bytes`]), whether it stayed in RAM or spilled.
    pub shuffle_bytes: u64,
    /// Bytes written to spilled shuffle runs on disk.
    pub spilled_bytes: u64,
    /// Number of sorted runs spilled to disk.
    pub spill_runs: u64,
    /// Distinct keys seen by reducers.
    pub reduce_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Wall-clock time of the round.
    pub wall_time: Duration,
}

impl RoundStats {
    /// Merges another round's counters into this one (summing times).
    pub fn absorb(&mut self, other: &RoundStats) {
        self.map_input_records += other.map_input_records;
        self.shuffle_records += other.shuffle_records;
        self.shuffle_bytes += other.shuffle_bytes;
        self.spilled_bytes += other.spilled_bytes;
        self.spill_runs += other.spill_runs;
        self.reduce_groups += other.reduce_groups;
        self.reduce_output_records += other.reduce_output_records;
        self.wall_time += other.wall_time;
    }
}

fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() % num_reducers as u64) as usize
}

fn rec_bytes<K: Spillable, V: Spillable>(rec: &Rec<K, V>) -> usize {
    rec.0.spill_bytes() + 8 + rec.1 .1.spill_bytes()
}

/// Sorts records by `(key, emission tag)` — the one total order shared
/// by the in-memory sort, the spill-run writer, and the merge reader.
/// Tags are unique per record, so the order is strict and every backend
/// enumerates the identical sequence.
fn sort_records<K: Ord, V>(records: &mut [Rec<K, V>]) {
    records.sort_by(|a, b| a.0.cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
}

static SPILL_FILE_ID: AtomicU64 = AtomicU64::new(0);

/// One sorted shuffle run on disk. The file is deleted on drop.
struct SpillRun {
    path: PathBuf,
    records: u64,
}

impl SpillRun {
    /// Writes `records` (already sorted) as a run; returns the run and
    /// the exact number of bytes written.
    fn write<K: Spillable, V: Spillable>(records: &[Rec<K, V>]) -> (SpillRun, u64) {
        let id = SPILL_FILE_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dsg-shuffle-{}-{id}.run", std::process::id()));
        let file = File::create(&path).expect("cannot create shuffle spill file");
        let mut w = BufWriter::with_capacity(SPILL_IO_BUFFER, file);
        let mut buf: Vec<u8> = Vec::new();
        let mut bytes = 0u64;
        for (k, (tag, v)) in records {
            buf.clear();
            k.encode(&mut buf);
            tag.encode(&mut buf);
            v.encode(&mut buf);
            debug_assert_eq!(
                buf.len(),
                k.spill_bytes() + 8 + v.spill_bytes(),
                "Spillable::encode must append exactly spill_bytes() bytes"
            );
            bytes += buf.len() as u64;
            w.write_all(&buf).expect("cannot write shuffle spill file");
        }
        w.flush().expect("cannot flush shuffle spill file");
        (
            SpillRun {
                path,
                records: records.len() as u64,
            },
            bytes,
        )
    }

    fn reader<K: Spillable, V: Spillable>(&self) -> RunReader<K, V> {
        let file = File::open(&self.path).expect("shuffle spill file disappeared");
        RunReader {
            reader: BufReader::with_capacity(SPILL_IO_BUFFER, file),
            remaining: self.records,
            _marker: std::marker::PhantomData,
        }
    }
}

impl Drop for SpillRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Streaming decoder over one spill run (fixed-size read buffer).
struct RunReader<K, V> {
    reader: BufReader<File>,
    remaining: u64,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K: Spillable, V: Spillable> RunReader<K, V> {
    fn next(&mut self) -> Option<Rec<K, V>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let k = K::decode(&mut self.reader).expect("corrupt shuffle spill run (key)");
        let tag = u64::decode(&mut self.reader).expect("corrupt shuffle spill run (tag)");
        let v = V::decode(&mut self.reader).expect("corrupt shuffle spill run (value)");
        Some((k, (tag, v)))
    }
}

/// One worker's shuffle output for one partition: in-RAM records (not
/// yet sorted) plus the sorted runs it spilled.
struct PartitionBuffer<K, V> {
    records: Vec<Rec<K, V>>,
    ram_bytes: usize,
    runs: Vec<SpillRun>,
    spilled_bytes: u64,
}

impl<K: Ord + Spillable, V: Spillable> PartitionBuffer<K, V> {
    fn new() -> Self {
        PartitionBuffer {
            records: Vec::new(),
            ram_bytes: 0,
            runs: Vec::new(),
            spilled_bytes: 0,
        }
    }

    fn push(&mut self, rec: Rec<K, V>, budget: Option<usize>) {
        self.ram_bytes += rec_bytes(&rec);
        self.records.push(rec);
        if let Some(b) = budget {
            if self.ram_bytes > b {
                self.spill();
            }
        }
    }

    fn spill(&mut self) {
        if self.records.is_empty() {
            return;
        }
        sort_records(&mut self.records);
        let (run, bytes) = SpillRun::write(&self.records);
        self.runs.push(run);
        self.spilled_bytes += bytes;
        self.records.clear();
        self.ram_bytes = 0;
    }
}

/// All workers' shuffle output for one partition, ready for merge-read.
struct PartitionShuffle<K, V> {
    segments: Vec<Vec<Rec<K, V>>>,
    runs: Vec<SpillRun>,
}

/// Collects per-worker buffers into per-partition shuffles, accumulating
/// the round's shuffle accounting.
fn gather_shuffle<K, V>(
    num_reducers: usize,
    worker_buckets: Vec<Vec<PartitionBuffer<K, V>>>,
    stats: &mut RoundStats,
) -> Vec<PartitionShuffle<K, V>> {
    let mut partitions: Vec<PartitionShuffle<K, V>> = (0..num_reducers)
        .map(|_| PartitionShuffle {
            segments: Vec::new(),
            runs: Vec::new(),
        })
        .collect();
    for worker in worker_buckets {
        for (p, buf) in worker.into_iter().enumerate() {
            let spilled_records: u64 = buf.runs.iter().map(|r| r.records).sum();
            stats.shuffle_records += buf.records.len() as u64 + spilled_records;
            stats.shuffle_bytes += buf.ram_bytes as u64 + buf.spilled_bytes;
            stats.spilled_bytes += buf.spilled_bytes;
            stats.spill_runs += buf.runs.len() as u64;
            if !buf.records.is_empty() {
                partitions[p].segments.push(buf.records);
            }
            partitions[p].runs.extend(buf.runs);
        }
    }
    partitions
}

/// One input to the k-way merge: a sorted in-RAM segment or a spill run.
enum MergeSource<K, V> {
    Ram(std::vec::IntoIter<Rec<K, V>>),
    Disk(RunReader<K, V>),
}

impl<K: Spillable, V: Spillable> MergeSource<K, V> {
    fn next(&mut self) -> Option<Rec<K, V>> {
        match self {
            MergeSource::Ram(it) => it.next(),
            MergeSource::Disk(r) => r.next(),
        }
    }
}

/// Min-heap entry of the k-way merge, ordered by `(key, tag)` (reversed
/// for `BinaryHeap`'s max-heap). Tags are unique, so two entries never
/// compare equal and the merge is deterministic.
struct HeapEntry<K, V> {
    rec: Rec<K, V>,
    source: usize,
}

impl<K: Ord, V> HeapEntry<K, V> {
    fn key(&self) -> (&K, u64) {
        (&self.rec.0, self.rec.1 .0)
    }
}

impl<K: Ord, V> PartialEq for HeapEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<K: Ord, V> Eq for HeapEntry<K, V> {}

impl<K: Ord, V> PartialOrd for HeapEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V> Ord for HeapEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Merge-reads one partition's sources in `(key, tag)` order via a
/// loser-heap (`O(records log sources)`), grouping by key and invoking
/// the reducer per group. Returns the partition's output and its group
/// count.
fn reduce_partition<K, V, O, R>(shuffle: PartitionShuffle<K, V>, reducer: &R) -> (Vec<O>, u64)
where
    K: Ord + Clone + Spillable,
    V: Spillable,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>),
{
    let PartitionShuffle { segments, runs } = shuffle;
    let mut sources: Vec<MergeSource<K, V>> = Vec::new();
    if runs.is_empty() {
        // Pure in-RAM partition: one concatenated sort, exactly the
        // classic shuffle.
        let mut all: Vec<Rec<K, V>> = segments.into_iter().flatten().collect();
        sort_records(&mut all);
        sources.push(MergeSource::Ram(all.into_iter()));
    } else {
        for mut seg in segments {
            sort_records(&mut seg);
            sources.push(MergeSource::Ram(seg.into_iter()));
        }
        for run in &runs {
            sources.push(MergeSource::Disk(run.reader()));
        }
    }

    let mut heap: std::collections::BinaryHeap<HeapEntry<K, V>> =
        std::collections::BinaryHeap::with_capacity(sources.len());
    for (i, s) in sources.iter_mut().enumerate() {
        if let Some(rec) = s.next() {
            heap.push(HeapEntry { rec, source: i });
        }
    }

    let mut out: Vec<O> = Vec::new();
    let mut groups = 0u64;
    let mut current_key: Option<K> = None;
    let mut values: Vec<V> = Vec::new();
    while let Some(HeapEntry { rec, source }) = heap.pop() {
        if let Some(next) = sources[source].next() {
            heap.push(HeapEntry { rec: next, source });
        }
        let (k, (_tag, v)) = rec;
        match &current_key {
            Some(ck) if *ck == k => values.push(v),
            _ => {
                if let Some(ck) = current_key.take() {
                    groups += 1;
                    reducer(&ck, &mut values.drain(..), &mut out);
                }
                values.clear();
                values.push(v);
                current_key = Some(k);
            }
        }
    }
    if let Some(ck) = current_key.take() {
        groups += 1;
        reducer(&ck, &mut values.drain(..), &mut out);
    }
    // `runs` dropped here — spill files are deleted once reduced.
    (out, groups)
}

/// Runs the reduce phase over per-partition shuffles with `num_workers`
/// threads, preserving partition order in the output.
fn reduce_phase<K, V, O, R>(
    partitions: Vec<PartitionShuffle<K, V>>,
    num_workers: usize,
    reducer: &R,
) -> (Vec<Vec<O>>, u64)
where
    K: Ord + Clone + Spillable + Send,
    V: Spillable + Send,
    O: Send,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>) + Sync,
{
    let num_partitions = partitions.len();
    let slots: Vec<Mutex<Option<PartitionShuffle<K, V>>>> = partitions
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let mut partitions_out: Vec<(usize, Vec<O>, u64)> = crate::tasks::run_tasks(
        num_workers,
        num_partitions,
        |_| Vec::new(),
        |p, mine: &mut Vec<(usize, Vec<O>, u64)>| {
            let shuffle = slots[p]
                .lock()
                .expect("partition slot poisoned")
                .take()
                .expect("partition claimed twice");
            let (out, groups) = reduce_partition(shuffle, reducer);
            mine.push((p, out, groups));
        },
    )
    .into_iter()
    .flatten()
    .collect();

    partitions_out.sort_by_key(|&(p, _, _)| p);
    let reduce_groups: u64 = partitions_out.iter().map(|&(_, _, g)| g).sum();
    let outputs: Vec<Vec<O>> = partitions_out.into_iter().map(|(_, o, _)| o).collect();
    (outputs, reduce_groups)
}

/// Executes one MapReduce round.
///
/// * `inputs` — input splits; each split is mapped as a unit by one task.
/// * `mapper` — called per record with an `emit(key, value)` closure.
/// * `reducer` — called once per distinct key with all its values (in
///   deterministic order); appends output records to `out`.
///
/// Returns the per-reducer output partitions and the round statistics.
/// With [`ShuffleBackend::External`] the shuffle spills to sorted disk
/// runs above the byte budget; the output is bit-identical either way.
pub fn run_round<I, K, V, O, M, R>(
    config: &MapReduceConfig,
    inputs: &[Vec<I>],
    mapper: M,
    reducer: R,
) -> (Vec<Vec<O>>, RoundStats)
where
    I: Sync,
    K: Hash + Ord + Clone + Send + Sync + Spillable,
    V: Clone + Send + Sync + Spillable,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>) + Sync,
{
    let start = Instant::now();
    let num_reducers = config.num_reducers.max(1);
    let num_workers = config.num_workers.max(1);
    let budget = config.shuffle.budget();

    // ---- Map phase -------------------------------------------------
    // Each worker claims splits via the task scaffold's atomic cursor
    // and emits into its own `num_reducers` buckets; tagging with
    // (split, seq) keeps value order deterministic after the merge.
    let map_input: u64 = inputs.iter().map(|s| s.len() as u64).sum();
    let worker_buckets: Vec<Vec<PartitionBuffer<K, V>>> = crate::tasks::run_tasks(
        num_workers,
        inputs.len(),
        |_| {
            (0..num_reducers)
                .map(|_| PartitionBuffer::new())
                .collect::<Vec<PartitionBuffer<K, V>>>()
        },
        |split_idx, buckets| {
            let mut seq = 0u64;
            let split_tag = (split_idx as u64) << 32;
            for record in &inputs[split_idx] {
                mapper(record, &mut |k: K, v: V| {
                    let p = partition_of(&k, num_reducers);
                    buckets[p].push((k, (split_tag | seq, v)), budget);
                    seq += 1;
                });
            }
        },
    );

    // ---- Shuffle ----------------------------------------------------
    let mut stats = RoundStats {
        map_input_records: map_input,
        ..RoundStats::default()
    };
    let partitions = gather_shuffle(num_reducers, worker_buckets, &mut stats);

    // ---- Reduce phase ----------------------------------------------
    let (outputs, reduce_groups) = reduce_phase(partitions, num_workers, &reducer);
    stats.reduce_groups = reduce_groups;
    stats.reduce_output_records = outputs.iter().map(|o| o.len() as u64).sum();
    stats.wall_time = start.elapsed();
    (outputs, stats)
}

/// Per-partition combine buffer of [`run_round_combined`]: one merged
/// value per key, with byte accounting and over-budget flushing.
struct CombineBuffer<K, V> {
    map: rustc_hash::FxHashMap<K, (u64, V)>,
    map_bytes: usize,
    runs: Vec<SpillRun>,
    spilled_bytes: u64,
}

impl<K: Hash + Ord + Clone + Spillable, V: Clone + Spillable> CombineBuffer<K, V> {
    fn new() -> Self {
        CombineBuffer {
            map: rustc_hash::FxHashMap::default(),
            map_bytes: 0,
            runs: Vec::new(),
            spilled_bytes: 0,
        }
    }

    fn upsert(&mut self, k: K, tag: u64, v: V, merge: &impl Fn(V, V) -> V, budget: Option<usize>) {
        let key_bytes = k.spill_bytes();
        match self.map.entry(k) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (old_tag, old_v) = e.get().clone();
                self.map_bytes -= old_v.spill_bytes();
                let merged = merge(old_v, v);
                self.map_bytes += merged.spill_bytes();
                *e.get_mut() = (old_tag.min(tag), merged);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.map_bytes += key_bytes + 8 + v.spill_bytes();
                e.insert((tag, v));
            }
        }
        if let Some(b) = budget {
            if self.map_bytes > b {
                self.flush();
            }
        }
    }

    /// Spills the current combined map as one sorted run. A key flushed
    /// here and seen again later ships as two partially-combined
    /// records — sound because combiners must be associative and
    /// commutative (the reducer re-merges).
    fn flush(&mut self) {
        if self.map.is_empty() {
            return;
        }
        let mut records: Vec<Rec<K, V>> = self.map.drain().collect();
        sort_records(&mut records);
        let (run, bytes) = SpillRun::write(&records);
        self.runs.push(run);
        self.spilled_bytes += bytes;
        self.map_bytes = 0;
    }

    fn into_partition_buffer(self) -> PartitionBuffer<K, V> {
        PartitionBuffer {
            records: self.map.into_iter().collect(),
            ram_bytes: self.map_bytes,
            runs: self.runs,
            spilled_bytes: self.spilled_bytes,
        }
    }
}

/// Executes one MapReduce round with a **map-side combiner**.
///
/// `merge` folds two values of the same key into one; it must be
/// associative and commutative (like Hadoop combiners, it may be applied
/// any number of times in any grouping — degree sums qualify). Each
/// worker keeps one combined value per key per partition, so the shuffle
/// carries `O(workers × distinct keys)` records instead of one per
/// emission. With [`ShuffleBackend::External`], a combine buffer over
/// the byte budget is flushed to a sorted run (so a key may reach the
/// reducer as several partially-combined values — sound for any valid
/// combiner).
pub fn run_round_combined<I, K, V, O, M, R, C>(
    config: &MapReduceConfig,
    inputs: &[Vec<I>],
    mapper: M,
    merge: C,
    reducer: R,
) -> (Vec<Vec<O>>, RoundStats)
where
    I: Sync,
    K: Hash + Ord + Clone + Send + Sync + Spillable,
    V: Clone + Send + Sync + Spillable,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>) + Sync,
    C: Fn(V, V) -> V + Sync,
{
    let start = Instant::now();
    let num_reducers = config.num_reducers.max(1);
    let num_workers = config.num_workers.max(1);
    let budget = config.shuffle.budget();

    // ---- Map + combine phase ----------------------------------------
    let map_input: u64 = inputs.iter().map(|s| s.len() as u64).sum();
    let worker_buckets: Vec<Vec<PartitionBuffer<K, V>>> = crate::tasks::run_tasks(
        num_workers,
        inputs.len(),
        |_| {
            (0..num_reducers)
                .map(|_| CombineBuffer::new())
                .collect::<Vec<CombineBuffer<K, V>>>()
        },
        |split_idx, buckets| {
            let mut seq = 0u64;
            let split_tag = (split_idx as u64) << 32;
            for record in &inputs[split_idx] {
                mapper(record, &mut |k: K, v: V| {
                    let p = partition_of(&k, num_reducers);
                    let tag = split_tag | seq;
                    seq += 1;
                    buckets[p].upsert(k, tag, v, &merge, budget);
                });
            }
        },
    )
    .into_iter()
    .map(|buckets| {
        buckets
            .into_iter()
            .map(CombineBuffer::into_partition_buffer)
            .collect()
    })
    .collect();

    // ---- Shuffle + reduce (shared with the uncombined round) ---------
    let mut stats = RoundStats {
        map_input_records: map_input,
        ..RoundStats::default()
    };
    let partitions = gather_shuffle(num_reducers, worker_buckets, &mut stats);
    let (outputs, reduce_groups) = reduce_phase(partitions, num_workers, &reducer);
    stats.reduce_groups = reduce_groups;
    stats.reduce_output_records = outputs.iter().map(|o| o.len() as u64).sum();
    stats.wall_time = start.elapsed();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MapReduceConfig {
        MapReduceConfig {
            num_workers: 4,
            num_reducers: 7,
            combine: true,
            shuffle: ShuffleBackend::InMemory,
        }
    }

    #[test]
    fn word_count() {
        let inputs: Vec<Vec<&str>> = vec![vec!["a b a", "c"], vec!["b b", "a c c c"]];
        let (outs, stats) = run_round(
            &config(),
            &inputs,
            |line: &&str, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.sum()));
            },
        );
        let mut all: Vec<(String, u64)> = outs.into_iter().flatten().collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 3),
                ("c".to_string(), 4)
            ]
        );
        assert_eq!(stats.map_input_records, 4);
        assert_eq!(stats.shuffle_records, 10);
        assert_eq!(stats.reduce_groups, 3);
        assert_eq!(stats.reduce_output_records, 3);
        // In-memory shuffle: bytes accounted, nothing spilled.
        assert!(stats.shuffle_bytes > 0);
        assert_eq!(stats.spilled_bytes, 0);
        assert_eq!(stats.spill_runs, 0);
    }

    #[test]
    fn deterministic_across_runs_and_worker_counts() {
        let inputs: Vec<Vec<u32>> = (0..10)
            .map(|i| (i * 100..(i + 1) * 100).collect())
            .collect();
        let run = |workers: usize| {
            let cfg = MapReduceConfig {
                num_workers: workers,
                num_reducers: 5,
                combine: true,
                shuffle: ShuffleBackend::InMemory,
            };
            let (outs, _) = run_round(
                &cfg,
                &inputs,
                |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 13, *x),
                |k: &u32, vs: &mut dyn Iterator<Item = u32>, out: &mut Vec<(u32, u64)>| {
                    out.push((*k, vs.map(|v| v as u64).sum()));
                },
            );
            outs
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a, b, "output must not depend on worker count");
    }

    #[test]
    fn values_arrive_in_emission_order() {
        // A single key receives values from several splits; order must be
        // (split, seq).
        let inputs: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4]];
        let (outs, _) = run_round(
            &MapReduceConfig {
                num_workers: 3,
                num_reducers: 2,
                combine: true,
                shuffle: ShuffleBackend::InMemory,
            },
            &inputs,
            |x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0u8, *x),
            |_k: &u8, vs: &mut dyn Iterator<Item = u32>, out: &mut Vec<Vec<u32>>| {
                out.push(vs.collect());
            },
        );
        let seqs: Vec<Vec<u32>> = outs.into_iter().flatten().collect();
        assert_eq!(seqs, vec![vec![1, 2, 3, 4]]);
    }

    #[test]
    fn empty_input() {
        let inputs: Vec<Vec<u32>> = vec![];
        let (outs, stats) = run_round(
            &config(),
            &inputs,
            |_: &u32, _: &mut dyn FnMut(u32, u32)| {},
            |_: &u32, _: &mut dyn Iterator<Item = u32>, _: &mut Vec<u32>| {},
        );
        assert_eq!(outs.len(), 7);
        assert!(outs.iter().all(|o| o.is_empty()));
        assert_eq!(stats.shuffle_records, 0);
    }

    #[test]
    fn combined_word_count_matches_uncombined() {
        let inputs: Vec<Vec<&str>> = vec![vec!["a b a", "c"], vec!["b b", "a c c c"]];
        let mapper = |line: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        };
        let reducer =
            |k: &String, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.sum()));
            };
        let (plain, plain_stats) = run_round(&config(), &inputs, mapper, reducer);
        let (combined, combined_stats) =
            run_round_combined(&config(), &inputs, mapper, |a, b| a + b, reducer);
        let mut a: Vec<_> = plain.into_iter().flatten().collect();
        let mut b: Vec<_> = combined.into_iter().flatten().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Combiner shrinks the shuffle: 10 raw emissions vs ≤ workers×keys.
        assert!(combined_stats.shuffle_records < plain_stats.shuffle_records);
    }

    #[test]
    fn combined_is_deterministic_across_worker_counts() {
        let inputs: Vec<Vec<u32>> = (0..8).map(|i| (i * 50..(i + 1) * 50).collect()).collect();
        let run = |workers: usize| {
            let cfg = MapReduceConfig {
                num_workers: workers,
                num_reducers: 4,
                combine: true,
                shuffle: ShuffleBackend::InMemory,
            };
            let (outs, _) = run_round_combined(
                &cfg,
                &inputs,
                |x: &u32, emit: &mut dyn FnMut(u32, u64)| emit(x % 7, *x as u64),
                |a, b| a + b,
                |k: &u32, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(u32, u64)>| {
                    out.push((*k, vs.sum()));
                },
            );
            let mut flat: Vec<_> = outs.into_iter().flatten().collect();
            flat.sort();
            flat
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn stats_absorb() {
        let mut a = RoundStats {
            map_input_records: 1,
            shuffle_records: 2,
            shuffle_bytes: 10,
            spilled_bytes: 6,
            spill_runs: 1,
            reduce_groups: 3,
            reduce_output_records: 4,
            wall_time: Duration::from_millis(5),
        };
        a.absorb(&a.clone());
        assert_eq!(a.map_input_records, 2);
        assert_eq!(a.shuffle_records, 4);
        assert_eq!(a.shuffle_bytes, 20);
        assert_eq!(a.spilled_bytes, 12);
        assert_eq!(a.spill_runs, 2);
        assert_eq!(a.wall_time, Duration::from_millis(10));
    }

    // ---- External (spill-to-disk) shuffle ---------------------------

    fn external(budget: usize) -> MapReduceConfig {
        MapReduceConfig {
            shuffle: ShuffleBackend::External {
                spill_budget_bytes: budget,
            },
            ..config()
        }
    }

    #[test]
    fn spillable_round_trips() {
        let mut buf = Vec::new();
        let rec: (String, (u64, (u32, f64))) = ("hello".to_string(), (42, (7, -1.25)));
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.spill_bytes());
        let mut r: &[u8] = &buf;
        let back = <(String, (u64, (u32, f64)))>::decode(&mut (&mut r as &mut dyn Read)).unwrap();
        assert_eq!(back, rec);
        assert!(r.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn external_shuffle_is_bit_identical_to_in_memory() {
        let inputs: Vec<Vec<u32>> = (0..12)
            .map(|i| (i * 200..(i + 1) * 200).collect())
            .collect();
        let mapper = |x: &u32, emit: &mut dyn FnMut(u32, u64)| {
            emit(x % 97, *x as u64);
            emit(x % 31, (*x as u64) << 8);
        };
        let reducer =
            |k: &u32, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(u32, Vec<u64>)>| {
                out.push((*k, vs.collect()));
            };
        let (in_mem, in_stats) = run_round(&config(), &inputs, mapper, reducer);
        // A tiny budget forces many spills; the output — including value
        // order within every key — must not change.
        for budget in [0usize, 64, 1 << 20] {
            let (ext, ext_stats) = run_round(&external(budget), &inputs, mapper, reducer);
            assert_eq!(in_mem, ext, "budget {budget}");
            assert_eq!(in_stats.shuffle_records, ext_stats.shuffle_records);
            assert_eq!(in_stats.shuffle_bytes, ext_stats.shuffle_bytes);
            if budget < 1 << 20 {
                assert!(ext_stats.spill_runs > 0, "budget {budget} must spill");
                assert!(ext_stats.spilled_bytes > 0);
            }
        }
    }

    #[test]
    fn external_shuffle_string_keys_round_trip() {
        let inputs: Vec<Vec<&str>> = vec![vec!["a b a", "c"], vec!["b b", "a c c c"]];
        let mapper = |line: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        };
        let reducer =
            |k: &String, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.sum()));
            };
        let (in_mem, _) = run_round(&config(), &inputs, mapper, reducer);
        let (ext, stats) = run_round(&external(0), &inputs, mapper, reducer);
        assert_eq!(in_mem, ext);
        assert!(stats.spill_runs > 0);
    }

    #[test]
    fn external_combined_matches_in_memory_result() {
        let inputs: Vec<Vec<u32>> = (0..8).map(|i| (i * 150..(i + 1) * 150).collect()).collect();
        let mapper = |x: &u32, emit: &mut dyn FnMut(u32, u64)| emit(x % 11, *x as u64);
        let merge = |a: u64, b: u64| a + b;
        let reducer = |k: &u32, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(u32, u64)>| {
            out.push((*k, vs.sum()));
        };
        let sorted = |outs: Vec<Vec<(u32, u64)>>| {
            let mut flat: Vec<_> = outs.into_iter().flatten().collect();
            flat.sort();
            flat
        };
        let (in_mem, _) = run_round_combined(&config(), &inputs, mapper, merge, reducer);
        let (ext, stats) = run_round_combined(&external(32), &inputs, mapper, merge, reducer);
        assert_eq!(sorted(in_mem), sorted(ext));
        assert!(stats.spill_runs > 0, "32-byte budget must flush combiners");
    }

    #[test]
    fn spill_runs_delete_their_files_on_drop() {
        // Deterministic unit-level check (a global-id range scan would
        // race with other spilling tests running in parallel): a run's
        // file exists while the run is alive, round-trips its records,
        // and is removed on drop — which is what frees disk after a
        // partition is reduced.
        let records: Vec<Rec<u32, u32>> = (0..100u32).map(|i| (i, (i as u64, i))).collect();
        let (run, bytes) = SpillRun::write(&records);
        assert_eq!(bytes, 100 * (4 + 8 + 4));
        assert_eq!(run.records, 100);
        let path = run.path.clone();
        assert!(path.exists());
        let mut reader = run.reader::<u32, u32>();
        assert_eq!(reader.next(), Some((0, (0, 0))));
        assert_eq!(reader.next(), Some((1, (1, 1))));
        drop(reader);
        drop(run);
        assert!(!path.exists(), "spill file must be deleted on drop");
    }
}
