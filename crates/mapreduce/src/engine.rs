//! A typed, thread-pool MapReduce engine.
//!
//! One [`run_round`] call = one MapReduce round: every input split is
//! mapped in parallel, key/value pairs are hash-partitioned into
//! `num_reducers` shuffle buckets, each bucket is sorted by key (as a real
//! shuffle would) and reduced in parallel. Outputs come back as one
//! `Vec` per reducer, which can feed the next round as input splits —
//! exactly the chained-round structure of the paper's §5.2 dataflow.
//!
//! Determinism: partitioning uses a fixed hash (FxHash), buckets are
//! sorted by key before reduction, and values within a key preserve
//! `(split index, emission order)` — so every run of a round produces
//! identical output regardless of thread scheduling.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rustc_hash::FxHasher;

/// Shuffle bucket: per-reducer vectors of tagged key/value pairs.
type Buckets<K, V> = Vec<Vec<(K, (u64, V))>>;

/// Worker-pool and shuffle configuration.
#[derive(Clone, Copy, Debug)]
pub struct MapReduceConfig {
    /// Number of worker threads executing map and reduce tasks.
    pub num_workers: usize,
    /// Number of reduce partitions (the paper used 2000 on Hadoop).
    pub num_reducers: usize,
    /// Run map-side combiners where a job supports them (Hadoop's
    /// standard shuffle-volume optimization; the degree job of §5.2 is
    /// combinable because degree counting is an associative sum).
    pub combine: bool,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        MapReduceConfig {
            num_workers: workers,
            num_reducers: workers * 4,
            combine: true,
        }
    }
}

/// Accounting for one MapReduce round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundStats {
    /// Records consumed by mappers.
    pub map_input_records: u64,
    /// Key/value pairs emitted by mappers (= records shuffled).
    pub shuffle_records: u64,
    /// Distinct keys seen by reducers.
    pub reduce_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Wall-clock time of the round.
    pub wall_time: Duration,
}

impl RoundStats {
    /// Merges another round's counters into this one (summing times).
    pub fn absorb(&mut self, other: &RoundStats) {
        self.map_input_records += other.map_input_records;
        self.shuffle_records += other.shuffle_records;
        self.reduce_groups += other.reduce_groups;
        self.reduce_output_records += other.reduce_output_records;
        self.wall_time += other.wall_time;
    }
}

fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() % num_reducers as u64) as usize
}

/// Executes one MapReduce round.
///
/// * `inputs` — input splits; each split is mapped as a unit by one task.
/// * `mapper` — called per record with an `emit(key, value)` closure.
/// * `reducer` — called once per distinct key with all its values (in
///   deterministic order); appends output records to `out`.
///
/// Returns the per-reducer output partitions and the round statistics.
pub fn run_round<I, K, V, O, M, R>(
    config: &MapReduceConfig,
    inputs: &[Vec<I>],
    mapper: M,
    reducer: R,
) -> (Vec<Vec<O>>, RoundStats)
where
    I: Sync,
    K: Hash + Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>) + Sync,
{
    let start = Instant::now();
    let num_reducers = config.num_reducers.max(1);
    let num_workers = config.num_workers.max(1);

    // ---- Map phase -------------------------------------------------
    // Each worker claims splits via an atomic cursor and emits into its
    // own `num_reducers` buckets; tagging with (split, seq) keeps value
    // order deterministic after the merge.
    let cursor = AtomicUsize::new(0);
    let map_input: u64 = inputs.iter().map(|s| s.len() as u64).sum();
    let mut worker_buckets: Vec<Buckets<K, V>> = Vec::with_capacity(num_workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let cursor = &cursor;
            let mapper = &mapper;
            handles.push(scope.spawn(move || {
                let mut buckets: Buckets<K, V> = (0..num_reducers).map(|_| Vec::new()).collect();
                loop {
                    let split_idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if split_idx >= inputs.len() {
                        break;
                    }
                    let mut seq = 0u64;
                    let split_tag = (split_idx as u64) << 32;
                    for record in &inputs[split_idx] {
                        mapper(record, &mut |k: K, v: V| {
                            let p = partition_of(&k, num_reducers);
                            buckets[p].push((k, (split_tag | seq, v)));
                            seq += 1;
                        });
                    }
                }
                buckets
            }));
        }
        for h in handles {
            worker_buckets.push(h.join().expect("map worker panicked"));
        }
    });

    // ---- Shuffle ----------------------------------------------------
    let mut shuffle: Vec<Vec<(K, (u64, V))>> = (0..num_reducers).map(|_| Vec::new()).collect();
    let mut shuffle_records = 0u64;
    for worker in worker_buckets {
        for (p, mut bucket) in worker.into_iter().enumerate() {
            shuffle_records += bucket.len() as u64;
            shuffle[p].append(&mut bucket);
        }
    }

    // ---- Reduce phase ----------------------------------------------
    let reduce_cursor = AtomicUsize::new(0);
    let shuffle_ref: Vec<_> = shuffle.into_iter().collect();
    let mut partitions_out: Vec<(usize, Vec<O>, u64)> = Vec::with_capacity(num_reducers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let reduce_cursor = &reduce_cursor;
            let reducer = &reducer;
            let shuffle_ref = &shuffle_ref;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, Vec<O>, u64)> = Vec::new();
                loop {
                    let p = reduce_cursor.fetch_add(1, Ordering::Relaxed);
                    if p >= shuffle_ref.len() {
                        break;
                    }
                    // Sort by (key, emission tag) — deterministic grouping.
                    let mut bucket: Vec<&(K, (u64, V))> = shuffle_ref[p].iter().collect();
                    bucket.sort_by(|a, b| a.0.cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
                    let mut out = Vec::new();
                    let mut groups = 0u64;
                    let mut i = 0usize;
                    while i < bucket.len() {
                        let key = &bucket[i].0;
                        let mut j = i;
                        while j < bucket.len() && bucket[j].0 == *key {
                            j += 1;
                        }
                        groups += 1;
                        let mut it = bucket[i..j].iter().map(|kv| kv.1 .1.clone());
                        reducer(key, &mut it, &mut out);
                        i = j;
                    }
                    mine.push((p, out, groups));
                }
                mine
            }));
        }
        for h in handles {
            partitions_out.append(&mut h.join().expect("reduce worker panicked"));
        }
    });

    partitions_out.sort_by_key(|&(p, _, _)| p);
    let reduce_groups: u64 = partitions_out.iter().map(|&(_, _, g)| g).sum();
    let outputs: Vec<Vec<O>> = partitions_out.into_iter().map(|(_, o, _)| o).collect();
    let reduce_output_records: u64 = outputs.iter().map(|o| o.len() as u64).sum();

    let stats = RoundStats {
        map_input_records: map_input,
        shuffle_records,
        reduce_groups,
        reduce_output_records,
        wall_time: start.elapsed(),
    };
    (outputs, stats)
}

/// Executes one MapReduce round with a **map-side combiner**.
///
/// `merge` folds two values of the same key into one; it must be
/// associative and commutative (like Hadoop combiners, it may be applied
/// any number of times in any grouping — degree sums qualify). Each
/// worker keeps one combined value per key per partition, so the shuffle
/// carries `O(workers × distinct keys)` records instead of one per
/// emission.
pub fn run_round_combined<I, K, V, O, M, R, C>(
    config: &MapReduceConfig,
    inputs: &[Vec<I>],
    mapper: M,
    merge: C,
    reducer: R,
) -> (Vec<Vec<O>>, RoundStats)
where
    I: Sync,
    K: Hash + Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &mut dyn Iterator<Item = V>, &mut Vec<O>) + Sync,
    C: Fn(V, V) -> V + Sync,
{
    let start = Instant::now();
    let num_reducers = config.num_reducers.max(1);
    let num_workers = config.num_workers.max(1);

    // ---- Map + combine phase ----------------------------------------
    let cursor = AtomicUsize::new(0);
    let map_input: u64 = inputs.iter().map(|s| s.len() as u64).sum();
    type Combined<K, V> = rustc_hash::FxHashMap<K, (u64, V)>;
    let mut worker_buckets: Vec<Vec<Combined<K, V>>> = Vec::with_capacity(num_workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let cursor = &cursor;
            let mapper = &mapper;
            let merge = &merge;
            handles.push(scope.spawn(move || {
                let mut buckets: Vec<Combined<K, V>> =
                    (0..num_reducers).map(|_| Combined::default()).collect();
                loop {
                    let split_idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if split_idx >= inputs.len() {
                        break;
                    }
                    let mut seq = 0u64;
                    let split_tag = (split_idx as u64) << 32;
                    for record in &inputs[split_idx] {
                        mapper(record, &mut |k: K, v: V| {
                            let p = partition_of(&k, num_reducers);
                            let tag = split_tag | seq;
                            seq += 1;
                            match buckets[p].entry(k) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    let (old_tag, old_v) = e.get().clone();
                                    *e.get_mut() = (old_tag.min(tag), merge(old_v, v));
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert((tag, v));
                                }
                            }
                        });
                    }
                }
                buckets
            }));
        }
        for h in handles {
            worker_buckets.push(h.join().expect("map worker panicked"));
        }
    });

    // ---- Shuffle (combined records) ----------------------------------
    let mut shuffle: Vec<Vec<(K, (u64, V))>> = (0..num_reducers).map(|_| Vec::new()).collect();
    let mut shuffle_records = 0u64;
    for worker in worker_buckets {
        for (p, bucket) in worker.into_iter().enumerate() {
            shuffle_records += bucket.len() as u64;
            shuffle[p].extend(bucket);
        }
    }

    // ---- Reduce phase (same as the uncombined round) -----------------
    let reduce_cursor = AtomicUsize::new(0);
    let shuffle_ref: Vec<_> = shuffle.into_iter().collect();
    let mut partitions_out: Vec<(usize, Vec<O>, u64)> = Vec::with_capacity(num_reducers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let reduce_cursor = &reduce_cursor;
            let reducer = &reducer;
            let shuffle_ref = &shuffle_ref;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, Vec<O>, u64)> = Vec::new();
                loop {
                    let p = reduce_cursor.fetch_add(1, Ordering::Relaxed);
                    if p >= shuffle_ref.len() {
                        break;
                    }
                    let mut bucket: Vec<&(K, (u64, V))> = shuffle_ref[p].iter().collect();
                    bucket.sort_by(|a, b| a.0.cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
                    let mut out = Vec::new();
                    let mut groups = 0u64;
                    let mut i = 0usize;
                    while i < bucket.len() {
                        let key = &bucket[i].0;
                        let mut j = i;
                        while j < bucket.len() && bucket[j].0 == *key {
                            j += 1;
                        }
                        groups += 1;
                        let mut it = bucket[i..j].iter().map(|kv| kv.1 .1.clone());
                        reducer(key, &mut it, &mut out);
                        i = j;
                    }
                    mine.push((p, out, groups));
                }
                mine
            }));
        }
        for h in handles {
            partitions_out.append(&mut h.join().expect("reduce worker panicked"));
        }
    });

    partitions_out.sort_by_key(|&(p, _, _)| p);
    let reduce_groups: u64 = partitions_out.iter().map(|&(_, _, g)| g).sum();
    let outputs: Vec<Vec<O>> = partitions_out.into_iter().map(|(_, o, _)| o).collect();
    let reduce_output_records: u64 = outputs.iter().map(|o| o.len() as u64).sum();

    let stats = RoundStats {
        map_input_records: map_input,
        shuffle_records,
        reduce_groups,
        reduce_output_records,
        wall_time: start.elapsed(),
    };
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MapReduceConfig {
        MapReduceConfig {
            num_workers: 4,
            num_reducers: 7,
            combine: true,
        }
    }

    #[test]
    fn word_count() {
        let inputs: Vec<Vec<&str>> = vec![vec!["a b a", "c"], vec!["b b", "a c c c"]];
        let (outs, stats) = run_round(
            &config(),
            &inputs,
            |line: &&str, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.sum()));
            },
        );
        let mut all: Vec<(String, u64)> = outs.into_iter().flatten().collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 3),
                ("c".to_string(), 4)
            ]
        );
        assert_eq!(stats.map_input_records, 4);
        assert_eq!(stats.shuffle_records, 10);
        assert_eq!(stats.reduce_groups, 3);
        assert_eq!(stats.reduce_output_records, 3);
    }

    #[test]
    fn deterministic_across_runs_and_worker_counts() {
        let inputs: Vec<Vec<u32>> = (0..10)
            .map(|i| (i * 100..(i + 1) * 100).collect())
            .collect();
        let run = |workers: usize| {
            let cfg = MapReduceConfig {
                num_workers: workers,
                num_reducers: 5,
                combine: true,
            };
            let (outs, _) = run_round(
                &cfg,
                &inputs,
                |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 13, *x),
                |k: &u32, vs: &mut dyn Iterator<Item = u32>, out: &mut Vec<(u32, u64)>| {
                    out.push((*k, vs.map(|v| v as u64).sum()));
                },
            );
            outs
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a, b, "output must not depend on worker count");
    }

    #[test]
    fn values_arrive_in_emission_order() {
        // A single key receives values from several splits; order must be
        // (split, seq).
        let inputs: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4]];
        let (outs, _) = run_round(
            &MapReduceConfig {
                num_workers: 3,
                num_reducers: 2,
                combine: true,
            },
            &inputs,
            |x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0u8, *x),
            |_k: &u8, vs: &mut dyn Iterator<Item = u32>, out: &mut Vec<Vec<u32>>| {
                out.push(vs.collect());
            },
        );
        let seqs: Vec<Vec<u32>> = outs.into_iter().flatten().collect();
        assert_eq!(seqs, vec![vec![1, 2, 3, 4]]);
    }

    #[test]
    fn empty_input() {
        let inputs: Vec<Vec<u32>> = vec![];
        let (outs, stats) = run_round(
            &config(),
            &inputs,
            |_: &u32, _: &mut dyn FnMut(u32, u32)| {},
            |_: &u32, _: &mut dyn Iterator<Item = u32>, _: &mut Vec<u32>| {},
        );
        assert_eq!(outs.len(), 7);
        assert!(outs.iter().all(|o| o.is_empty()));
        assert_eq!(stats.shuffle_records, 0);
    }

    #[test]
    fn combined_word_count_matches_uncombined() {
        let inputs: Vec<Vec<&str>> = vec![vec!["a b a", "c"], vec!["b b", "a c c c"]];
        let mapper = |line: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        };
        let reducer =
            |k: &String, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.sum()));
            };
        let (plain, plain_stats) = run_round(&config(), &inputs, mapper, reducer);
        let (combined, combined_stats) =
            run_round_combined(&config(), &inputs, mapper, |a, b| a + b, reducer);
        let mut a: Vec<_> = plain.into_iter().flatten().collect();
        let mut b: Vec<_> = combined.into_iter().flatten().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Combiner shrinks the shuffle: 10 raw emissions vs ≤ workers×keys.
        assert!(combined_stats.shuffle_records < plain_stats.shuffle_records);
    }

    #[test]
    fn combined_is_deterministic_across_worker_counts() {
        let inputs: Vec<Vec<u32>> = (0..8).map(|i| (i * 50..(i + 1) * 50).collect()).collect();
        let run = |workers: usize| {
            let cfg = MapReduceConfig {
                num_workers: workers,
                num_reducers: 4,
                combine: true,
            };
            let (outs, _) = run_round_combined(
                &cfg,
                &inputs,
                |x: &u32, emit: &mut dyn FnMut(u32, u64)| emit(x % 7, *x as u64),
                |a, b| a + b,
                |k: &u32, vs: &mut dyn Iterator<Item = u64>, out: &mut Vec<(u32, u64)>| {
                    out.push((*k, vs.sum()));
                },
            );
            let mut flat: Vec<_> = outs.into_iter().flatten().collect();
            flat.sort();
            flat
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn stats_absorb() {
        let mut a = RoundStats {
            map_input_records: 1,
            shuffle_records: 2,
            reduce_groups: 3,
            reduce_output_records: 4,
            wall_time: Duration::from_millis(5),
        };
        a.absorb(&a.clone());
        assert_eq!(a.map_input_records, 2);
        assert_eq!(a.shuffle_records, 4);
        assert_eq!(a.wall_time, Duration::from_millis(10));
    }
}
