//! # dsg-mapreduce — a MapReduce simulator and the MapReduce realization
//! of the densest-subgraph algorithms (§5.2 of the paper)
//!
//! The paper ran its algorithms on Hadoop with 2000 mappers/reducers over
//! graphs of up to 6.1B edges (Figure 6.7). That substrate is simulated
//! here by a faithful thread-pool MapReduce engine:
//!
//! * [`engine`] — typed `map -> shuffle -> reduce` rounds over partitioned
//!   input, executed by a configurable worker pool (std scoped
//!   threads), with per-round accounting of records, encoded shuffle
//!   bytes, spilled bytes/runs, and wall-clock time. The shuffle can run
//!   fully in RAM or spill sorted runs to disk above a byte budget
//!   ([`engine::ShuffleBackend`]) with bit-identical output — the
//!   Hadoop-style external shuffle that makes out-of-core rounds real.
//! * [`tasks`] — the worker-claim scaffold the engine's phases run on
//!   (and the sharded server's spill path schedules onto): scoped
//!   threads claiming task indices from one atomic cursor.
//! * [`densest`] — the paper's §5.2 dataflow: per-pass (1) a degree /
//!   density job, and (2) the two-round node-removal job (mark with `$`
//!   tombstones, pivot on each endpoint), looped until the node set
//!   drains. Undirected (Algorithm 1) and directed (Algorithm 3) drivers.
//!
//! The engine preserves the *logical* dataflow — what is keyed, what is
//! shuffled, how many rounds — so per-pass cost scales with surviving
//! edges exactly as in Figure 6.7; only absolute wall-clock differs from
//! Hadoop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod densest;
pub mod engine;
pub mod tasks;

pub use densest::{
    mr_densest_directed, mr_densest_undirected, MrDirectedResult, MrPassReport, MrUndirectedResult,
};
pub use engine::{MapReduceConfig, RoundStats, ShuffleBackend, Spillable};
pub use tasks::run_tasks;
