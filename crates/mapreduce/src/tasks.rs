//! The worker-claim task scaffold every phase of the MapReduce engine
//! runs on: N scoped OS threads claim task indices from one shared
//! atomic cursor and fold each claimed task into a per-worker
//! accumulator.
//!
//! Extracting the pattern (it appeared verbatim in the map, combined
//! map, and reduce phases) makes `dsg-mapreduce` usable as a general
//! execution substrate — the sharded server's spill path schedules a
//! promoted query's peeling passes over exactly this scaffold — and
//! keeps the claim discipline in one audited place: the cursor is the
//! only shared mutable state, so workers never contend on anything
//! else.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `num_tasks` tasks on `num_workers.max(1)` scoped threads and
/// returns the per-worker accumulators in worker order.
///
/// Each worker claims task indices in submission order from one shared
/// atomic cursor — dynamic load balancing with no work queue: a long
/// task delays only its own worker, never the claim path. `init(w)`
/// builds worker `w`'s accumulator; `work(t, acc)` folds task `t` into
/// it.
///
/// Determinism contract: *which* worker runs a task is scheduling-
/// dependent, so callers must make their fold outputs order-independent
/// across workers — the map phases tag every emission with the split
/// index and re-sort in the shuffle, and the reduce phase carries each
/// partition's index through its accumulator.
pub fn run_tasks<A, I, F>(num_workers: usize, num_tasks: usize, init: I, work: F) -> Vec<A>
where
    A: Send,
    I: Fn(usize) -> A + Sync,
    F: Fn(usize, &mut A) + Sync,
{
    let num_workers = num_workers.max(1);
    let cursor = AtomicUsize::new(0);
    let mut accs = Vec::with_capacity(num_workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            let cursor = &cursor;
            let init = &init;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut acc = init(w);
                loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= num_tasks {
                        break;
                    }
                    work(t, &mut acc);
                }
                acc
            }));
        }
        for h in handles {
            accs.push(h.join().expect("task worker panicked"));
        }
    });
    accs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 257;
        let accs = run_tasks(4, n, |_| Vec::new(), |t, acc: &mut Vec<usize>| acc.push(t));
        assert_eq!(accs.len(), 4);
        let mut all: Vec<usize> = accs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_is_clamped_and_zero_tasks_is_empty() {
        let accs = run_tasks(0, 3, |_| 0usize, |_, acc| *acc += 1);
        assert_eq!(accs, vec![3]);
        let accs = run_tasks(3, 0, |w| w, |_, _| unreachable!("no tasks"));
        assert_eq!(accs, vec![0, 1, 2]);
    }

    #[test]
    fn accumulators_come_back_in_worker_order() {
        let accs = run_tasks(5, 0, |w| w * 10, |_, _| {});
        assert_eq!(accs, vec![0, 10, 20, 30, 40]);
    }
}
