//! The MapReduce realization of the densest-subgraph algorithms (§5.2).
//!
//! State lives in two distributed datasets: a **node file** (one record
//! per live node) and an **edge file** (one record per live edge). Each
//! pass of Algorithm 1 runs three MapReduce rounds, exactly as sketched in
//! the paper:
//!
//! 1. **Degree & mark** — every edge emits `⟨u; +1⟩` and `⟨v; +1⟩`, every
//!    node record emits `⟨u; node⟩`; the reducer counts a node's incident
//!    live edges and, given the pass threshold `2(1+ε)ρ(S)`, either
//!    re-emits the node (survivor) or emits a `$` tombstone (removed).
//! 2. **Removal, pivot on first endpoint** — edges key on `u`, tombstones
//!    mark removed `u`s; the reducer drops all edges of marked nodes.
//! 3. **Removal, pivot on second endpoint** — the same, keyed on `v`.
//!
//! The density `ρ(S) = |E|/|S|` needs only the dataset sizes (a holistic
//! sum the driver reads off the round statistics). The directed variant
//! (Algorithm 3) removes from one side per pass, so it needs one fewer
//! removal round.

use std::time::Duration;

use dsg_graph::{density, NodeSet};

use std::io::Read;

use crate::engine::{run_round, run_round_combined, MapReduceConfig, RoundStats, Spillable};

/// Per-pass accounting of the MapReduce driver (Figure 6.7's series).
#[derive(Clone, Debug)]
pub struct MrPassReport {
    /// 1-based pass number.
    pub pass: u32,
    /// Live nodes at the start of the pass.
    pub nodes: u64,
    /// Live edges at the start of the pass.
    pub edges: u64,
    /// Density at the start of the pass.
    pub density: f64,
    /// Wall-clock time of all MapReduce rounds in this pass.
    pub wall_time: Duration,
    /// Aggregated round statistics (3 rounds undirected, 2 directed).
    pub rounds: RoundStats,
}

/// Result of the undirected MapReduce driver.
#[derive(Clone, Debug)]
pub struct MrUndirectedResult {
    /// The best (densest) intermediate node set.
    pub best_set: NodeSet,
    /// Its density.
    pub best_density: f64,
    /// Number of passes (each pass = 3 MapReduce rounds).
    pub passes: u32,
    /// Per-pass reports.
    pub reports: Vec<MrPassReport>,
}

/// Input record of the degree-and-mark round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MarkRec {
    /// A live-node record for node `u`.
    Node(u32),
    /// A live edge `(u, v)` (contributes to both endpoints' degrees).
    Edge(u32, u32),
    /// One incident arc at a single pivot endpoint (directed rounds).
    HalfEdge(u32),
}

/// Value type of the degree-and-mark round: a *combinable* aggregate
/// (degree counting is an associative, commutative sum, so Hadoop-style
/// map-side combining applies when [`MapReduceConfig::combine`] is set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MarkAgg {
    /// A live-node record was seen for this key.
    node: bool,
    /// Number of incident live edges seen for this key.
    deg: u64,
}

impl MarkAgg {
    const NODE: MarkAgg = MarkAgg { node: true, deg: 0 };
    const INC: MarkAgg = MarkAgg {
        node: false,
        deg: 1,
    };

    fn merge(a: MarkAgg, b: MarkAgg) -> MarkAgg {
        MarkAgg {
            node: a.node || b.node,
            deg: a.deg + b.deg,
        }
    }
}

impl Spillable for MarkAgg {
    fn spill_bytes(&self) -> usize {
        9
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.deg.encode(out);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok(MarkAgg {
            node: bool::decode(input)?,
            deg: u64::decode(input)?,
        })
    }
}

/// Runs the degree-and-mark round, with or without map-side combining.
fn run_mark_round(
    config: &MapReduceConfig,
    inputs: &[Vec<MarkRec>],
    threshold: f64,
) -> (Vec<Vec<MarkOut>>, RoundStats) {
    let mapper = |rec: &MarkRec, emit: &mut dyn FnMut(u32, MarkAgg)| match *rec {
        MarkRec::Node(u) => emit(u, MarkAgg::NODE),
        MarkRec::Edge(u, v) => {
            emit(u, MarkAgg::INC);
            emit(v, MarkAgg::INC);
        }
        MarkRec::HalfEdge(u) => emit(u, MarkAgg::INC),
    };
    let reducer = move |&u: &u32, vs: &mut dyn Iterator<Item = MarkAgg>, out: &mut Vec<MarkOut>| {
        let agg = vs.fold(
            MarkAgg {
                node: false,
                deg: 0,
            },
            MarkAgg::merge,
        );
        // Edges of already-removed endpoints cannot appear (they were
        // purged in the previous pass), so every increment belongs to a
        // live node.
        if agg.node {
            if (agg.deg as f64) <= threshold {
                out.push(MarkOut::Removed(u));
            } else {
                out.push(MarkOut::Survivor(u));
            }
        }
    };
    if config.combine {
        run_round_combined(config, inputs, mapper, MarkAgg::merge, reducer)
    } else {
        run_round(config, inputs, mapper, reducer)
    }
}

/// Value type of the removal rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RemVal {
    /// A live edge `(pivot, other)`; carries the other endpoint.
    Edge(u32),
    /// The `$` tombstone of §5.2.
    Tomb,
}

impl Spillable for RemVal {
    fn spill_bytes(&self) -> usize {
        match self {
            RemVal::Edge(_) => 5,
            RemVal::Tomb => 1,
        }
    }
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RemVal::Edge(o) => {
                out.push(1);
                o.encode(out);
            }
            RemVal::Tomb => out.push(0),
        }
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        match u8::decode(input)? {
            0 => Ok(RemVal::Tomb),
            1 => Ok(RemVal::Edge(u32::decode(input)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad RemVal tag {other}"),
            )),
        }
    }
}

/// Output of the degree-and-mark reducer.
#[derive(Clone, Debug, PartialEq, Eq)]
enum MarkOut {
    Survivor(u32),
    Removed(u32),
}

/// Runs Algorithm 1 on the MapReduce simulator.
///
/// `edge_splits` is the partitioned edge file (undirected edges, each
/// stored once); `num_nodes` bounds the node ids. Produces the same
/// sequence of sets as the streaming implementation.
pub fn mr_densest_undirected(
    config: &MapReduceConfig,
    num_nodes: u32,
    edge_splits: Vec<Vec<(u32, u32)>>,
    epsilon: f64,
) -> MrUndirectedResult {
    assert!(epsilon >= 0.0);
    // Node file: initially every node, split evenly.
    let mut node_splits: Vec<Vec<u32>> =
        split_evenly((0..num_nodes).collect(), config.num_reducers);
    let mut edge_splits: Vec<Vec<(u32, u32)>> = edge_splits
        .into_iter()
        .map(|s| s.into_iter().filter(|&(u, v)| u != v).collect())
        .collect();

    let mut best_set = NodeSet::full(num_nodes as usize);
    let mut best_density = 0.0f64;
    let mut reports = Vec::new();
    let mut pass = 0u32;

    loop {
        let live_nodes: u64 = node_splits.iter().map(|s| s.len() as u64).sum();
        if live_nodes == 0 {
            break;
        }
        pass += 1;
        let live_edges: u64 = edge_splits.iter().map(|s| s.len() as u64).sum();
        let rho = density::undirected(live_edges as f64, live_nodes as usize);
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_set =
                NodeSet::from_iter(num_nodes as usize, node_splits.iter().flatten().copied());
        }
        let threshold = density::undirected_threshold(rho, epsilon);

        // ---- Round 1: degree & mark --------------------------------
        // Inputs: node records and edge records, as separate split sets.
        let mark_inputs: Vec<Vec<MarkRec>> = node_splits
            .iter()
            .map(|s| s.iter().map(|&u| MarkRec::Node(u)).collect())
            .chain(
                edge_splits
                    .iter()
                    .map(|s| s.iter().map(|&(u, v)| MarkRec::Edge(u, v)).collect()),
            )
            .collect();
        let (mark_out, r1) = run_mark_round(config, &mark_inputs, threshold);

        let mut new_node_splits: Vec<Vec<u32>> = Vec::with_capacity(mark_out.len());
        let mut removed_splits: Vec<Vec<u32>> = Vec::with_capacity(mark_out.len());
        for part in &mark_out {
            let mut ns = Vec::new();
            let mut rs = Vec::new();
            for rec in part {
                match rec {
                    MarkOut::Survivor(u) => ns.push(*u),
                    MarkOut::Removed(u) => rs.push(*u),
                }
            }
            new_node_splits.push(ns);
            removed_splits.push(rs);
        }

        // ---- Rounds 2 & 3: purge edges of removed nodes ------------
        let (edges_after_u, r2) = purge_edges(config, &edge_splits, &removed_splits, true);
        let (edges_after_uv, r3) = purge_edges(config, &edges_after_u, &removed_splits, false);

        let mut rounds = r1;
        rounds.absorb(&r2);
        rounds.absorb(&r3);
        reports.push(MrPassReport {
            pass,
            nodes: live_nodes,
            edges: live_edges,
            density: rho,
            wall_time: rounds.wall_time,
            rounds,
        });

        node_splits = new_node_splits;
        edge_splits = edges_after_uv;
    }

    MrUndirectedResult {
        best_set,
        best_density,
        passes: pass,
        reports,
    }
}

/// One §5.2 removal round: drops every edge whose pivot endpoint is
/// tombstoned. `pivot_first` selects which endpoint keys the shuffle.
fn purge_edges(
    config: &MapReduceConfig,
    edge_splits: &[Vec<(u32, u32)>],
    removed_splits: &[Vec<u32>],
    pivot_first: bool,
) -> (Vec<Vec<(u32, u32)>>, RoundStats) {
    let inputs: Vec<Vec<(u32, RemVal)>> = edge_splits
        .iter()
        .map(|s| {
            s.iter()
                .map(|&(u, v)| {
                    if pivot_first {
                        (u, RemVal::Edge(v))
                    } else {
                        (v, RemVal::Edge(u))
                    }
                })
                .collect()
        })
        .chain(
            removed_splits
                .iter()
                .map(|s| s.iter().map(|&u| (u, RemVal::Tomb)).collect()),
        )
        .collect();
    let (out, stats) = run_round(
        config,
        &inputs,
        |rec: &(u32, RemVal), emit: &mut dyn FnMut(u32, RemVal)| emit(rec.0, rec.1.clone()),
        move |&pivot: &u32, vs: &mut dyn Iterator<Item = RemVal>, out: &mut Vec<(u32, u32)>| {
            let mut others: Vec<u32> = Vec::new();
            let mut tomb = false;
            for v in vs {
                match v {
                    RemVal::Tomb => tomb = true,
                    RemVal::Edge(o) => others.push(o),
                }
            }
            if !tomb {
                for o in others {
                    // Restore original orientation.
                    if pivot_first {
                        out.push((pivot, o));
                    } else {
                        out.push((o, pivot));
                    }
                }
            }
        },
    );
    (out, stats)
}

/// Result of the directed MapReduce driver.
#[derive(Clone, Debug)]
pub struct MrDirectedResult {
    /// Best source side `S̃`.
    pub best_s: NodeSet,
    /// Best target side `T̃`.
    pub best_t: NodeSet,
    /// `ρ(S̃, T̃)`.
    pub best_density: f64,
    /// Number of passes (each pass = 2 MapReduce rounds).
    pub passes: u32,
    /// Per-pass reports.
    pub reports: Vec<MrPassReport>,
}

/// Directed degree record side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Side {
    Out,
    In,
}

impl Spillable for Side {
    fn spill_bytes(&self) -> usize {
        1
    }
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(matches!(self, Side::In) as u8);
    }
    fn decode(input: &mut dyn Read) -> std::io::Result<Self> {
        Ok(if u8::decode(input)? != 0 {
            Side::In
        } else {
            Side::Out
        })
    }
}

/// Runs Algorithm 3 (fixed ratio `c`) on the MapReduce simulator.
///
/// The live edge file always equals `E(S, T)`; removing nodes from one
/// side therefore needs a single removal round pivoting on that side's
/// endpoint.
pub fn mr_densest_directed(
    config: &MapReduceConfig,
    num_nodes: u32,
    edge_splits: Vec<Vec<(u32, u32)>>,
    c: f64,
    epsilon: f64,
) -> MrDirectedResult {
    assert!(c > 0.0 && epsilon >= 0.0);
    let mut s_nodes: Vec<Vec<u32>> = split_evenly((0..num_nodes).collect(), config.num_reducers);
    let mut t_nodes: Vec<Vec<u32>> = s_nodes.clone();
    let mut edge_splits = edge_splits;

    let mut best_s = NodeSet::full(num_nodes as usize);
    let mut best_t = NodeSet::full(num_nodes as usize);
    let mut best_density = 0.0f64;
    let mut reports = Vec::new();
    let mut pass = 0u32;

    loop {
        let s_count: u64 = s_nodes.iter().map(|s| s.len() as u64).sum();
        let t_count: u64 = t_nodes.iter().map(|s| s.len() as u64).sum();
        if s_count == 0 || t_count == 0 {
            break;
        }
        pass += 1;
        let live_edges: u64 = edge_splits.iter().map(|s| s.len() as u64).sum();
        let rho = density::directed(live_edges as f64, s_count as usize, t_count as usize);
        if rho > best_density || pass == 1 {
            best_density = rho;
            best_s = NodeSet::from_iter(num_nodes as usize, s_nodes.iter().flatten().copied());
            best_t = NodeSet::from_iter(num_nodes as usize, t_nodes.iter().flatten().copied());
        }

        let from_s = s_count as f64 / t_count as f64 >= c;
        let side = if from_s { Side::Out } else { Side::In };
        let side_count = if from_s { s_count } else { t_count };
        let threshold =
            density::directed_threshold(live_edges as f64, side_count as usize, epsilon);

        // ---- Round 1: degree & mark on the chosen side -------------
        // The key carries the side so out- and in-degree streams cannot
        // collide even when the same node is live on both sides.
        let side_nodes = if from_s { &s_nodes } else { &t_nodes };
        let mark_inputs: Vec<Vec<MarkRec>> = side_nodes
            .iter()
            .map(|s| s.iter().map(|&u| MarkRec::Node(u)).collect())
            .chain(edge_splits.iter().map(|s| {
                s.iter()
                    .map(|&(u, v)| {
                        let pivot = if from_s { u } else { v };
                        // Encode "one incident arc at `pivot`" as a
                        // degenerate edge record counted once.
                        MarkRec::HalfEdge(pivot)
                    })
                    .collect()
            }))
            .collect();
        let mapper = |rec: &MarkRec, emit: &mut dyn FnMut((u32, Side), MarkAgg)| match *rec {
            MarkRec::Node(u) => emit((u, side), MarkAgg::NODE),
            MarkRec::HalfEdge(u) => emit((u, side), MarkAgg::INC),
            MarkRec::Edge(..) => unreachable!("directed mark round uses half-edge records"),
        };
        let reducer = |&(u, _): &(u32, Side),
                       vs: &mut dyn Iterator<Item = MarkAgg>,
                       out: &mut Vec<MarkOut>| {
            let agg = vs.fold(
                MarkAgg {
                    node: false,
                    deg: 0,
                },
                MarkAgg::merge,
            );
            if agg.node {
                if (agg.deg as f64) <= threshold {
                    out.push(MarkOut::Removed(u));
                } else {
                    out.push(MarkOut::Survivor(u));
                }
            }
        };
        let (mark_out, r1) = if config.combine {
            run_round_combined(config, &mark_inputs, mapper, MarkAgg::merge, reducer)
        } else {
            run_round(config, &mark_inputs, mapper, reducer)
        };
        let mut survivors: Vec<Vec<u32>> = Vec::with_capacity(mark_out.len());
        let mut removed: Vec<Vec<u32>> = Vec::with_capacity(mark_out.len());
        for part in &mark_out {
            let mut ns = Vec::new();
            let mut rs = Vec::new();
            for rec in part {
                match rec {
                    MarkOut::Survivor(u) => ns.push(*u),
                    MarkOut::Removed(u) => rs.push(*u),
                }
            }
            survivors.push(ns);
            removed.push(rs);
        }

        // ---- Round 2: purge edges pivoting on the removed side -----
        let (new_edges, r2) = purge_edges(config, &edge_splits, &removed, from_s);

        let mut rounds = r1;
        rounds.absorb(&r2);
        reports.push(MrPassReport {
            pass,
            nodes: s_count + t_count,
            edges: live_edges,
            density: rho,
            wall_time: rounds.wall_time,
            rounds,
        });

        if from_s {
            s_nodes = survivors;
        } else {
            t_nodes = survivors;
        }
        edge_splits = new_edges;
    }

    MrDirectedResult {
        best_s,
        best_t,
        best_density,
        passes: pass,
        reports,
    }
}

/// Splits a vector into `parts` nearly equal chunks (at least one chunk).
fn split_evenly<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let chunk = items.len().div_ceil(parts).max(1);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(parts);
    let mut current = Vec::with_capacity(chunk);
    for item in items {
        current.push(item);
        if current.len() == chunk {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    if out.is_empty() {
        out.push(Vec::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_core::directed::approx_densest_directed;
    use dsg_core::undirected::approx_densest;
    use dsg_graph::gen;
    use dsg_graph::stream::MemoryStream;

    fn cfg() -> MapReduceConfig {
        MapReduceConfig {
            num_workers: 4,
            num_reducers: 8,
            combine: true,
            shuffle: crate::engine::ShuffleBackend::InMemory,
        }
    }

    fn split_edges(edges: &[(u32, u32)], parts: usize) -> Vec<Vec<(u32, u32)>> {
        split_evenly(edges.to_vec(), parts)
    }

    #[test]
    fn matches_streaming_on_planted_graph() {
        let pg = gen::planted_clique(200, 500, 12, 3);
        for eps in [0.0, 0.5, 1.5] {
            let mut stream = MemoryStream::new(pg.graph.clone());
            let expected = approx_densest(&mut stream, eps);
            let mr = mr_densest_undirected(
                &cfg(),
                pg.graph.num_nodes,
                split_edges(&pg.graph.edges, 6),
                eps,
            );
            assert_eq!(mr.passes, expected.passes, "eps {eps}");
            assert!((mr.best_density - expected.best_density).abs() < 1e-9);
            assert_eq!(mr.best_set.to_vec(), expected.best_set.to_vec());
            // Per-pass node/edge counts agree with the streaming trace.
            for (r, t) in mr.reports.iter().zip(&expected.trace) {
                assert_eq!(r.nodes as usize, t.nodes);
                assert!((r.edges as f64 - t.edge_weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn edge_volume_shrinks_per_pass() {
        let pg = gen::planted_dense_subgraph(400, 2000, 25, 0.6, 9);
        let mr = mr_densest_undirected(&cfg(), 400, split_edges(&pg.graph.edges, 8), 1.0);
        for w in mr.reports.windows(2) {
            assert!(w[1].edges <= w[0].edges);
            assert!(w[1].nodes < w[0].nodes);
        }
    }

    #[test]
    fn single_split_and_many_splits_agree() {
        let pg = gen::planted_clique(150, 300, 10, 7);
        let a = mr_densest_undirected(&cfg(), 150, split_edges(&pg.graph.edges, 1), 0.5);
        let b = mr_densest_undirected(&cfg(), 150, split_edges(&pg.graph.edges, 16), 0.5);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
    }

    #[test]
    fn directed_matches_streaming() {
        let g = gen::directed_gnp(120, 0.04, 5);
        for (c, eps) in [(1.0, 0.5), (4.0, 1.0), (0.25, 0.0)] {
            let mut stream = MemoryStream::new(g.clone());
            let expected = approx_densest_directed(&mut stream, c, eps);
            let mr = mr_densest_directed(&cfg(), 120, split_edges(&g.edges, 5), c, eps);
            assert_eq!(mr.passes, expected.passes, "c {c} eps {eps}");
            assert!((mr.best_density - expected.best_density).abs() < 1e-9);
            assert_eq!(mr.best_s.to_vec(), expected.best_s.to_vec());
            assert_eq!(mr.best_t.to_vec(), expected.best_t.to_vec());
        }
    }

    #[test]
    fn combiner_preserves_results_and_cuts_shuffle() {
        let pg = gen::planted_dense_subgraph(300, 1200, 20, 0.6, 5);
        let mut with = cfg();
        with.combine = true;
        let mut without = cfg();
        without.combine = false;
        let a = mr_densest_undirected(&with, 300, split_edges(&pg.graph.edges, 6), 0.5);
        let b = mr_densest_undirected(&without, 300, split_edges(&pg.graph.edges, 6), 0.5);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
        assert!((a.best_density - b.best_density).abs() < 1e-12);
        let shuffled = |r: &MrUndirectedResult| -> u64 {
            r.reports.iter().map(|p| p.rounds.shuffle_records).sum()
        };
        assert!(
            shuffled(&a) < shuffled(&b),
            "combiner must reduce shuffle volume: {} vs {}",
            shuffled(&a),
            shuffled(&b)
        );
    }

    #[test]
    fn directed_combiner_matches_uncombined() {
        let g = gen::directed_gnp(100, 0.05, 9);
        let mut with = cfg();
        with.combine = true;
        let mut without = cfg();
        without.combine = false;
        let a = mr_densest_directed(&with, 100, split_edges(&g.edges, 4), 1.0, 0.5);
        let b = mr_densest_directed(&without, 100, split_edges(&g.edges, 4), 1.0, 0.5);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.best_s.to_vec(), b.best_s.to_vec());
        assert_eq!(a.best_t.to_vec(), b.best_t.to_vec());
    }

    #[test]
    fn spill_to_disk_driver_is_bit_identical() {
        // The acceptance bar of the external shuffle: the full multi-pass
        // driver under a budget small enough to force spilling every
        // round must reproduce the in-memory run bit for bit.
        let pg = gen::planted_dense_subgraph(300, 1200, 20, 0.6, 5);
        for combine in [false, true] {
            let mut in_mem = cfg();
            in_mem.combine = combine;
            let mut spilling = in_mem;
            spilling.shuffle = crate::engine::ShuffleBackend::External {
                spill_budget_bytes: 256,
            };
            let a = mr_densest_undirected(&in_mem, 300, split_edges(&pg.graph.edges, 6), 0.5);
            let b = mr_densest_undirected(&spilling, 300, split_edges(&pg.graph.edges, 6), 0.5);
            assert_eq!(a.passes, b.passes, "combine {combine}");
            assert_eq!(a.best_set.to_vec(), b.best_set.to_vec());
            assert_eq!(a.best_density.to_bits(), b.best_density.to_bits());
            let spilled: u64 = b.reports.iter().map(|r| r.rounds.spilled_bytes).sum();
            let runs: u64 = b.reports.iter().map(|r| r.rounds.spill_runs).sum();
            assert!(runs > 0, "256-byte budget must spill (combine {combine})");
            assert!(spilled > 0);
            // Per-pass live node/edge counts agree exactly as well.
            for (x, y) in a.reports.iter().zip(&b.reports) {
                assert_eq!(x.nodes, y.nodes);
                assert_eq!(x.edges, y.edges);
                assert_eq!(
                    x.rounds.reduce_output_records,
                    y.rounds.reduce_output_records
                );
            }
        }
    }

    #[test]
    fn spill_to_disk_directed_driver_matches() {
        let g = gen::directed_gnp(100, 0.05, 9);
        let mut spilling = cfg();
        spilling.shuffle = crate::engine::ShuffleBackend::External {
            spill_budget_bytes: 128,
        };
        let a = mr_densest_directed(&cfg(), 100, split_edges(&g.edges, 4), 1.0, 0.5);
        let b = mr_densest_directed(&spilling, 100, split_edges(&g.edges, 4), 1.0, 0.5);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.best_s.to_vec(), b.best_s.to_vec());
        assert_eq!(a.best_t.to_vec(), b.best_t.to_vec());
        assert_eq!(a.best_density.to_bits(), b.best_density.to_bits());
        assert!(b.reports.iter().map(|r| r.rounds.spill_runs).sum::<u64>() > 0);
    }

    #[test]
    fn empty_graph_terminates() {
        let mr = mr_densest_undirected(&cfg(), 10, vec![vec![]], 0.5);
        assert_eq!(mr.best_density, 0.0);
        assert_eq!(mr.passes, 1);
    }

    #[test]
    fn split_evenly_covers_all() {
        let s = split_evenly((0..10u32).collect(), 3);
        let total: usize = s.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
        assert!(s.len() <= 3);
        let s = split_evenly(Vec::<u32>::new(), 4);
        assert_eq!(s.len(), 1);
        assert!(s[0].is_empty());
    }
}
