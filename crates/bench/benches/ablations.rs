//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. Algorithm 2's "remove only ε/(1+ε)·|S|" rule vs Algorithm 1's
//!    "remove all below threshold" — the price of the size floor.
//! 2. Algorithm 3's choose-side-by-sizes rule vs a max-degree-based rule
//!    (the paper argues the size rule is faster because it computes only
//!    one side's removal set — here the speedup shows up as fewer passes
//!    doing wasted degree work).
//! 3. Count-Sketch vs Count-Min as the degree oracle (§5.1 ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsg_core::directed::approx_densest_directed;
use dsg_core::large::approx_densest_at_least_k;
use dsg_core::undirected::approx_densest;
use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_graph::stream::MemoryStream;
use dsg_sketch::{approx_densest_sketched, SketchKind, SketchParams};

/// Ablation 1: all-below-threshold removal vs fixed-fraction removal.
fn bench_removal_rule(c: &mut Criterion) {
    let list = flickr_standin(Scale::Tiny);
    let mut group = c.benchmark_group("ablation_removal_rule");
    group.bench_function("algorithm1_remove_all", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(approx_densest(&mut s, 0.5))
        });
    });
    group.bench_function("algorithm2_remove_fraction_k1", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(approx_densest_at_least_k(&mut s, 1, 0.5))
        });
    });
    group.finish();
}

/// Ablation 2: the paper's §4.3 comparison — the sizes-based
/// side-selection rule vs the naive max-degree rule (which must compute
/// both candidate sets per pass) vs the in-memory decremental variant.
fn bench_directed_side_rule(c: &mut Criterion) {
    let list = livejournal_standin(Scale::Tiny);
    let csr = dsg_graph::CsrDirected::from_edge_list(&list);
    let mut group = c.benchmark_group("ablation_directed_side_rule");
    group.sample_size(10);
    group.bench_function("sizes_rule_stream", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(approx_densest_directed(&mut s, 1.0, 1.0))
        });
    });
    group.bench_function("naive_maxdeg_rule_stream", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(dsg_core::directed::approx_densest_directed_naive(
                &mut s, 1.0, 1.0,
            ))
        });
    });
    group.bench_function("sizes_rule_csr_decremental", |b| {
        b.iter(|| {
            black_box(dsg_core::directed::approx_densest_directed_csr(
                &csr, 1.0, 1.0,
            ))
        });
    });
    group.finish();
}

/// Ablation 3: Count-Sketch vs Count-Min as the degree oracle.
fn bench_sketch_kind(c: &mut Criterion) {
    let list = flickr_standin(Scale::Tiny);
    let b_width = list.num_nodes / 16;
    let mut group = c.benchmark_group("ablation_sketch_kind");
    for (name, kind) in [
        ("count_sketch", SketchKind::CountSketch),
        ("count_min", SketchKind::CountMin),
        ("count_min_conservative", SketchKind::CountMinConservative),
    ] {
        let params = SketchParams {
            t: 5,
            b: b_width,
            seed: 1,
            kind,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = MemoryStream::new(list.clone());
                black_box(approx_densest_sketched(&mut s, 0.5, params))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_removal_rule,
    bench_directed_side_rule,
    bench_sketch_kind
);
criterion_main!(benches);
