//! Criterion benches for the undirected algorithms — the kernels behind
//! Table 2 and Figures 6.1–6.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_core::charikar::charikar_peel;
use dsg_core::undirected::{approx_densest, approx_densest_csr};
use dsg_datasets::{flickr_standin, im_standin, Scale};
use dsg_graph::stream::MemoryStream;
use dsg_graph::CsrUndirected;

/// Figure 6.1 kernel: Algorithm 1 across the ε grid.
fn bench_epsilon_sweep(c: &mut Criterion) {
    let list = flickr_standin(Scale::Tiny);
    let csr = CsrUndirected::from_edge_list(&list);
    let mut group = c.benchmark_group("fig61_epsilon_sweep");
    for eps in [0.0, 0.5, 1.0, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| black_box(approx_densest_csr(&csr, eps)));
        });
    }
    group.finish();
}

/// Streaming vs in-memory implementations (identical output, different
/// cost model) — the ablation behind the "practical considerations".
fn bench_stream_vs_csr(c: &mut Criterion) {
    let list = im_standin(Scale::Tiny);
    let csr = CsrUndirected::from_edge_list(&list);
    let mut group = c.benchmark_group("stream_vs_csr");
    group.bench_function("csr_decremental", |b| {
        b.iter(|| black_box(approx_densest_csr(&csr, 1.0)));
    });
    group.bench_function("stream_rescan", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(approx_densest(&mut s, 1.0))
        });
    });
    group.finish();
}

/// Charikar's exact peeling baseline vs Algorithm 1 (ε = 0.5): the
/// pass-count trade the paper is built on.
fn bench_vs_charikar(c: &mut Criterion) {
    let list = flickr_standin(Scale::Tiny);
    let csr = CsrUndirected::from_edge_list(&list);
    let mut group = c.benchmark_group("charikar_vs_algorithm1");
    group.bench_function("charikar_peel", |b| {
        b.iter(|| black_box(charikar_peel(&csr)));
    });
    group.bench_function("algorithm1_eps0.5", |b| {
        b.iter(|| black_box(approx_densest_csr(&csr, 0.5)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_epsilon_sweep,
    bench_stream_vs_csr,
    bench_vs_charikar
);
criterion_main!(benches);
