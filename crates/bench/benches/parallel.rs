//! Benches for the parallel peeling kernel — serial decremental CSR vs
//! the chunked multi-threaded CSR backend, across ε and thread counts.
//!
//! Speedups are hardware-dependent: on a single-core host the parallel
//! backend only adds scoped-thread coordination overhead. The bench
//! exists to make that trade-off measurable, and to keep the parity
//! property (parallel output == serial output) exercised under timing
//! pressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_core::directed::{approx_densest_directed_csr, approx_densest_directed_csr_parallel};
use dsg_core::undirected::{approx_densest_csr, approx_densest_csr_parallel};
use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_graph::{CsrDirected, CsrUndirected};

/// Algorithm 1: serial vs parallel across the thread grid at ε = 0.5.
fn bench_undirected_threads(c: &mut Criterion) {
    let csr = CsrUndirected::from_edge_list(&flickr_standin(Scale::Tiny));
    let mut group = c.benchmark_group("parallel_undirected_threads");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(approx_densest_csr(&csr, 0.5)));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(approx_densest_csr_parallel(&csr, 0.5, threads)));
            },
        );
    }
    group.finish();
}

/// Algorithm 1: the ε grid at a fixed thread count (more passes at small
/// ε means more chunked recomputation rounds).
fn bench_undirected_epsilons(c: &mut Criterion) {
    let csr = CsrUndirected::from_edge_list(&flickr_standin(Scale::Tiny));
    let mut group = c.benchmark_group("parallel_undirected_epsilon");
    for eps in [0.25, 0.5, 1.0, 2.0] {
        group.bench_with_input(BenchmarkId::new("serial", eps), &eps, |b, &eps| {
            b.iter(|| black_box(approx_densest_csr(&csr, eps)));
        });
        group.bench_with_input(BenchmarkId::new("threads4", eps), &eps, |b, &eps| {
            b.iter(|| black_box(approx_densest_csr_parallel(&csr, eps, 4)));
        });
    }
    group.finish();
}

/// Algorithm 3 at c = 1: serial vs parallel frontier application.
fn bench_directed_threads(c: &mut Criterion) {
    let csr = CsrDirected::from_edge_list(&livejournal_standin(Scale::Tiny));
    let mut group = c.benchmark_group("parallel_directed_threads");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(approx_densest_directed_csr(&csr, 1.0, 0.5)));
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(approx_densest_directed_csr_parallel(
                        &csr, 1.0, 0.5, threads,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_undirected_threads,
    bench_undirected_epsilons,
    bench_directed_threads
);
criterion_main!(benches);
