//! Criterion benches for the directed algorithm — the kernels behind
//! Table 3 and Figures 6.4–6.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_core::directed::{approx_densest_directed, sweep_c};
use dsg_datasets::{livejournal_standin, twitter_standin, Scale};
use dsg_graph::stream::MemoryStream;

/// Figure 6.4 kernel: one directed run per ratio c on livejournal.
fn bench_fixed_c(c: &mut Criterion) {
    let list = livejournal_standin(Scale::Tiny);
    let mut group = c.benchmark_group("fig64_fixed_c");
    for ratio in [0.25, 1.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &ratio| {
            b.iter(|| {
                let mut s = MemoryStream::new(list.clone());
                black_box(approx_densest_directed(&mut s, ratio, 1.0))
            });
        });
    }
    group.finish();
}

/// Table 3 kernel: the δ-grid sweep at different resolutions.
fn bench_sweep_resolution(c: &mut Criterion) {
    let list = livejournal_standin(Scale::Tiny);
    let mut group = c.benchmark_group("table3_delta_sweep");
    group.sample_size(10);
    for delta in [2.0, 10.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &delta| {
            b.iter(|| {
                let mut s = MemoryStream::new(list.clone());
                black_box(sweep_c(&mut s, delta, 1.0))
            });
        });
    }
    group.finish();
}

/// Figure 6.6 kernel: the full twitter sweep.
fn bench_twitter_sweep(c: &mut Criterion) {
    let list = twitter_standin(Scale::Tiny);
    let mut group = c.benchmark_group("fig66_twitter_sweep");
    group.sample_size(10);
    group.bench_function("sweep_delta2_eps1", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(sweep_c(&mut s, 2.0, 1.0))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fixed_c,
    bench_sweep_resolution,
    bench_twitter_sweep
);
criterion_main!(benches);
