//! Criterion benches for the MapReduce realization — the kernel behind
//! Figure 6.7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_datasets::{im_standin, Scale};
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig, ShuffleBackend};

fn edge_splits(list: &dsg_graph::EdgeList, parts: usize) -> Vec<Vec<(u32, u32)>> {
    let chunk = (list.edges.len() / parts).max(1);
    list.edges.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Figure 6.7 kernel: the full MapReduce driver at each ε.
fn bench_mr_driver(c: &mut Criterion) {
    let list = im_standin(Scale::Tiny);
    let splits = edge_splits(&list, 16);
    let config = MapReduceConfig {
        num_workers: 4,
        num_reducers: 16,
        combine: true,
        shuffle: ShuffleBackend::InMemory,
    };
    let mut group = c.benchmark_group("fig67_mapreduce_driver");
    group.sample_size(10);
    for eps in [0.0, 1.0, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                black_box(mr_densest_undirected(
                    &config,
                    list.num_nodes,
                    splits.clone(),
                    eps,
                ))
            });
        });
    }
    group.finish();
}

/// Scaling with the worker pool: the simulator's parallel speedup.
fn bench_worker_scaling(c: &mut Criterion) {
    let list = im_standin(Scale::Tiny);
    let splits = edge_splits(&list, 32);
    let mut group = c.benchmark_group("mapreduce_worker_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let config = MapReduceConfig {
            num_workers: workers,
            num_reducers: 32,
            combine: true,
            shuffle: ShuffleBackend::InMemory,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &config,
            |b, config| {
                b.iter(|| {
                    black_box(mr_densest_undirected(
                        config,
                        list.num_nodes,
                        splits.clone(),
                        1.0,
                    ))
                });
            },
        );
    }
    group.finish();
}

/// Map-side combiner on vs off — Hadoop's standard shuffle optimization
/// applied to the §5.2 degree job.
fn bench_combiner(c: &mut Criterion) {
    let list = im_standin(Scale::Tiny);
    let splits = edge_splits(&list, 16);
    let mut group = c.benchmark_group("mapreduce_combiner");
    group.sample_size(10);
    for (name, combine) in [("with_combiner", true), ("without_combiner", false)] {
        let config = MapReduceConfig {
            num_workers: 4,
            num_reducers: 16,
            combine,
            shuffle: ShuffleBackend::InMemory,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(mr_densest_undirected(
                    &config,
                    list.num_nodes,
                    splits.clone(),
                    1.0,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mr_driver,
    bench_worker_scaling,
    bench_combiner
);
criterion_main!(benches);
