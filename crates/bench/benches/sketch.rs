//! Criterion benches for the sketching heuristic — the kernel behind
//! Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_core::undirected::approx_densest;
use dsg_datasets::{flickr_standin, Scale};
use dsg_graph::stream::MemoryStream;
use dsg_sketch::{approx_densest_sketched, CountMin, CountSketch, SketchParams};

/// Table 4 kernel: sketched Algorithm 1 at the paper's three memory
/// ratios, vs the exact-oracle run.
fn bench_sketched_run(c: &mut Criterion) {
    let list = flickr_standin(Scale::Tiny);
    let n = list.num_nodes;
    let mut group = c.benchmark_group("table4_sketched_run");
    group.bench_function("exact_oracle", |b| {
        b.iter(|| {
            let mut s = MemoryStream::new(list.clone());
            black_box(approx_densest(&mut s, 0.5))
        });
    });
    for ratio in [0.16f64, 0.25] {
        let b_width = ((ratio * n as f64) / 5.0) as u32;
        group.bench_with_input(
            BenchmarkId::new("count_sketch", format!("mem{ratio}")),
            &b_width,
            |b, &bw| {
                b.iter(|| {
                    let mut s = MemoryStream::new(list.clone());
                    black_box(approx_densest_sketched(
                        &mut s,
                        0.5,
                        SketchParams::paper(bw, 1),
                    ))
                });
            },
        );
    }
    group.finish();
}

/// Raw sketch update/estimate throughput (Count-Sketch vs Count-Min).
fn bench_sketch_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_ops");
    group.bench_function("countsketch_update_1k", |b| {
        let mut cs = CountSketch::new(5, 4096, 1);
        b.iter(|| {
            for i in 0..1000u32 {
                cs.update(black_box(i * 7919), 1.0);
            }
        });
    });
    group.bench_function("countmin_update_1k", |b| {
        let mut cm = CountMin::new(5, 4096, 1);
        b.iter(|| {
            for i in 0..1000u32 {
                cm.update(black_box(i * 7919), 1.0);
            }
        });
    });
    group.bench_function("countsketch_estimate_1k", |b| {
        let mut cs = CountSketch::new(5, 4096, 1);
        for i in 0..10_000u32 {
            cs.update(i, 1.0);
        }
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000u32 {
                acc += cs.estimate(black_box(i));
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sketched_run, bench_sketch_ops);
criterion_main!(benches);
