//! Criterion benches for the exact solver — the `ρ*` column of Table 2,
//! and the reason the paper's streaming algorithm exists (exact methods
//! do not scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_core::charikar::charikar_peel;
use dsg_core::undirected::approx_densest_csr;
use dsg_flow::{exact_densest, exact_densest_with, FlowBackend};
use dsg_graph::gen;
use dsg_graph::CsrUndirected;

/// Exact flow-based optimum vs the two approximations, across graph
/// sizes: the scaling argument of §1.2 in one chart.
fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_exact_vs_approx");
    group.sample_size(10);
    for n in [200u32, 400, 800] {
        let pg = gen::planted_dense_subgraph(n, n as usize * 4, n / 20, 0.8, 7);
        let csr = CsrUndirected::from_edge_list(&pg.graph);
        group.bench_with_input(BenchmarkId::new("exact_flow", n), &csr, |b, csr| {
            b.iter(|| black_box(exact_densest(csr)));
        });
        group.bench_with_input(BenchmarkId::new("charikar", n), &csr, |b, csr| {
            b.iter(|| black_box(charikar_peel(csr)));
        });
        group.bench_with_input(BenchmarkId::new("algorithm1_eps0.5", n), &csr, |b, csr| {
            b.iter(|| black_box(approx_densest_csr(csr, 0.5)));
        });
    }
    group.finish();
}

/// Dinic vs push-relabel as the backend of Goldberg's binary search.
fn bench_flow_backends(c: &mut Criterion) {
    let pg = gen::planted_dense_subgraph(500, 2000, 25, 0.8, 3);
    let csr = CsrUndirected::from_edge_list(&pg.graph);
    let mut group = c.benchmark_group("flow_backend");
    group.sample_size(10);
    group.bench_function("dinic", |b| {
        b.iter(|| black_box(exact_densest_with(&csr, FlowBackend::Dinic)));
    });
    group.bench_function("push_relabel", |b| {
        b.iter(|| black_box(exact_densest_with(&csr, FlowBackend::PushRelabel)));
    });
    group.finish();
}

criterion_group!(benches, bench_exact_vs_approx, bench_flow_backends);
criterion_main!(benches);
