//! Minimal fixed-width table / CSV rendering for the repro binary.

/// A rendered table: a title, column headers, and string rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption (e.g. `"Table 2: quality of approximation"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |", joined.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON object (`{"title":…,"columns":[…],"rows":[[…]]}`),
    /// the building block of the `repro --bench-json` artifacts CI
    /// compares against `bench/baseline.json`.
    pub fn render_json(&self) -> String {
        let esc = dsg_engine::report::escape_json;
        let cols: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"title\":\"{}\",\"columns\":[{}],\"rows\":[{}]}}",
            esc(&self.title),
            cols.join(","),
            rows.join(",")
        )
    }

    /// Renders as CSV (headers + rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, trimming to a compact cell.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        // Columns are right-aligned to max(header, cell) width.
        assert!(s.contains("| long-name |  22.5 |"));
        assert!(s.contains("|         a |     1 |"));
    }

    #[test]
    fn renders_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn fmt_float() {
        assert_eq!(fmt_f(12.3456, 2), "12.35");
        assert_eq!(fmt_f(1.0, 3), "1.000");
    }
}
